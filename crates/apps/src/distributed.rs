//! Multi-node execution model: time-to-solution versus
//! energy-to-solution.
//!
//! §IV: "by iterating multiple times coding and experiments, application
//! developers can compare time-to-solution versus energy-to-solution and
//! identify the right tradeoff between each application". This module
//! runs a workload model across N nodes of the EDR fat-tree and returns
//! both metrics, exposing the tradeoff (TTS keeps improving past the
//! point where ETS starts rising).

use crate::workload::AppModel;
use davide_core::interconnect::FatTree;
use davide_core::node::{ComputeNode, NodeLoad};
use davide_core::units::{Bytes, Joules, Seconds, Watts};

/// A planned distributed run of one application.
#[derive(Debug, Clone)]
pub struct DistributedRun {
    /// The application model.
    pub app: AppModel,
    /// Nodes allocated.
    pub nodes: u32,
    /// The inter-node fabric.
    pub fabric: FatTree,
    /// Outer iterations to execute.
    pub iterations: u32,
}

impl DistributedRun {
    /// Plan a run on the D.A.V.I.D.E. fabric.
    pub fn new(app: AppModel, nodes: u32, iterations: u32) -> Self {
        assert!(nodes >= 1 && iterations >= 1);
        DistributedRun {
            app,
            nodes,
            fabric: FatTree::davide(nodes.max(2)),
            iterations,
        }
    }

    /// Communication time per iteration: each node moves its comm bytes
    /// through its injection bandwidth, plus a log-depth latency term
    /// for the collective phases.
    pub fn comm_time_per_iteration(&self) -> Seconds {
        if self.nodes <= 1 {
            return Seconds(0.0);
        }
        let bytes = Bytes(self.app.comm_bytes_per_iteration());
        let serial = bytes / self.fabric.node_bandwidth();
        let depth = (self.nodes as f64).log2().ceil().max(1.0);
        // ~100 latency-bound messages per iteration through the tree.
        let latency =
            100.0 * depth * (self.fabric.port.latency.0 + 2.0 * self.fabric.hop_latency.0);
        Seconds(serial.0 + latency)
    }

    /// Wall time of one iteration (Amdahl + communication).
    pub fn iteration_time(&self) -> Seconds {
        let t1 = self.app.iteration_time.0;
        let serial = t1 * self.app.serial_frac;
        let parallel = t1 * (1.0 - self.app.serial_frac) / self.nodes as f64;
        Seconds(serial + parallel + self.comm_time_per_iteration().0)
    }

    /// Time-to-solution for the whole run.
    pub fn time_to_solution(&self) -> Seconds {
        Seconds(self.iteration_time().0 * self.iterations as f64)
    }

    /// Aggregate power of the allocation (nodes shaped to the job).
    pub fn allocation_power(&self) -> Watts {
        let mut node = ComputeNode::davide(0);
        node.apply_shape(self.app.shape)
            .expect("app shape is legal");
        // Communication phases idle the compute engines; weight the
        // node power by the compute fraction of the iteration.
        let t_iter = self.iteration_time().0;
        let compute_frac = (t_iter - self.comm_time_per_iteration().0) / t_iter;
        let p_compute = self.app.mean_node_power(&node);
        let p_comm = node.power(NodeLoad {
            cpu: 0.2,
            gpu: 0.1,
            mem: 0.2,
            net: 1.0,
        });
        (p_compute * compute_frac + p_comm * (1.0 - compute_frac)) * self.nodes as f64
    }

    /// Energy-to-solution for the whole run.
    pub fn energy_to_solution(&self) -> Joules {
        self.allocation_power() * self.time_to_solution()
    }

    /// Speed-up versus the single-node run.
    pub fn speedup(&self) -> f64 {
        let single = DistributedRun {
            nodes: 1,
            fabric: self.fabric.clone(),
            app: self.app.clone(),
            iterations: self.iterations,
        };
        single.time_to_solution().0 / self.time_to_solution().0
    }

    /// Parallel efficiency.
    pub fn efficiency(&self) -> f64 {
        self.speedup() / self.nodes as f64
    }
}

/// Sweep node counts and return `(nodes, tts_s, ets_j)` rows.
pub fn tts_ets_sweep(app: &AppModel, iterations: u32, node_counts: &[u32]) -> Vec<(u32, f64, f64)> {
    node_counts
        .iter()
        .map(|&n| {
            let run = DistributedRun::new(app.clone(), n, iterations);
            (n, run.time_to_solution().0, run.energy_to_solution().0)
        })
        .collect()
}

/// The node count minimising time-to-solution within `max_nodes`.
pub fn tts_optimal_nodes(app: &AppModel, max_nodes: u32) -> u32 {
    (1..=max_nodes)
        .min_by(|&a, &b| {
            let ta = DistributedRun::new(app.clone(), a, 1).time_to_solution().0;
            let tb = DistributedRun::new(app.clone(), b, 1).time_to_solution().0;
            ta.total_cmp(&tb)
        })
        .expect("non-empty range")
}

/// The node count minimising energy-to-solution within `max_nodes`.
pub fn ets_optimal_nodes(app: &AppModel, max_nodes: u32) -> u32 {
    (1..=max_nodes)
        .min_by(|&a, &b| {
            let ea = DistributedRun::new(app.clone(), a, 1)
                .energy_to_solution()
                .0;
            let eb = DistributedRun::new(app.clone(), b, 1)
                .energy_to_solution()
                .0;
            ea.total_cmp(&eb)
        })
        .expect("non-empty range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::AppKind;

    #[test]
    fn single_node_has_no_comm() {
        let run = DistributedRun::new(AppModel::bqcd(), 1, 10);
        assert_eq!(run.comm_time_per_iteration(), Seconds(0.0));
        assert!((run.speedup() - 1.0).abs() < 1e-12);
        assert!((run.efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tts_improves_then_saturates() {
        let app = AppModel::quantum_espresso();
        let rows = tts_ets_sweep(&app, 10, &[1, 2, 4, 8, 16, 32]);
        // Monotone improvement early.
        assert!(rows[1].1 < rows[0].1, "2 nodes beat 1");
        assert!(rows[2].1 < rows[1].1, "4 beat 2");
        // Diminishing returns: the last doubling gains less than 1.5×.
        let gain_last = rows[4].1 / rows[5].1;
        let gain_first = rows[0].1 / rows[1].1;
        assert!(gain_last < gain_first, "{gain_last} vs {gain_first}");
    }

    #[test]
    fn ets_optimum_below_tts_optimum() {
        // The §IV tradeoff: energy keeps growing once efficiency falls,
        // so the ETS-optimal allocation is no larger than TTS-optimal.
        for kind in AppKind::ALL {
            let app = AppModel::for_kind(kind);
            let tts_n = tts_optimal_nodes(&app, 32);
            let ets_n = ets_optimal_nodes(&app, 32);
            assert!(
                ets_n <= tts_n,
                "{}: ets {} > tts {}",
                kind.name(),
                ets_n,
                tts_n
            );
            assert!(ets_n >= 1);
        }
    }

    #[test]
    fn nemo_scales_worse_than_bqcd() {
        // Higher serial fraction + flat profile: NEMO's efficiency at 16
        // nodes is below BQCD's.
        let nemo = DistributedRun::new(AppModel::nemo(), 16, 1);
        let bqcd = DistributedRun::new(AppModel::bqcd(), 16, 1);
        assert!(nemo.efficiency() < bqcd.efficiency());
    }

    #[test]
    fn energy_equals_power_times_time() {
        let run = DistributedRun::new(AppModel::specfem3d(), 8, 5);
        let e = run.energy_to_solution().0;
        let p = run.allocation_power().0;
        let t = run.time_to_solution().0;
        assert!((e - p * t).abs() < 1e-6);
        assert!(p > 8.0 * 800.0, "eight busy nodes draw kWs: {p}");
    }

    #[test]
    fn allocation_power_scales_with_nodes() {
        let small = DistributedRun::new(AppModel::bqcd(), 2, 1);
        let large = DistributedRun::new(AppModel::bqcd(), 8, 1);
        let ratio = large.allocation_power().0 / small.allocation_power().0;
        assert!((3.0..5.0).contains(&ratio), "≈4×: {ratio}");
    }
}
