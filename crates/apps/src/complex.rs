//! Minimal complex arithmetic for the FFT kernels (kept in-repo instead
//! of pulling a numerics dependency).

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A double-precision complex number.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Zero.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };

    /// Construct from parts.
    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// A pure-real value.
    #[inline]
    pub fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// `e^{iθ}`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        C64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        C64 {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_spotcheck() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(-3.0, 0.5);
        assert_eq!(a + b, C64::new(-2.0, 2.5));
        assert_eq!(a - b, C64::new(4.0, 1.5));
        assert_eq!(a * C64::ONE, a);
        assert_eq!(a * C64::ZERO, C64::ZERO);
        // (1+2i)(-3+0.5i) = -3 + 0.5i - 6i + i² = -4 - 5.5i
        assert_eq!(a * b, C64::new(-4.0, -5.5));
    }

    #[test]
    fn cis_and_conj() {
        let i = C64::cis(std::f64::consts::FRAC_PI_2);
        assert!((i.re).abs() < 1e-15 && (i.im - 1.0).abs() < 1e-15);
        let z = C64::new(3.0, 4.0);
        assert_eq!(z.conj(), C64::new(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert!(((z * z.conj()).re - 25.0).abs() < 1e-12);
    }

    #[test]
    fn scale_and_neg() {
        let z = C64::new(1.0, -2.0);
        assert_eq!(z.scale(2.0), C64::new(2.0, -4.0));
        assert_eq!(-z, C64::new(-1.0, 2.0));
    }
}
