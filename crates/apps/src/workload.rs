//! Application workload models for the four co-design applications
//! (§IV): phase structure, component demands and scaling behaviour.
//!
//! Each model describes one outer iteration (SCF step, time step, HMC
//! trajectory…) as a sequence of phases with per-component utilisation.
//! The proxies in [`crate::fft`], [`crate::stencil`], [`crate::sem`] and
//! [`crate::lattice`] execute the real arithmetic; these models carry
//! the *shape* of the run into the power/scheduling simulations.

use davide_core::node::{ComputeNode, JobShape, NodeLoad};
use davide_core::units::{Seconds, Watts};

/// The four applications of European interest (§IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// Quantum ESPRESSO: plane-wave DFT, FFT-dominated.
    QuantumEspresso,
    /// NEMO: ocean modelling, memory-bound stencils, flat profile.
    Nemo,
    /// SPECFEM3D: spectral-element seismic wave propagation.
    Specfem3d,
    /// BQCD: lattice QCD, even/odd-preconditioned CG.
    Bqcd,
}

impl AppKind {
    /// All four, in paper order.
    pub const ALL: [AppKind; 4] = [
        AppKind::QuantumEspresso,
        AppKind::Nemo,
        AppKind::Specfem3d,
        AppKind::Bqcd,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::QuantumEspresso => "Quantum ESPRESSO",
            AppKind::Nemo => "NEMO",
            AppKind::Specfem3d => "SPECFEM3D",
            AppKind::Bqcd => "BQCD",
        }
    }
}

/// One phase of an application iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Phase label (routine group).
    pub name: &'static str,
    /// Fraction of the iteration spent here (phases sum to 1).
    pub duration_frac: f64,
    /// Component utilisation during the phase.
    pub load: NodeLoad,
    /// Inter-node traffic issued during the phase, bytes per node per
    /// iteration.
    pub comm_bytes: f64,
}

/// A workload model: phases plus placement preferences.
#[derive(Debug, Clone, PartialEq)]
pub struct AppModel {
    /// Which application this models.
    pub kind: AppKind,
    /// Phases of one iteration (duration fractions sum to 1).
    pub phases: Vec<Phase>,
    /// Wall time of one iteration on one node at nominal clocks.
    pub iteration_time: Seconds,
    /// Resource shape the job requests per node (energy-proportionality
    /// target of §IV).
    pub shape: JobShape,
    /// Serial (non-scalable) fraction for the strong-scaling model.
    pub serial_frac: f64,
}

impl AppModel {
    /// Quantum ESPRESSO (§IV-A): FFT-heavy SCF iterations with dense
    /// linear algebra; GPUs do the heavy lifting, communication is cut
    /// by keeping FFTs within NVLink GPU pairs.
    pub fn quantum_espresso() -> Self {
        AppModel {
            kind: AppKind::QuantumEspresso,
            phases: vec![
                Phase {
                    name: "fft",
                    duration_frac: 0.45,
                    load: NodeLoad {
                        cpu: 0.35,
                        gpu: 0.95,
                        mem: 0.80,
                        net: 0.15,
                    },
                    comm_bytes: 0.4e9,
                },
                Phase {
                    name: "dense-linalg",
                    duration_frac: 0.30,
                    load: NodeLoad {
                        cpu: 0.40,
                        gpu: 0.98,
                        mem: 0.45,
                        net: 0.05,
                    },
                    comm_bytes: 0.1e9,
                },
                Phase {
                    name: "potentials",
                    duration_frac: 0.15,
                    load: NodeLoad {
                        cpu: 0.70,
                        gpu: 0.50,
                        mem: 0.55,
                        net: 0.05,
                    },
                    comm_bytes: 0.05e9,
                },
                Phase {
                    name: "mpi-exchange",
                    duration_frac: 0.10,
                    load: NodeLoad {
                        cpu: 0.25,
                        gpu: 0.10,
                        mem: 0.30,
                        net: 0.90,
                    },
                    comm_bytes: 1.2e9,
                },
            ],
            iteration_time: Seconds(18.0),
            shape: JobShape::FULL_NODE,
            serial_frac: 0.04,
        }
    }

    /// NEMO (§IV-B): flat profile (no routine above 15–20 %),
    /// memory-bandwidth-bound, frequent halo exchanges, modest GPU
    /// benefit (OpenACC port).
    pub fn nemo() -> Self {
        AppModel {
            kind: AppKind::Nemo,
            phases: vec![
                Phase {
                    name: "tracer-advection",
                    duration_frac: 0.18,
                    load: NodeLoad {
                        cpu: 0.75,
                        gpu: 0.40,
                        mem: 0.95,
                        net: 0.10,
                    },
                    comm_bytes: 0.15e9,
                },
                Phase {
                    name: "momentum",
                    duration_frac: 0.17,
                    load: NodeLoad {
                        cpu: 0.72,
                        gpu: 0.38,
                        mem: 0.92,
                        net: 0.10,
                    },
                    comm_bytes: 0.15e9,
                },
                Phase {
                    name: "vertical-physics",
                    duration_frac: 0.16,
                    load: NodeLoad {
                        cpu: 0.70,
                        gpu: 0.35,
                        mem: 0.90,
                        net: 0.05,
                    },
                    comm_bytes: 0.05e9,
                },
                Phase {
                    name: "sea-ice",
                    duration_frac: 0.15,
                    load: NodeLoad {
                        cpu: 0.68,
                        gpu: 0.30,
                        mem: 0.85,
                        net: 0.08,
                    },
                    comm_bytes: 0.08e9,
                },
                Phase {
                    name: "free-surface",
                    duration_frac: 0.14,
                    load: NodeLoad {
                        cpu: 0.66,
                        gpu: 0.32,
                        mem: 0.88,
                        net: 0.12,
                    },
                    comm_bytes: 0.12e9,
                },
                Phase {
                    name: "halo-exchange",
                    duration_frac: 0.12,
                    load: NodeLoad {
                        cpu: 0.30,
                        gpu: 0.05,
                        mem: 0.40,
                        net: 0.85,
                    },
                    comm_bytes: 0.6e9,
                },
                Phase {
                    name: "diagnostics",
                    duration_frac: 0.08,
                    load: NodeLoad {
                        cpu: 0.55,
                        gpu: 0.10,
                        mem: 0.60,
                        net: 0.20,
                    },
                    comm_bytes: 0.1e9,
                },
            ],
            iteration_time: Seconds(6.0),
            // NEMO cannot use all four GPUs productively: 2 GPUs, all
            // memory channels (bandwidth-bound).
            shape: JobShape {
                cores_per_socket: 8,
                gpus: 2,
                centaurs_per_socket: 4,
            },
            serial_frac: 0.08,
        }
    }

    /// SPECFEM3D (§IV-C): SEM assembly kernels on GPU with overlapped
    /// boundary exchange; scales while work per GPU is sufficient.
    pub fn specfem3d() -> Self {
        AppModel {
            kind: AppKind::Specfem3d,
            phases: vec![
                Phase {
                    name: "element-kernels",
                    duration_frac: 0.62,
                    load: NodeLoad {
                        cpu: 0.30,
                        gpu: 0.97,
                        mem: 0.70,
                        net: 0.10,
                    },
                    comm_bytes: 0.2e9,
                },
                Phase {
                    name: "boundary-exchange",
                    duration_frac: 0.10,
                    load: NodeLoad {
                        cpu: 0.25,
                        gpu: 0.60,
                        mem: 0.35,
                        net: 0.80,
                    },
                    comm_bytes: 0.9e9,
                },
                Phase {
                    name: "time-update",
                    duration_frac: 0.20,
                    load: NodeLoad {
                        cpu: 0.35,
                        gpu: 0.90,
                        mem: 0.75,
                        net: 0.05,
                    },
                    comm_bytes: 0.05e9,
                },
                Phase {
                    name: "seismogram-io",
                    duration_frac: 0.08,
                    load: NodeLoad {
                        cpu: 0.45,
                        gpu: 0.15,
                        mem: 0.40,
                        net: 0.30,
                    },
                    comm_bytes: 0.1e9,
                },
            ],
            iteration_time: Seconds(9.0),
            shape: JobShape::FULL_NODE,
            serial_frac: 0.03,
        }
    }

    /// BQCD (§IV-D): even/odd-preconditioned CG; QUDA peer-to-peer makes
    /// intra-node scaling nearly perfect.
    pub fn bqcd() -> Self {
        AppModel {
            kind: AppKind::Bqcd,
            phases: vec![
                Phase {
                    name: "cg-matvec",
                    duration_frac: 0.58,
                    load: NodeLoad {
                        cpu: 0.25,
                        gpu: 0.96,
                        mem: 0.85,
                        net: 0.20,
                    },
                    comm_bytes: 0.7e9,
                },
                Phase {
                    name: "cg-blas1",
                    duration_frac: 0.17,
                    load: NodeLoad {
                        cpu: 0.20,
                        gpu: 0.85,
                        mem: 0.90,
                        net: 0.05,
                    },
                    comm_bytes: 0.05e9,
                },
                Phase {
                    name: "gauge-force",
                    duration_frac: 0.15,
                    load: NodeLoad {
                        cpu: 0.30,
                        gpu: 0.92,
                        mem: 0.60,
                        net: 0.05,
                    },
                    comm_bytes: 0.1e9,
                },
                Phase {
                    name: "global-sums",
                    duration_frac: 0.10,
                    load: NodeLoad {
                        cpu: 0.20,
                        gpu: 0.30,
                        mem: 0.25,
                        net: 0.75,
                    },
                    comm_bytes: 0.3e9,
                },
            ],
            iteration_time: Seconds(12.0),
            shape: JobShape::FULL_NODE,
            serial_frac: 0.02,
        }
    }

    /// Model for a given application kind.
    pub fn for_kind(kind: AppKind) -> Self {
        match kind {
            AppKind::QuantumEspresso => Self::quantum_espresso(),
            AppKind::Nemo => Self::nemo(),
            AppKind::Specfem3d => Self::specfem3d(),
            AppKind::Bqcd => Self::bqcd(),
        }
    }

    /// Time-weighted mean node load over one iteration.
    pub fn mean_load(&self) -> NodeLoad {
        let mut acc = NodeLoad::IDLE;
        for p in &self.phases {
            acc.cpu += p.load.cpu * p.duration_frac;
            acc.gpu += p.load.gpu * p.duration_frac;
            acc.mem += p.load.mem * p.duration_frac;
            acc.net += p.load.net * p.duration_frac;
        }
        acc
    }

    /// Mean node power drawn by this workload on `node` (in the node's
    /// current gating/DVFS configuration).
    pub fn mean_node_power(&self, node: &ComputeNode) -> Watts {
        self.phases
            .iter()
            .map(|p| node.power(p.load) * p.duration_frac)
            .sum()
    }

    /// Peak phase power on `node`.
    pub fn peak_node_power(&self, node: &ComputeNode) -> Watts {
        self.phases
            .iter()
            .map(|p| node.power(p.load))
            .fold(Watts::ZERO, Watts::max)
    }

    /// Total inter-node bytes per node per iteration.
    pub fn comm_bytes_per_iteration(&self) -> f64 {
        self.phases.iter().map(|p| p.comm_bytes).sum()
    }

    /// The largest single phase's share of the iteration (NEMO's "flat
    /// profile" check: no routine above 15–20 %).
    pub fn max_phase_fraction(&self) -> f64 {
        self.phases
            .iter()
            .map(|p| p.duration_frac)
            .fold(0.0, f64::max)
    }

    /// Amdahl strong-scaling speed-up on `nodes` nodes with the
    /// communication surcharge of `comm_overhead(nodes)` seconds per
    /// iteration.
    pub fn strong_scaling_speedup(&self, nodes: u32, comm_overhead_s: f64) -> f64 {
        let t1 = self.iteration_time.0;
        let parallel = t1 * (1.0 - self.serial_frac) / nodes as f64;
        let tn = t1 * self.serial_frac + parallel + comm_overhead_s;
        t1 / tn
    }

    /// Check phase fractions sum to one (model sanity).
    pub fn is_normalised(&self) -> bool {
        (self.phases.iter().map(|p| p.duration_frac).sum::<f64>() - 1.0).abs() < 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_normalised() {
        for kind in AppKind::ALL {
            let m = AppModel::for_kind(kind);
            assert!(m.is_normalised(), "{} phases don't sum to 1", kind.name());
            assert!(m.iteration_time.0 > 0.0);
        }
    }

    #[test]
    fn nemo_profile_is_flat() {
        // §IV-B: "not a single routine consume more than 15% - 20% of
        // the runtime".
        let nemo = AppModel::nemo();
        assert!(
            nemo.max_phase_fraction() <= 0.20,
            "max phase {}",
            nemo.max_phase_fraction()
        );
        // Others are dominated by a kernel.
        assert!(AppModel::quantum_espresso().max_phase_fraction() > 0.35);
        assert!(AppModel::specfem3d().max_phase_fraction() > 0.5);
        assert!(AppModel::bqcd().max_phase_fraction() > 0.5);
    }

    #[test]
    fn nemo_is_memory_bound_qe_is_gpu_bound() {
        let nemo = AppModel::nemo().mean_load();
        let qe = AppModel::quantum_espresso().mean_load();
        assert!(nemo.mem > qe.mem, "NEMO stresses memory bandwidth");
        assert!(qe.gpu > nemo.gpu, "QE rides the accelerators");
    }

    #[test]
    fn mean_power_between_idle_and_full() {
        let node = ComputeNode::davide(0);
        for kind in AppKind::ALL {
            let m = AppModel::for_kind(kind);
            let p = m.mean_node_power(&node);
            assert!(p > node.power(NodeLoad::IDLE), "{}", kind.name());
            assert!(p <= node.power(NodeLoad::FULL) * 1.05, "{}", kind.name());
            assert!(m.peak_node_power(&node) >= p);
        }
    }

    #[test]
    fn gpu_heavy_apps_draw_more_than_nemo() {
        let node = ComputeNode::davide(0);
        let p_qe = AppModel::quantum_espresso().mean_node_power(&node);
        let p_nemo = AppModel::nemo().mean_node_power(&node);
        assert!(p_qe > p_nemo, "QE {p_qe} vs NEMO {p_nemo}");
    }

    #[test]
    fn nemo_shape_gates_two_gpus() {
        let mut node = ComputeNode::davide(0);
        let m = AppModel::nemo();
        let before = m.mean_node_power(&node);
        node.apply_shape(m.shape).unwrap();
        let after = m.mean_node_power(&node);
        assert!(after < before, "gating unused GPUs saves energy");
    }

    #[test]
    fn strong_scaling_monotone_until_comm_dominates() {
        let bqcd = AppModel::bqcd();
        let s2 = bqcd.strong_scaling_speedup(2, 0.2);
        let s8 = bqcd.strong_scaling_speedup(8, 0.8);
        let s64 = bqcd.strong_scaling_speedup(64, 6.0);
        assert!(s2 > 1.5);
        assert!(s8 > s2);
        // With 6 s of comm per 12 s iteration, 64 nodes is past the knee.
        assert!(s64 < s8);
    }

    #[test]
    fn comm_volume_positive_everywhere() {
        for kind in AppKind::ALL {
            assert!(AppModel::for_kind(kind).comm_bytes_per_iteration() > 0.0);
        }
    }
}
