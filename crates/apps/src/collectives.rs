//! Collective operations: the "global sums" of BQCD's CG and the
//! allreduces closing every NEMO/SPECFEM time step.
//!
//! Two layers: *executable* collectives over in-memory rank buffers
//! (validating the algorithms bit-for-bit), and *time models* for ring
//! versus tree allreduce on the EDR fabric — the crossover between them
//! is the classic latency/bandwidth tradeoff the §IV apps live with.

use davide_core::interconnect::FatTree;
use davide_core::units::{Bytes, Seconds};
use rayon::prelude::*;

/// Reduce-then-broadcast (naive) allreduce over rank buffers: every
/// rank ends with the element-wise sum.
pub fn allreduce_naive(ranks: &mut [Vec<f64>]) {
    let p = ranks.len();
    if p <= 1 {
        return;
    }
    let n = ranks[0].len();
    assert!(ranks.iter().all(|r| r.len() == n), "equal buffer sizes");
    let mut total = vec![0.0; n];
    for r in ranks.iter() {
        for (t, v) in total.iter_mut().zip(r) {
            *t += v;
        }
    }
    ranks.par_iter_mut().for_each(|r| r.copy_from_slice(&total));
}

/// Recursive-doubling (butterfly) allreduce: `log₂ p` exchange rounds,
/// each rank pairing with `rank ^ 2^k`. Requires a power-of-two rank
/// count (pad in practice).
pub fn allreduce_butterfly(ranks: &mut [Vec<f64>]) {
    let p = ranks.len();
    if p <= 1 {
        return;
    }
    assert!(p.is_power_of_two(), "butterfly needs 2^k ranks");
    let n = ranks[0].len();
    assert!(ranks.iter().all(|r| r.len() == n), "equal buffer sizes");
    let mut dist = 1;
    while dist < p {
        // Each pair (r, r^dist) exchanges and adds; do the sums into a
        // scratch to keep the exchange symmetric.
        let snapshot: Vec<Vec<f64>> = ranks.to_vec();
        ranks.par_iter_mut().enumerate().for_each(|(r, buf)| {
            let peer = r ^ dist;
            for (b, v) in buf.iter_mut().zip(&snapshot[peer]) {
                *b += v;
            }
        });
        dist <<= 1;
    }
}

/// Ring-allreduce time model: `2(p−1)` steps moving `bytes/p` each, on
/// links of the node bandwidth — bandwidth-optimal, latency-heavy.
pub fn ring_allreduce_time(fabric: &FatTree, ranks: u32, bytes: Bytes) -> Seconds {
    if ranks <= 1 {
        return Seconds(0.0);
    }
    let p = ranks as f64;
    let steps = 2.0 * (p - 1.0);
    let chunk = bytes.0 / p;
    let per_step = fabric.port.latency.0
        + 2.0 * fabric.hop_latency.0
        + chunk / (fabric.node_bandwidth().0 * 1e9);
    Seconds(steps * per_step)
}

/// Tree (recursive-doubling) allreduce time model: `2·log₂ p` rounds
/// moving the full buffer — latency-optimal, bandwidth-heavy.
pub fn tree_allreduce_time(fabric: &FatTree, ranks: u32, bytes: Bytes) -> Seconds {
    if ranks <= 1 {
        return Seconds(0.0);
    }
    let rounds = (ranks as f64).log2().ceil();
    let per_round = fabric.port.latency.0
        + 2.0 * fabric.hop_latency.0
        + bytes.0 / (fabric.node_bandwidth().0 * 1e9);
    Seconds(2.0 * rounds * per_round)
}

/// Message size at which ring starts beating tree for `ranks` ranks
/// (bisection search over the two models).
pub fn ring_tree_crossover_bytes(fabric: &FatTree, ranks: u32) -> f64 {
    let mut lo = 1.0_f64;
    let mut hi = 1e12;
    for _ in 0..200 {
        let mid = (lo * hi).sqrt();
        let ring = ring_allreduce_time(fabric, ranks, Bytes(mid)).0;
        let tree = tree_allreduce_time(fabric, ranks, Bytes(mid)).0;
        if ring < tree {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    (lo * hi).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_ranks(p: usize, n: usize) -> Vec<Vec<f64>> {
        (0..p)
            .map(|r| (0..n).map(|i| (r * n + i) as f64).collect())
            .collect()
    }

    fn expected_sum(p: usize, n: usize) -> Vec<f64> {
        let mut total = vec![0.0; n];
        for r in 0..p {
            for (i, t) in total.iter_mut().enumerate() {
                *t += (r * n + i) as f64;
            }
        }
        total
    }

    #[test]
    fn naive_allreduce_correct() {
        let mut ranks = make_ranks(6, 50);
        allreduce_naive(&mut ranks);
        let want = expected_sum(6, 50);
        for r in &ranks {
            assert_eq!(r, &want);
        }
    }

    #[test]
    fn butterfly_matches_naive() {
        let mut a = make_ranks(8, 33);
        let mut b = a.clone();
        allreduce_naive(&mut a);
        allreduce_butterfly(&mut b);
        for (x, y) in a.iter().zip(&b) {
            for (u, v) in x.iter().zip(y) {
                assert!((u - v).abs() < 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "2^k ranks")]
    fn butterfly_rejects_non_power_of_two() {
        let mut ranks = make_ranks(6, 4);
        allreduce_butterfly(&mut ranks);
    }

    #[test]
    fn single_rank_is_identity() {
        let mut ranks = make_ranks(1, 10);
        let orig = ranks.clone();
        allreduce_naive(&mut ranks);
        assert_eq!(ranks, orig);
    }

    #[test]
    fn small_messages_favour_tree_large_favour_ring() {
        let fabric = FatTree::davide(32);
        // An 8-byte scalar (the CG dot product): tree wins.
        let tiny = Bytes(8.0);
        assert!(tree_allreduce_time(&fabric, 32, tiny) < ring_allreduce_time(&fabric, 32, tiny));
        // A 100 MB gradient-sized buffer: ring wins.
        let big = Bytes(100e6);
        assert!(ring_allreduce_time(&fabric, 32, big) < tree_allreduce_time(&fabric, 32, big));
    }

    #[test]
    fn crossover_is_between_the_extremes() {
        let fabric = FatTree::davide(32);
        let x = ring_tree_crossover_bytes(&fabric, 32);
        assert!(x > 8.0 && x < 100e6, "crossover at {x} bytes");
        // More ranks push the crossover up (ring pays more latency).
        let x64 = ring_tree_crossover_bytes(&FatTree::davide(64), 64);
        assert!(x64 > x, "{x64} vs {x}");
    }

    #[test]
    fn allreduce_time_scales_sanely() {
        let fabric = FatTree::davide(16);
        let b = Bytes(1e6);
        let t4 = ring_allreduce_time(&fabric, 4, b);
        let t16 = ring_allreduce_time(&fabric, 16, b);
        assert!(t16 > t4, "more ranks, more steps");
        assert_eq!(ring_allreduce_time(&fabric, 1, b), Seconds(0.0));
    }
}
