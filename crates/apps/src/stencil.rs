//! Stencil kernels with halo exchange — the NEMO proxy.
//!
//! §IV-B: NEMO is "essentially a stencil-based code with limited
//! parallelism, low computational intensity and frequent halo exchanges",
//! parallelised by regular latitude/longitude domain decomposition. The
//! kernel here is a 5-point Laplacian relaxation over a 2-D ocean grid
//! with land masking, decomposed into latitude bands per rank, with the
//! halo traffic counted for the communication model.

use rayon::prelude::*;

/// A 2-D grid with a land/ocean mask (row-major, `ny` rows × `nx` cols).
#[derive(Debug, Clone, PartialEq)]
pub struct OceanGrid {
    /// Columns (longitude points).
    pub nx: usize,
    /// Rows (latitude points).
    pub ny: usize,
    /// Field values (e.g. sea-surface height).
    pub field: Vec<f64>,
    /// True where the cell is ocean (land cells hold their value).
    pub mask: Vec<bool>,
}

impl OceanGrid {
    /// All-ocean grid initialised from `f(x, y)`.
    pub fn from_fn(nx: usize, ny: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut field = Vec::with_capacity(nx * ny);
        for y in 0..ny {
            for x in 0..nx {
                field.push(f(x, y));
            }
        }
        OceanGrid {
            nx,
            ny,
            field,
            mask: vec![true; nx * ny],
        }
    }

    /// Carve a rectangular continent (land) into the mask.
    pub fn add_land(&mut self, x0: usize, y0: usize, x1: usize, y1: usize) {
        for y in y0..y1.min(self.ny) {
            for x in x0..x1.min(self.nx) {
                self.mask[y * self.nx + x] = false;
            }
        }
    }

    /// Linear index.
    #[inline]
    pub fn idx(&self, x: usize, y: usize) -> usize {
        y * self.nx + x
    }

    /// Mean over ocean cells.
    pub fn ocean_mean(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (v, m) in self.field.iter().zip(&self.mask) {
            if *m {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

/// One 5-point masked Jacobi relaxation sweep with coefficient `alpha`
/// (`0 < alpha ≤ 1`); rows are processed in parallel latitude bands.
/// Boundary rows/columns are treated as zero-flux (copied neighbours).
pub fn jacobi_sweep(grid: &OceanGrid, alpha: f64) -> Vec<f64> {
    let (nx, ny) = (grid.nx, grid.ny);
    let src = &grid.field;
    let mask = &grid.mask;
    let mut next = vec![0.0; nx * ny];
    next.par_chunks_mut(nx).enumerate().for_each(|(y, row)| {
        for (x, out) in row.iter_mut().enumerate() {
            let i = y * nx + x;
            if !mask[i] {
                *out = src[i];
                continue;
            }
            let up = if y > 0 { src[i - nx] } else { src[i] };
            let down = if y + 1 < ny { src[i + nx] } else { src[i] };
            let left = if x > 0 { src[i - 1] } else { src[i] };
            let right = if x + 1 < nx { src[i + 1] } else { src[i] };
            let lap = up + down + left + right - 4.0 * src[i];
            *out = src[i] + alpha * 0.25 * lap;
        }
    });
    next
}

/// Run `iters` sweeps in place; returns the final max|Δ| per sweep
/// (convergence monitor).
pub fn relax(grid: &mut OceanGrid, alpha: f64, iters: usize) -> f64 {
    let mut last_delta = 0.0;
    for _ in 0..iters {
        let next = jacobi_sweep(grid, alpha);
        last_delta = grid
            .field
            .iter()
            .zip(&next)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        grid.field = next;
    }
    last_delta
}

/// Halo bytes exchanged per sweep for a latitude-band decomposition over
/// `ranks` ranks: each interior boundary moves two `nx` rows (up+down)
/// of f64 in each direction.
pub fn halo_bytes_per_sweep(nx: usize, ranks: usize) -> f64 {
    if ranks <= 1 {
        return 0.0;
    }
    let boundaries = (ranks - 1) as f64;
    boundaries * 2.0 * 2.0 * nx as f64 * 8.0
}

/// Flops of one masked 5-point sweep (≈ 7 per ocean cell).
pub fn sweep_flops(nx: usize, ny: usize) -> f64 {
    7.0 * (nx * ny) as f64
}

/// Arithmetic intensity of the sweep: ~7 flops per ~6 f64 moved —
/// firmly memory-bound (the §IV-B observation).
pub fn sweep_intensity() -> f64 {
    7.0 / (6.0 * 8.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_field_is_fixed_point() {
        let mut g = OceanGrid::from_fn(32, 16, |_, _| 3.5);
        let delta = relax(&mut g, 0.8, 5);
        assert!(delta < 1e-15);
        for v in &g.field {
            assert_eq!(*v, 3.5);
        }
    }

    #[test]
    fn relaxation_smooths_toward_mean() {
        let mut g = OceanGrid::from_fn(64, 64, |x, y| if (x + y) % 2 == 0 { 1.0 } else { 0.0 });
        let before_spread: f64 = g.field.iter().map(|v| (v - 0.5).abs()).fold(0.0, f64::max);
        relax(&mut g, 0.9, 50);
        let after_spread: f64 = g.field.iter().map(|v| (v - 0.5).abs()).fold(0.0, f64::max);
        assert!(after_spread < before_spread * 0.05, "{after_spread}");
    }

    #[test]
    fn mean_is_conserved_on_interior() {
        // Zero-flux boundaries conserve the ocean mean of an all-ocean
        // grid (up to roundoff).
        let mut g = OceanGrid::from_fn(48, 48, |x, y| (x * 7 + y * 13) as f64 % 10.0);
        let before = g.ocean_mean();
        relax(&mut g, 0.7, 25);
        let after = g.ocean_mean();
        assert!((before - after).abs() < 1e-9, "{before} vs {after}");
    }

    #[test]
    fn land_cells_hold_their_values() {
        let mut g = OceanGrid::from_fn(32, 32, |_, _| 0.0);
        g.add_land(10, 10, 14, 14);
        for y in 10..14 {
            for x in 10..14 {
                let i = g.idx(x, y);
                g.field[i] = 9.0;
            }
        }
        relax(&mut g, 0.8, 10);
        assert_eq!(g.field[g.idx(11, 11)], 9.0, "land unchanged");
        // Ocean next to the coast feels the boundary.
        assert!(g.field[g.idx(9, 11)] > 0.0, "heat leaks into the ocean");
    }

    #[test]
    fn halo_traffic_model() {
        assert_eq!(halo_bytes_per_sweep(1000, 1), 0.0);
        // 4 ranks → 3 boundaries × 2 rows × 2 dirs × 8 kB = 96 kB... with
        // nx=1000: 3 * 2*2*1000*8 = 96 000 B.
        assert_eq!(halo_bytes_per_sweep(1000, 4), 96_000.0);
        // Strong scaling: halo grows with ranks while work is constant.
        assert!(halo_bytes_per_sweep(1000, 16) > halo_bytes_per_sweep(1000, 4));
    }

    #[test]
    fn stencil_is_memory_bound() {
        // Intensity ≈ 0.15 flops/byte: far below any CPU/GPU ridge point.
        assert!(sweep_intensity() < 0.2);
        assert!(sweep_flops(100, 100) == 70_000.0);
    }
}
