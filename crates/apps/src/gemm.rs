//! Blocked, parallel dense matrix multiply.
//!
//! Quantum ESPRESSO leans on BLAS/LAPACK (§IV-A); the GEMM kernel is the
//! compute-bound pole of the roofline and the "dense linear algebra"
//! phase of the QE workload model.

use rayon::prelude::*;

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Row-major storage.
    pub data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Max-norm difference.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// Reference triple-loop multiply (for validation).
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols, b.rows, "inner dimensions must agree");
    let mut c = Matrix::zeros(a.rows, b.cols);
    for i in 0..a.rows {
        for k in 0..a.cols {
            let aik = a.get(i, k);
            for j in 0..b.cols {
                c.data[i * c.cols + j] += aik * b.get(k, j);
            }
        }
    }
    c
}

/// Cache-blocked multiply, parallelised over row panels with rayon.
pub fn matmul_blocked(a: &Matrix, b: &Matrix, block: usize) -> Matrix {
    assert_eq!(a.cols, b.rows, "inner dimensions must agree");
    assert!(block > 0);
    let (m, k_dim, n) = (a.rows, a.cols, b.cols);
    let mut c = Matrix::zeros(m, n);
    c.data
        .par_chunks_mut(block.min(m).max(1) * n)
        .enumerate()
        .for_each(|(panel, cpanel)| {
            let i0 = panel * block;
            let i1 = (i0 + block).min(m);
            for kk in (0..k_dim).step_by(block) {
                let k1 = (kk + block).min(k_dim);
                for jj in (0..n).step_by(block) {
                    let j1 = (jj + block).min(n);
                    for i in i0..i1 {
                        for k in kk..k1 {
                            let aik = a.data[i * k_dim + k];
                            let brow = &b.data[k * n..k * n + n];
                            let crow = &mut cpanel[(i - i0) * n..(i - i0) * n + n];
                            for j in jj..j1 {
                                crow[j] += aik * brow[j];
                            }
                        }
                    }
                }
            }
        });
    c
}

/// Flop count of an `m×k · k×n` multiply (`2 m k n`).
pub fn gemm_flops(m: usize, k: usize, n: usize) -> f64 {
    2.0 * m as f64 * k as f64 * n as f64
}

/// Arithmetic intensity of a square-`n` GEMM in flops/byte (each of the
/// three matrices moved once, lower bound).
pub fn gemm_intensity(n: usize) -> f64 {
    gemm_flops(n, n, n) / (3.0 * (n * n) as f64 * 8.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use davide_core::rng::Rng;

    fn random_matrix(rows: usize, cols: usize, rng: &mut Rng) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| rng.uniform_in(-1.0, 1.0))
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng::seed_from(1);
        let a = random_matrix(17, 17, &mut rng);
        let i = Matrix::identity(17);
        assert!(matmul_naive(&a, &i).max_abs_diff(&a) < 1e-12);
        assert!(matmul_blocked(&i, &a, 8).max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn blocked_matches_naive_square() {
        let mut rng = Rng::seed_from(2);
        let a = random_matrix(64, 64, &mut rng);
        let b = random_matrix(64, 64, &mut rng);
        let want = matmul_naive(&a, &b);
        for block in [1, 7, 16, 64, 100] {
            let got = matmul_blocked(&a, &b, block);
            assert!(got.max_abs_diff(&want) < 1e-10, "block={block} diverged");
        }
    }

    #[test]
    fn blocked_matches_naive_rectangular() {
        let mut rng = Rng::seed_from(3);
        let a = random_matrix(33, 47, &mut rng);
        let b = random_matrix(47, 21, &mut rng);
        let want = matmul_naive(&a, &b);
        let got = matmul_blocked(&a, &b, 8);
        assert!(got.max_abs_diff(&want) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = Matrix::zeros(3, 4);
        let b = Matrix::zeros(5, 3);
        matmul_naive(&a, &b);
    }

    #[test]
    fn flops_and_intensity() {
        assert_eq!(gemm_flops(10, 20, 30), 12_000.0);
        // GEMM intensity grows linearly with n: compute-bound for large n.
        assert!(gemm_intensity(1024) > gemm_intensity(128) * 7.9);
        // n/12 flops per byte: n=96 → 8 flops/byte.
        assert!((gemm_intensity(96) - 8.0).abs() < 1e-12);
    }
}
