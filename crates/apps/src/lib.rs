//! # davide-apps
//!
//! Proxy implementations of the four applications of European interest
//! co-designed with D.A.V.I.D.E. (§IV of the paper), as real Rust
//! computational kernels parallelised with rayon plus workload models
//! that carry their phase structure into the power/scheduling
//! simulations.
//!
//! | Paper application | Dominant kernel | Proxy module |
//! |---|---|---|
//! | Quantum ESPRESSO | 3-D FFT + dense linear algebra | [`fft`], [`gemm`] |
//! | NEMO | memory-bound 2-D stencils + halo exchange | [`stencil`] |
//! | SPECFEM3D | spectral-element matvec | [`sem`] |
//! | BQCD | even/odd-preconditioned lattice CG | [`lattice`], [`cg`] |
//!
//! [`workload`] holds the per-application phase models (§IV's co-design
//! view) and [`roofline`] places every kernel on the node's roofline.

#![warn(missing_docs)]

pub mod cg;
pub mod collectives;
pub mod complex;
pub mod distributed;
pub mod fft;
pub mod gemm;
pub mod lattice;
pub mod lu;
pub mod roofline;
pub mod sem;
pub mod stencil;
pub mod workload;

pub use cg::{conjugate_gradient, CgResult, LinearOp};
pub use complex::C64;
pub use distributed::DistributedRun;
pub use fft::{fft3, fft_inplace, Field3};
pub use gemm::{matmul_blocked, Matrix};
pub use lattice::{EvenOddOp, Lattice4, LatticeOp};
pub use lu::{lu_factor, run_hpl, LuFactors};
pub use sem::SemMesh;
pub use stencil::OceanGrid;
pub use workload::{AppKind, AppModel, Phase};
