//! Blocked LU factorisation with partial pivoting — the HPL (Linpack)
//! proxy.
//!
//! §I ranks machines by "Flops ... when running a Linpack benchmark";
//! D.A.V.I.D.E.'s burn-in and acceptance runs are HPL-shaped. This is a
//! right-looking blocked LU with partial pivoting, the same algorithm
//! HPL distributes: factor a panel, apply pivots, triangular-solve the
//! row block, then a big trailing GEMM update (where all the flops are),
//! parallelised with rayon.

use crate::gemm::Matrix;
use rayon::prelude::*;

/// The result of a factorisation: `A = P·L·U` stored compactly.
#[derive(Debug, Clone)]
pub struct LuFactors {
    /// Combined L\U storage (unit-diagonal L below, U on/above).
    pub lu: Matrix,
    /// Row-swap record: row `i` was swapped with `pivots[i]`.
    pub pivots: Vec<usize>,
}

/// Factor a square matrix with partial pivoting, blocked by `nb`
/// columns. Returns `None` when a pivot underflows (singular matrix).
pub fn lu_factor(a: &Matrix, nb: usize) -> Option<LuFactors> {
    assert_eq!(a.rows, a.cols, "LU needs a square matrix");
    assert!(nb >= 1);
    let n = a.rows;
    let mut lu = a.clone();
    let mut pivots: Vec<usize> = (0..n).collect();

    let mut k0 = 0;
    while k0 < n {
        let k1 = (k0 + nb).min(n);
        // --- Panel factorisation (unblocked, columns k0..k1). ---
        #[allow(clippy::needless_range_loop)] // index kernel: k addresses rows, cols, and pivots
        for k in k0..k1 {
            // Pivot search in column k, rows k..n.
            let (piv, maxval) = (k..n)
                .map(|r| (r, lu.get(r, k).abs()))
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty column");
            if maxval < 1e-12 {
                return None;
            }
            pivots[k] = piv;
            if piv != k {
                for j in 0..n {
                    let t = lu.get(k, j);
                    lu.set(k, j, lu.get(piv, j));
                    lu.set(piv, j, t);
                }
            }
            // Scale multipliers and update the panel's trailing columns.
            let dkk = lu.get(k, k);
            for r in k + 1..n {
                let m = lu.get(r, k) / dkk;
                lu.set(r, k, m);
                for j in k + 1..k1 {
                    let v = lu.get(r, j) - m * lu.get(k, j);
                    lu.set(r, j, v);
                }
            }
        }
        if k1 < n {
            // --- Row-block triangular solve: U₁₂ ← L₁₁⁻¹ A₁₂. ---
            for k in k0..k1 {
                for r in k + 1..k1 {
                    let m = lu.get(r, k);
                    for j in k1..n {
                        let v = lu.get(r, j) - m * lu.get(k, j);
                        lu.set(r, j, v);
                    }
                }
            }
            // --- Trailing update: A₂₂ ← A₂₂ − L₂₁·U₁₂ (the GEMM). ---
            let cols = lu.cols;
            let (panel_rows, trailing) = {
                // Copy L₂₁ and U₁₂ to avoid aliasing the update.
                let l21: Vec<f64> = (k1..n)
                    .flat_map(|r| (k0..k1).map(move |c| (r, c)))
                    .map(|(r, c)| lu.get(r, c))
                    .collect();
                let u12: Vec<f64> = (k0..k1)
                    .flat_map(|r| (k1..n).map(move |c| (r, c)))
                    .map(|(r, c)| lu.get(r, c))
                    .collect();
                (l21, u12)
            };
            let kb = k1 - k0;
            let ntrail = n - k1;
            lu.data[k1 * cols..]
                .par_chunks_mut(cols)
                .enumerate()
                .for_each(|(ri, row)| {
                    for kk in 0..kb {
                        let lval = panel_rows[ri * kb + kk];
                        if lval == 0.0 {
                            continue;
                        }
                        let urow = &trailing[kk * ntrail..(kk + 1) * ntrail];
                        for (j, &uv) in urow.iter().enumerate() {
                            row[k1 + j] -= lval * uv;
                        }
                    }
                });
        }
        k0 = k1;
    }
    Some(LuFactors { lu, pivots })
}

impl LuFactors {
    /// Solve `A x = b` using the factors.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.lu.rows;
        assert_eq!(b.len(), n);
        let mut x = b.to_vec();
        // Apply pivots.
        for i in 0..n {
            x.swap(i, self.pivots[i]);
        }
        // Forward: L y = Pb (unit diagonal).
        for i in 0..n {
            for k in 0..i {
                x[i] -= self.lu.get(i, k) * x[k];
            }
        }
        // Back: U x = y.
        for i in (0..n).rev() {
            for k in i + 1..n {
                x[i] -= self.lu.get(i, k) * x[k];
            }
            x[i] /= self.lu.get(i, i);
        }
        x
    }
}

/// HPL flop count: `2/3 n³ + 2 n²`.
pub fn hpl_flops(n: usize) -> f64 {
    let n = n as f64;
    2.0 / 3.0 * n * n * n + 2.0 * n * n
}

/// HPL-style residual check:
/// `‖A x − b‖∞ / (ε · (‖A‖∞ ‖x‖∞ + ‖b‖∞) · n)` must be O(1).
pub fn hpl_residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
    let n = a.rows;
    let mut r_inf = 0.0_f64;
    for (i, &bi) in b.iter().enumerate().take(n) {
        let ax: f64 = x.iter().enumerate().map(|(j, &xj)| a.get(i, j) * xj).sum();
        r_inf = r_inf.max((ax - bi).abs());
    }
    let a_inf = (0..n)
        .map(|i| (0..n).map(|j| a.get(i, j).abs()).sum::<f64>())
        .fold(0.0_f64, f64::max);
    let x_inf = x.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    let b_inf = b.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    let eps = f64::EPSILON;
    r_inf / (eps * (a_inf * x_inf + b_inf) * n as f64)
}

/// Run the HPL proxy: factor a random-ish `n×n` system, solve, verify.
/// Returns `(gflops_sustained, residual)`.
pub fn run_hpl(n: usize, nb: usize, seed: u64) -> (f64, f64) {
    use davide_core::rng::Rng;
    let mut rng = Rng::seed_from(seed);
    let a = Matrix::from_fn(n, n, |_, _| rng.uniform_in(-0.5, 0.5));
    let b: Vec<f64> = (0..n).map(|_| rng.uniform_in(-0.5, 0.5)).collect();
    let t = std::time::Instant::now();
    let f = lu_factor(&a, nb).expect("random matrix is nonsingular");
    let x = f.solve(&b);
    let dt = t.elapsed().as_secs_f64();
    (hpl_flops(n) / dt / 1e9, hpl_residual(&a, &x, &b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use davide_core::rng::Rng;

    fn random_system(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = Rng::seed_from(seed);
        let a = Matrix::from_fn(n, n, |_, _| rng.uniform_in(-1.0, 1.0));
        let b: Vec<f64> = (0..n).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
        (a, b)
    }

    #[test]
    fn identity_factors_trivially() {
        let i = Matrix::identity(8);
        let f = lu_factor(&i, 4).unwrap();
        let b: Vec<f64> = (0..8).map(|k| k as f64).collect();
        let x = f.solve(&b);
        for (xi, bi) in x.iter().zip(&b) {
            assert!((xi - bi).abs() < 1e-12);
        }
    }

    #[test]
    fn solves_random_systems_across_block_sizes() {
        let (a, b) = random_system(50, 3);
        for nb in [1, 7, 16, 50, 64] {
            let f = lu_factor(&a, nb).expect("nonsingular");
            let x = f.solve(&b);
            let res = hpl_residual(&a, &x, &b);
            assert!(res < 50.0, "nb={nb}: residual {res}");
        }
    }

    #[test]
    fn blocked_matches_unblocked() {
        let (a, b) = random_system(33, 5);
        let x1 = lu_factor(&a, 1).unwrap().solve(&b);
        let x2 = lu_factor(&a, 8).unwrap().solve(&b);
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_element() {
        // A matrix needing a row swap at the first step.
        let mut a = Matrix::zeros(3, 3);
        let vals = [[0.0, 1.0, 2.0], [1.0, 0.0, 1.0], [2.0, 3.0, 0.0]];
        for (i, row) in vals.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                a.set(i, j, v);
            }
        }
        let b = vec![5.0, 2.0, 8.0];
        let f = lu_factor(&a, 2).expect("nonsingular with pivoting");
        let x = f.solve(&b);
        assert!(hpl_residual(&a, &x, &b) < 10.0);
    }

    #[test]
    fn singular_matrix_detected() {
        let mut a = Matrix::zeros(4, 4);
        // Rank-1 matrix.
        for i in 0..4 {
            for j in 0..4 {
                a.set(i, j, (i + 1) as f64 * (j + 1) as f64);
            }
        }
        assert!(lu_factor(&a, 2).is_none());
    }

    #[test]
    fn hpl_run_passes_acceptance() {
        let (gflops, residual) = run_hpl(128, 32, 7);
        // No wall-clock bar here: debug builds under load are slow; the
        // sustained-rate claims live in the criterion bench (e1_hpl_lu).
        assert!(gflops > 0.0 && gflops.is_finite(), "throughput: {gflops}");
        // HPL acceptance: scaled residual O(1) — typically < 16.
        assert!(residual < 16.0, "residual {residual}");
    }

    #[test]
    fn flop_count_formula() {
        assert!((hpl_flops(1000) - (2.0 / 3.0 * 1e9 + 2e6)).abs() < 1.0);
    }
}
