//! Conjugate-gradient solver — the computational core of BQCD.
//!
//! §IV-D: "The main kernel of BQCD is a conjugate gradient solver with
//! even/odd preconditioning. Within this kernel, a matrix-vector
//! multiplication, where the matrix is sparse, is the dominating
//! operation." The solver is generic over the operator so the lattice
//! (BQCD) and spectral-element (SPECFEM3D) operators share it.

use rayon::prelude::*;

/// A symmetric positive-definite linear operator.
pub trait LinearOp: Sync {
    /// Vector dimension.
    fn dim(&self) -> usize;
    /// `y ← A·x`.
    fn apply(&self, x: &[f64], y: &mut [f64]);
}

/// Parallel dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.par_iter().zip(b.par_iter()).map(|(x, y)| x * y).sum()
}

/// Parallel `y ← y + alpha·x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    y.par_iter_mut().zip(x.par_iter()).for_each(|(yi, xi)| {
        *yi += alpha * xi;
    });
}

/// Parallel `y ← x + beta·y`.
pub fn xpby(x: &[f64], beta: f64, y: &mut [f64]) {
    y.par_iter_mut().zip(x.par_iter()).for_each(|(yi, xi)| {
        *yi = xi + beta * *yi;
    });
}

/// Outcome of a CG solve.
#[derive(Debug, Clone, PartialEq)]
pub struct CgResult {
    /// Iterations executed.
    pub iterations: usize,
    /// Final residual 2-norm.
    pub residual_norm: f64,
    /// Whether `residual_norm ≤ tol · ‖b‖`.
    pub converged: bool,
    /// Residual-norm history (one entry per iteration).
    pub history: Vec<f64>,
}

/// Solve `A x = b` by conjugate gradients, starting from the provided
/// `x` (commonly zero). `A` must be symmetric positive-definite.
pub fn conjugate_gradient(
    op: &dyn LinearOp,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iter: usize,
) -> CgResult {
    let n = op.dim();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    let b_norm = dot(b, b).sqrt();
    if b_norm == 0.0 {
        x.fill(0.0);
        return CgResult {
            iterations: 0,
            residual_norm: 0.0,
            converged: true,
            history: vec![],
        };
    }
    let target = tol * b_norm;

    let mut r = vec![0.0; n];
    op.apply(x, &mut r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    let mut p = r.clone();
    let mut ap = vec![0.0; n];
    let mut rr = dot(&r, &r);
    let mut history = Vec::new();

    for it in 0..max_iter {
        let res = rr.sqrt();
        history.push(res);
        if res <= target {
            return CgResult {
                iterations: it,
                residual_norm: res,
                converged: true,
                history,
            };
        }
        op.apply(&p, &mut ap);
        let pap = dot(&p, &ap);
        debug_assert!(pap > 0.0, "operator not positive-definite (pᵀAp={pap})");
        let alpha = rr / pap;
        axpy(alpha, &p, x);
        axpy(-alpha, &ap, &mut r);
        let rr_new = dot(&r, &r);
        let beta = rr_new / rr;
        xpby(&r, beta, &mut p);
        rr = rr_new;
    }
    let res = rr.sqrt();
    history.push(res);
    CgResult {
        iterations: max_iter,
        residual_norm: res,
        converged: res <= target,
        history,
    }
}

/// Flops per CG iteration for an operator with `nnz` nonzeros on an
/// `n`-vector: one matvec (2·nnz) plus ~10·n of vector work.
pub fn cg_iteration_flops(n: usize, nnz: usize) -> f64 {
    2.0 * nnz as f64 + 10.0 * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simple SPD test operator: tridiagonal (2, -1) Laplacian + shift.
    struct Tridiag {
        n: usize,
        shift: f64,
    }

    impl LinearOp for Tridiag {
        fn dim(&self) -> usize {
            self.n
        }
        fn apply(&self, x: &[f64], y: &mut [f64]) {
            for i in 0..self.n {
                let mut v = (2.0 + self.shift) * x[i];
                if i > 0 {
                    v -= x[i - 1];
                }
                if i + 1 < self.n {
                    v -= x[i + 1];
                }
                y[i] = v;
            }
        }
    }

    #[test]
    fn solves_tridiagonal_system() {
        let op = Tridiag { n: 200, shift: 0.1 };
        let x_true: Vec<f64> = (0..200).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let mut b = vec![0.0; 200];
        op.apply(&x_true, &mut b);
        let mut x = vec![0.0; 200];
        let res = conjugate_gradient(&op, &b, &mut x, 1e-12, 1000);
        assert!(
            res.converged,
            "iters={} res={}",
            res.iterations, res.residual_norm
        );
        for (a, t) in x.iter().zip(&x_true) {
            assert!((a - t).abs() < 1e-8);
        }
    }

    #[test]
    fn residual_history_decreases_overall() {
        let op = Tridiag {
            n: 500,
            shift: 0.05,
        };
        let b = vec![1.0; 500];
        let mut x = vec![0.0; 500];
        let res = conjugate_gradient(&op, &b, &mut x, 1e-10, 2000);
        assert!(res.converged);
        let first = res.history[0];
        let last = *res.history.last().unwrap();
        assert!(last < first * 1e-8);
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let op = Tridiag { n: 10, shift: 1.0 };
        let b = vec![0.0; 10];
        let mut x = vec![5.0; 10];
        let res = conjugate_gradient(&op, &b, &mut x, 1e-10, 100);
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn better_conditioning_converges_faster() {
        let b = vec![1.0; 300];
        let mut x1 = vec![0.0; 300];
        let mut x2 = vec![0.0; 300];
        let ill = Tridiag {
            n: 300,
            shift: 0.001,
        };
        let well = Tridiag { n: 300, shift: 1.0 };
        let r_ill = conjugate_gradient(&ill, &b, &mut x1, 1e-10, 5000);
        let r_well = conjugate_gradient(&well, &b, &mut x2, 1e-10, 5000);
        assert!(r_well.iterations < r_ill.iterations / 2);
    }

    #[test]
    fn max_iter_respected() {
        let op = Tridiag {
            n: 400,
            shift: 1e-6,
        };
        let b = vec![1.0; 400];
        let mut x = vec![0.0; 400];
        let res = conjugate_gradient(&op, &b, &mut x, 1e-16, 3);
        assert_eq!(res.iterations, 3);
        assert!(!res.converged);
    }

    #[test]
    fn blas1_helpers() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![4.0, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        let mut y = b.clone();
        axpy(2.0, &a, &mut y);
        assert_eq!(y, vec![6.0, 9.0, 12.0]);
        let mut y2 = vec![1.0, 1.0, 1.0];
        xpby(&a, 3.0, &mut y2);
        assert_eq!(y2, vec![4.0, 5.0, 6.0]);
    }

    #[test]
    fn flops_model() {
        assert_eq!(cg_iteration_flops(100, 500), 2000.0);
    }
}
