//! Radix-2 FFT kernels — the dominant operation of Quantum ESPRESSO
//! (§IV-A: "one of the major performance impact factors is in the Fast
//! Fourier Transform").
//!
//! A cache-friendly iterative Cooley–Tukey 1-D transform plus a
//! slab-decomposed 3-D transform parallelised with rayon, mirroring how
//! plane-wave codes run batched FFTs per SCF iteration.

use crate::complex::C64;
use rayon::prelude::*;

/// In-place iterative radix-2 DIT FFT. `data.len()` must be a power of
/// two. `inverse` selects the inverse transform (normalised by 1/N).
pub fn fft_inplace(data: &mut [C64], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterfly passes.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = C64::cis(ang);
        for chunk in data.chunks_mut(len) {
            let mut w = C64::ONE;
            let half = len / 2;
            for k in 0..half {
                let u = chunk[k];
                let v = chunk[k + half] * w;
                chunk[k] = u + v;
                chunk[k + half] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
    if inverse {
        let inv = 1.0 / n as f64;
        for z in data.iter_mut() {
            *z = z.scale(inv);
        }
    }
}

/// Forward FFT of a real signal; returns the complex spectrum.
pub fn fft_real(signal: &[f64]) -> Vec<C64> {
    let mut data: Vec<C64> = signal.iter().map(|&x| C64::real(x)).collect();
    fft_inplace(&mut data, false);
    data
}

/// A dense 3-D complex field of shape `n × n × n`, stored x-fastest.
#[derive(Debug, Clone, PartialEq)]
pub struct Field3 {
    /// Edge length (power of two).
    pub n: usize,
    /// `n³` values, index `(x, y, z) → x + n(y + n z)`.
    pub data: Vec<C64>,
}

impl Field3 {
    /// Zero-filled field.
    pub fn zeros(n: usize) -> Self {
        assert!(n.is_power_of_two());
        Field3 {
            n,
            data: vec![C64::ZERO; n * n * n],
        }
    }

    /// Build from a function of the grid indices.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize, usize) -> C64) -> Self {
        assert!(n.is_power_of_two());
        let mut data = Vec::with_capacity(n * n * n);
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    data.push(f(x, y, z));
                }
            }
        }
        Field3 { n, data }
    }

    /// Linear index of `(x, y, z)`.
    #[inline]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        x + self.n * (y + self.n * z)
    }

    /// Maximum |a−b| over the field.
    pub fn max_abs_diff(&self, other: &Field3) -> f64 {
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
    }
}

/// 3-D FFT by three axis passes, each parallelised over lines with
/// rayon — the slab/pencil decomposition plane-wave codes use.
pub fn fft3(field: &mut Field3, inverse: bool) {
    let n = field.n;

    // Pass 1: x-lines are contiguous.
    field
        .data
        .par_chunks_mut(n)
        .for_each(|line| fft_inplace(line, inverse));

    // Pass 2: y-lines (stride n within each z-plane).
    let plane = n * n;
    field.data.par_chunks_mut(plane).for_each(|zplane| {
        let mut line = vec![C64::ZERO; n];
        for x in 0..n {
            for y in 0..n {
                line[y] = zplane[x + n * y];
            }
            fft_inplace(&mut line, inverse);
            for y in 0..n {
                zplane[x + n * y] = line[y];
            }
        }
    });

    // Pass 3: z-lines (stride n² across planes). Parallelise over (x,y)
    // columns by transposing into a scratch of z-contiguous pencils.
    let data = &mut field.data;
    let mut pencils: Vec<Vec<C64>> = (0..plane)
        .into_par_iter()
        .map(|xy| {
            let mut line = vec![C64::ZERO; n];
            for (z, v) in line.iter_mut().enumerate() {
                *v = data[xy + plane * z];
            }
            fft_inplace(&mut line, inverse);
            line
        })
        .collect();
    for (xy, line) in pencils.drain(..).enumerate() {
        for (z, v) in line.into_iter().enumerate() {
            data[xy + plane * z] = v;
        }
    }
}

/// Flop count of one complex radix-2 FFT of length `n` (the standard
/// `5 n log₂ n` estimate), used by the workload power models.
pub fn fft_flops(n: usize) -> f64 {
    5.0 * n as f64 * (n as f64).log2()
}

/// Flop count of a full 3-D transform of edge `n` (3·n² line FFTs).
pub fn fft3_flops(n: usize) -> f64 {
    3.0 * (n * n) as f64 * fft_flops(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_transforms_to_flat_spectrum() {
        let mut data = vec![C64::ZERO; 8];
        data[0] = C64::ONE;
        fft_inplace(&mut data, false);
        for z in &data {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let k = 5;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * k as f64 * i as f64 / n as f64).cos())
            .collect();
        let spec = fft_real(&signal);
        for (i, z) in spec.iter().enumerate() {
            let mag = z.abs();
            if i == k || i == n - k {
                assert!((mag - n as f64 / 2.0).abs() < 1e-9, "bin {i}: {mag}");
            } else {
                assert!(mag < 1e-9, "leakage in bin {i}: {mag}");
            }
        }
    }

    #[test]
    fn inverse_is_identity() {
        let n = 256;
        let mut data: Vec<C64> = (0..n)
            .map(|i| C64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let orig = data.clone();
        fft_inplace(&mut data, false);
        fft_inplace(&mut data, true);
        for (a, b) in data.iter().zip(&orig) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let n = 128;
        let signal: Vec<f64> = (0..n).map(|i| ((i * i) as f64 * 0.013).sin()).collect();
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let spec = fft_real(&signal);
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy.max(1.0));
    }

    #[test]
    fn fft_is_linear() {
        let n = 32;
        let a: Vec<C64> = (0..n).map(|i| C64::new(i as f64, -(i as f64))).collect();
        let b: Vec<C64> = (0..n).map(|i| C64::new((i as f64).sqrt(), 1.0)).collect();
        let mut sum: Vec<C64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        fft_inplace(&mut fa, false);
        fft_inplace(&mut fb, false);
        fft_inplace(&mut sum, false);
        for i in 0..n {
            assert!((sum[i] - (fa[i] + fb[i])).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut data = vec![C64::ZERO; 12];
        fft_inplace(&mut data, false);
    }

    #[test]
    fn fft3_roundtrip() {
        let n = 16;
        let field = Field3::from_fn(n, |x, y, z| {
            C64::new(
                (x as f64 * 0.3 + y as f64 * 0.7).sin(),
                (z as f64 * 0.2).cos(),
            )
        });
        let mut work = field.clone();
        fft3(&mut work, false);
        fft3(&mut work, true);
        assert!(work.max_abs_diff(&field) < 1e-9);
    }

    #[test]
    fn fft3_plane_wave_is_delta_in_k_space() {
        let n = 8;
        let (kx, ky, kz) = (2, 3, 1);
        let field = Field3::from_fn(n, |x, y, z| {
            let phase = 2.0 * std::f64::consts::PI * (kx * x + ky * y + kz * z) as f64 / n as f64;
            C64::cis(phase)
        });
        let mut work = field.clone();
        fft3(&mut work, false);
        let hot = work.idx(kx, ky, kz);
        for (i, v) in work.data.iter().enumerate() {
            if i == hot {
                assert!((v.abs() - (n * n * n) as f64).abs() < 1e-6);
            } else {
                assert!(v.abs() < 1e-6, "bin {i} leaked {}", v.abs());
            }
        }
    }

    #[test]
    fn flop_model_monotone() {
        assert!(fft_flops(1024) > fft_flops(512) * 2.0);
        assert!(fft3_flops(64) > 3.0 * 64.0 * 64.0 * fft_flops(64) * 0.99);
    }
}
