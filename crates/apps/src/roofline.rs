//! Roofline placement of the proxy kernels on the D.A.V.I.D.E. node.
//!
//! §IV motivates co-design by where each application sits relative to the
//! machine balance: QE's GEMM phases are compute-bound, NEMO's stencils
//! are memory-bandwidth-bound, SEM and the lattice CG sit in between.

use davide_core::units::{GBps, Gflops};

/// A compute device's roofline: peak flops and peak memory bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    /// Peak double-precision throughput.
    pub peak: Gflops,
    /// Peak memory bandwidth.
    pub bandwidth: GBps,
}

impl Roofline {
    /// One Tesla P100: 5.3 TFlops DP, 732 GB/s HBM2.
    pub fn p100() -> Self {
        Roofline {
            peak: Gflops::from_tflops(5.3),
            bandwidth: GBps(732.0),
        }
    }

    /// One POWER8+ socket: ≈209 GFlops (nominal), 115 GB/s sustained.
    pub fn power8_socket() -> Self {
        Roofline {
            peak: Gflops(208.6),
            bandwidth: GBps(115.0),
        }
    }

    /// Arithmetic intensity at the ridge point (flops/byte where the
    /// device transitions from memory- to compute-bound).
    pub fn ridge_intensity(&self) -> f64 {
        self.peak.0 / self.bandwidth.0
    }

    /// Attainable throughput for a kernel of arithmetic intensity
    /// `flops_per_byte`: `min(peak, I × BW)`.
    pub fn attainable(&self, flops_per_byte: f64) -> Gflops {
        Gflops((flops_per_byte * self.bandwidth.0).min(self.peak.0))
    }

    /// True when the kernel is memory-bound on this device.
    pub fn memory_bound(&self, flops_per_byte: f64) -> bool {
        flops_per_byte < self.ridge_intensity()
    }
}

/// Named kernel intensities used by the E14–E17 reports.
pub fn kernel_intensities() -> Vec<(&'static str, f64)> {
    vec![
        ("stencil-5pt (NEMO)", crate::stencil::sweep_intensity()),
        ("lattice-cg matvec (BQCD)", 17.0 / (10.0 * 8.0)),
        ("sem matvec (SPECFEM3D)", {
            let mesh = crate::sem::SemMesh::new(64, 4, 1.0);
            mesh.matvec_flops() / mesh.matvec_bytes()
        }),
        ("fft-1024 (QE)", {
            // 5 n log n flops over ~2 passes of complex data.
            crate::fft::fft_flops(1024) / (2.0 * 1024.0 * 16.0)
        }),
        ("gemm-2048 (QE)", crate::gemm::gemm_intensity(2048)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p100_ridge_point() {
        let r = Roofline::p100();
        // 5300/732 ≈ 7.2 flops/byte.
        assert!((r.ridge_intensity() - 7.24).abs() < 0.05);
    }

    #[test]
    fn attainable_saturates_at_peak() {
        let r = Roofline::p100();
        assert_eq!(r.attainable(1000.0), r.peak);
        // At intensity 1 the P100 gives 732 GFlops.
        assert!((r.attainable(1.0).0 - 732.0).abs() < 1e-9);
    }

    #[test]
    fn kernel_classification_matches_paper() {
        let gpu = Roofline::p100();
        let ints = kernel_intensities();
        let find = |name: &str| {
            ints.iter()
                .find(|(n, _)| n.starts_with(name))
                .map(|&(_, i)| i)
                .expect("kernel present")
        };
        // NEMO stencil: deeply memory-bound (§IV-B).
        assert!(gpu.memory_bound(find("stencil")));
        // Lattice matvec: memory-bound on GPU (why QUDA chases bandwidth).
        assert!(gpu.memory_bound(find("lattice")));
        // Large GEMM: compute-bound.
        assert!(!gpu.memory_bound(find("gemm")));
        // Intensities are ordered stencil < lattice < gemm.
        assert!(find("stencil") < find("lattice"));
        assert!(find("lattice") < find("gemm"));
    }

    #[test]
    fn cpu_socket_is_more_balanced_than_gpu() {
        // POWER8's ridge (≈1.8) is far left of P100's (≈7.2): the CPU
        // feeds low-intensity kernels relatively better — the reason
        // NEMO's GPU benefit is modest.
        let cpu = Roofline::power8_socket();
        let gpu = Roofline::p100();
        assert!(cpu.ridge_intensity() < gpu.ridge_intensity() / 3.0);
    }
}
