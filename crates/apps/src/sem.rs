//! Spectral-element matvec — the SPECFEM3D proxy.
//!
//! §IV-C: SPECFEM3D simulates seismic wave propagation with the
//! spectral-element method; its kernels are per-element dense operations
//! gathered/scattered through shared element-boundary nodes, with
//! neatly-overlapped boundary exchanges. The proxy is a 1-D SEM
//! Laplacian: degree-`p` elements with `p+1` nodes each, adjacent
//! elements sharing their boundary node, assembled on the fly
//! (gather → dense local matvec → scatter-add), which is exactly the
//! data movement SPECFEM performs per time step.

use crate::cg::LinearOp;
use crate::gemm::Matrix;
use rayon::prelude::*;

/// A 1-D spectral-element mesh.
#[derive(Debug, Clone)]
pub struct SemMesh {
    /// Number of elements.
    pub elements: usize,
    /// Polynomial degree per element (nodes per element = p+1).
    pub degree: usize,
    /// Local stiffness matrix, shared by all elements (uniform mesh).
    pub local: Matrix,
    /// Mass shift making the global operator positive-definite.
    pub shift: f64,
}

/// Local stiffness of the reference element for degree `p`, built from
/// second differences on uniform nodes (a valid SPD-after-shift stand-in
/// for the GLL stiffness with the same coupling topology).
fn local_stiffness(p: usize) -> Matrix {
    let n = p + 1;
    let h = 1.0 / p as f64;
    let mut k = Matrix::zeros(n, n);
    // Assemble 1-D linear-FEM stiffness over the p sub-intervals of the
    // element: each sub-interval contributes [[1,-1],[-1,1]]/h.
    for e in 0..p {
        k.data[e * n + e] += 1.0 / h;
        k.data[e * n + e + 1] -= 1.0 / h;
        k.data[(e + 1) * n + e] -= 1.0 / h;
        k.data[(e + 1) * n + e + 1] += 1.0 / h;
    }
    k
}

impl SemMesh {
    /// Uniform mesh of `elements` degree-`degree` elements with mass
    /// shift `shift > 0`.
    pub fn new(elements: usize, degree: usize, shift: f64) -> Self {
        assert!(elements >= 1 && degree >= 1);
        assert!(shift > 0.0, "shift must be positive for SPD");
        SemMesh {
            elements,
            degree,
            local: local_stiffness(degree),
            shift,
        }
    }

    /// Global degrees of freedom: interior nodes plus shared boundaries.
    pub fn dofs(&self) -> usize {
        self.elements * self.degree + 1
    }

    /// Global index of local node `a` of element `e`.
    #[inline]
    pub fn global_index(&self, e: usize, a: usize) -> usize {
        e * self.degree + a
    }

    /// Bytes moved per matvec (gather + scatter of every element node).
    pub fn matvec_bytes(&self) -> f64 {
        let nodes = self.elements * (self.degree + 1);
        (2 * nodes * 8) as f64
    }

    /// Flops per matvec: per-element dense matvec `2(p+1)²` + scatter.
    pub fn matvec_flops(&self) -> f64 {
        let n = self.degree + 1;
        self.elements as f64 * (2.0 * (n * n) as f64 + n as f64)
    }
}

impl LinearOp for SemMesh {
    fn dim(&self) -> usize {
        self.dofs()
    }

    /// `y ← (K + shift·I) x` assembled element by element. Elements are
    /// processed in parallel into per-thread partial outputs that are
    /// reduced at the end (the lock-free equivalent of SPECFEM's
    /// colouring strategy).
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let n = self.degree + 1;
        let dofs = self.dofs();
        let partial: Vec<f64> = (0..self.elements)
            .into_par_iter()
            .fold(
                || vec![0.0; dofs],
                |mut acc, e| {
                    // Gather.
                    let mut xl = vec![0.0; n];
                    for (a, v) in xl.iter_mut().enumerate() {
                        *v = x[self.global_index(e, a)];
                    }
                    // Dense local matvec.
                    for a in 0..n {
                        let s: f64 = self.local.data[a * n..(a + 1) * n]
                            .iter()
                            .zip(&xl)
                            .map(|(m, x)| m * x)
                            .sum();
                        // Scatter-add.
                        acc[self.global_index(e, a)] += s;
                    }
                    acc
                },
            )
            .reduce(
                || vec![0.0; dofs],
                |mut a, b| {
                    for (ai, bi) in a.iter_mut().zip(b) {
                        *ai += bi;
                    }
                    a
                },
            );
        for i in 0..dofs {
            y[i] = partial[i] + self.shift * x[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::{conjugate_gradient, dot};
    use davide_core::rng::Rng;

    #[test]
    fn dof_count_shares_boundaries() {
        let mesh = SemMesh::new(10, 4, 1.0);
        // 10 elements × 4 + 1 shared chain = 41 DoFs, not 50.
        assert_eq!(mesh.dofs(), 41);
        assert_eq!(mesh.global_index(0, 4), mesh.global_index(1, 0));
    }

    #[test]
    fn constant_vector_in_stiffness_nullspace() {
        // K·1 = 0, so (K + s·I)·1 = s·1.
        let mesh = SemMesh::new(8, 3, 0.7);
        let x = vec![1.0; mesh.dofs()];
        let mut y = vec![0.0; mesh.dofs()];
        mesh.apply(&x, &mut y);
        for v in &y {
            assert!((v - 0.7).abs() < 1e-12, "v={v}");
        }
    }

    #[test]
    fn operator_is_symmetric_positive_definite() {
        let mesh = SemMesh::new(12, 5, 0.5);
        let n = mesh.dofs();
        let mut rng = Rng::seed_from(4);
        let x: Vec<f64> = (0..n).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
        let y: Vec<f64> = (0..n).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
        let mut ax = vec![0.0; n];
        let mut ay = vec![0.0; n];
        mesh.apply(&x, &mut ax);
        mesh.apply(&y, &mut ay);
        assert!((dot(&ax, &y) - dot(&x, &ay)).abs() < 1e-9);
        assert!(dot(&ax, &x) > 0.0);
    }

    #[test]
    fn matches_dense_assembly() {
        // Assemble the global matrix explicitly and compare matvecs.
        let mesh = SemMesh::new(4, 2, 0.3);
        let n = mesh.dofs();
        let nn = mesh.degree + 1;
        let mut dense = Matrix::zeros(n, n);
        for e in 0..mesh.elements {
            for a in 0..nn {
                for b in 0..nn {
                    let (ga, gb) = (mesh.global_index(e, a), mesh.global_index(e, b));
                    dense.data[ga * n + gb] += mesh.local.data[a * nn + b];
                }
            }
        }
        for i in 0..n {
            dense.data[i * n + i] += mesh.shift;
        }
        let mut rng = Rng::seed_from(6);
        let x: Vec<f64> = (0..n).map(|_| rng.uniform_in(-2.0, 2.0)).collect();
        let mut y_op = vec![0.0; n];
        mesh.apply(&x, &mut y_op);
        for (i, &got) in y_op.iter().enumerate() {
            let want: f64 = dense.data[i * n..(i + 1) * n]
                .iter()
                .zip(&x)
                .map(|(m, xv)| m * xv)
                .sum();
            assert!((got - want).abs() < 1e-10, "row {i}");
        }
    }

    #[test]
    fn cg_solves_sem_system() {
        let mesh = SemMesh::new(32, 4, 0.4);
        let n = mesh.dofs();
        let mut rng = Rng::seed_from(8);
        let x_true: Vec<f64> = (0..n).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
        let mut b = vec![0.0; n];
        mesh.apply(&x_true, &mut b);
        let mut x = vec![0.0; n];
        let res = conjugate_gradient(&mesh, &b, &mut x, 1e-11, 10_000);
        assert!(res.converged, "res={}", res.residual_norm);
        for (a, t) in x.iter().zip(&x_true) {
            assert!((a - t).abs() < 1e-6);
        }
    }

    #[test]
    fn cost_models_scale() {
        let small = SemMesh::new(10, 4, 1.0);
        let big = SemMesh::new(100, 4, 1.0);
        assert!((big.matvec_flops() / small.matvec_flops() - 10.0).abs() < 1e-9);
        assert!(big.matvec_bytes() > small.matvec_bytes());
        // SEM intensity beats the 5-point stencil but is below GEMM.
        let intensity = small.matvec_flops() / small.matvec_bytes();
        assert!(intensity > crate::stencil::sweep_intensity());
        assert!(intensity < crate::gemm::gemm_intensity(1024));
    }
}
