//! MQTT 3.1.1 wire codec.
//!
//! The in-process broker exchanges [`Packet`] values directly, but the
//! codec is what makes the implementation protocol-true: every packet can
//! round-trip through the real wire format (fixed header, variable-length
//! remaining-length field, UTF-8 strings with 16-bit lengths).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Quality-of-service level (QoS 2 is not used by the DAVIDE stack).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QoS {
    /// Fire and forget.
    AtMostOnce = 0,
    /// Acknowledged delivery.
    AtLeastOnce = 1,
}

impl QoS {
    /// Decode from the 2-bit wire field.
    pub fn from_bits(bits: u8) -> Result<QoS, CodecError> {
        match bits {
            0 => Ok(QoS::AtMostOnce),
            1 => Ok(QoS::AtLeastOnce),
            _ => Err(CodecError::UnsupportedQoS(bits)),
        }
    }
}

/// Codec failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Unknown packet type nibble.
    UnknownPacketType(u8),
    /// Remaining-length field exceeded 4 bytes.
    MalformedRemainingLength,
    /// A length-prefixed string was not valid UTF-8.
    InvalidUtf8,
    /// The payload ended before the declared length.
    Truncated,
    /// QoS 2 or a reserved QoS value.
    UnsupportedQoS(u8),
    /// Reserved flag bits were set incorrectly.
    BadFlags,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnknownPacketType(t) => write!(f, "unknown packet type {t:#x}"),
            CodecError::MalformedRemainingLength => write!(f, "malformed remaining length"),
            CodecError::InvalidUtf8 => write!(f, "invalid UTF-8 in string field"),
            CodecError::Truncated => write!(f, "packet truncated"),
            CodecError::UnsupportedQoS(q) => write!(f, "unsupported QoS {q}"),
            CodecError::BadFlags => write!(f, "reserved flag bits set"),
        }
    }
}

impl std::error::Error for CodecError {}

/// An MQTT control packet (the 3.1.1 subset the stack uses).
#[derive(Debug, Clone, PartialEq)]
pub enum Packet {
    /// Client connection request.
    Connect {
        /// Client identifier.
        client_id: String,
        /// Keep-alive interval in seconds.
        keep_alive: u16,
        /// Discard any previous session state.
        clean_session: bool,
    },
    /// Broker's connection acknowledgement.
    ConnAck {
        /// Whether stored session state exists.
        session_present: bool,
        /// Return code (0 = accepted).
        code: u8,
    },
    /// Application message.
    Publish {
        /// Topic name (no wildcards).
        topic: String,
        /// Application payload.
        payload: Bytes,
        /// Delivery QoS.
        qos: QoS,
        /// Retain flag.
        retain: bool,
        /// Duplicate-delivery flag.
        dup: bool,
        /// Packet identifier (present iff QoS > 0).
        packet_id: Option<u16>,
    },
    /// QoS 1 acknowledgement.
    PubAck {
        /// Identifier of the acknowledged PUBLISH.
        packet_id: u16,
    },
    /// Subscription request.
    Subscribe {
        /// Packet identifier.
        packet_id: u16,
        /// `(filter, max_qos)` pairs.
        filters: Vec<(String, QoS)>,
    },
    /// Subscription acknowledgement.
    SubAck {
        /// Identifier of the acknowledged SUBSCRIBE.
        packet_id: u16,
        /// Granted QoS per filter (0x80 = failure).
        return_codes: Vec<u8>,
    },
    /// Unsubscription request.
    Unsubscribe {
        /// Packet identifier.
        packet_id: u16,
        /// Filters to remove.
        filters: Vec<String>,
    },
    /// Unsubscription acknowledgement.
    UnsubAck {
        /// Identifier of the acknowledged UNSUBSCRIBE.
        packet_id: u16,
    },
    /// Keep-alive probe.
    PingReq,
    /// Keep-alive response.
    PingResp,
    /// Clean disconnect.
    Disconnect,
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u16(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn put_remaining_length(buf: &mut BytesMut, mut len: usize) {
    loop {
        let mut byte = (len % 128) as u8;
        len /= 128;
        if len > 0 {
            byte |= 0x80;
        }
        buf.put_u8(byte);
        if len == 0 {
            break;
        }
    }
}

fn get_remaining_length(buf: &mut impl Buf) -> Result<Option<usize>, CodecError> {
    let mut multiplier = 1usize;
    let mut value = 0usize;
    for i in 0..4 {
        if !buf.has_remaining() {
            return Ok(None);
        }
        let byte = buf.get_u8();
        value += (byte & 0x7F) as usize * multiplier;
        if byte & 0x80 == 0 {
            return Ok(Some(value));
        }
        multiplier *= 128;
        if i == 3 {
            return Err(CodecError::MalformedRemainingLength);
        }
    }
    Err(CodecError::MalformedRemainingLength)
}

fn get_string(buf: &mut Bytes) -> Result<String, CodecError> {
    if buf.remaining() < 2 {
        return Err(CodecError::Truncated);
    }
    let len = buf.get_u16() as usize;
    if buf.remaining() < len {
        return Err(CodecError::Truncated);
    }
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec()).map_err(|_| CodecError::InvalidUtf8)
}

/// Encode a packet onto `buf` in wire format.
pub fn encode(packet: &Packet, buf: &mut BytesMut) {
    let mut body = BytesMut::new();
    let first_byte: u8;
    match packet {
        Packet::Connect {
            client_id,
            keep_alive,
            clean_session,
        } => {
            first_byte = 0x10;
            put_string(&mut body, "MQTT");
            body.put_u8(4); // protocol level 3.1.1
            body.put_u8(if *clean_session { 0x02 } else { 0x00 });
            body.put_u16(*keep_alive);
            put_string(&mut body, client_id);
        }
        Packet::ConnAck {
            session_present,
            code,
        } => {
            first_byte = 0x20;
            body.put_u8(u8::from(*session_present));
            body.put_u8(*code);
        }
        Packet::Publish {
            topic,
            payload,
            qos,
            retain,
            dup,
            packet_id,
        } => {
            first_byte = 0x30 | (u8::from(*dup) << 3) | ((*qos as u8) << 1) | u8::from(*retain);
            put_string(&mut body, topic);
            if *qos != QoS::AtMostOnce {
                body.put_u16(packet_id.expect("QoS>0 PUBLISH must carry a packet id"));
            }
            body.put_slice(payload);
        }
        Packet::PubAck { packet_id } => {
            first_byte = 0x40;
            body.put_u16(*packet_id);
        }
        Packet::Subscribe { packet_id, filters } => {
            first_byte = 0x82;
            body.put_u16(*packet_id);
            for (f, q) in filters {
                put_string(&mut body, f);
                body.put_u8(*q as u8);
            }
        }
        Packet::SubAck {
            packet_id,
            return_codes,
        } => {
            first_byte = 0x90;
            body.put_u16(*packet_id);
            for c in return_codes {
                body.put_u8(*c);
            }
        }
        Packet::Unsubscribe { packet_id, filters } => {
            first_byte = 0xA2;
            body.put_u16(*packet_id);
            for f in filters {
                put_string(&mut body, f);
            }
        }
        Packet::UnsubAck { packet_id } => {
            first_byte = 0xB0;
            body.put_u16(*packet_id);
        }
        Packet::PingReq => first_byte = 0xC0,
        Packet::PingResp => first_byte = 0xD0,
        Packet::Disconnect => first_byte = 0xE0,
    }
    buf.put_u8(first_byte);
    put_remaining_length(buf, body.len());
    buf.put_slice(&body);
}

/// Decode one packet from `buf`, consuming its bytes.
///
/// Returns `Ok(None)` when the buffer does not yet hold a complete
/// packet (stream decoding); the buffer is left untouched in that case.
pub fn decode(buf: &mut BytesMut) -> Result<Option<Packet>, CodecError> {
    if buf.is_empty() {
        return Ok(None);
    }
    // Peek the header without consuming, in case the body is incomplete.
    let mut peek = &buf[..];
    let first = peek.get_u8();
    let remaining = match get_remaining_length(&mut peek)? {
        Some(r) => r,
        None => return Ok(None),
    };
    if peek.remaining() < remaining {
        return Ok(None);
    }
    let header_len = buf.len() - peek.remaining();
    buf.advance(header_len);
    let mut body: Bytes = buf.split_to(remaining).freeze();

    let packet_type = first >> 4;
    let flags = first & 0x0F;
    let packet = match packet_type {
        1 => {
            let _proto = get_string(&mut body)?;
            if body.remaining() < 4 {
                return Err(CodecError::Truncated);
            }
            let _level = body.get_u8();
            let connect_flags = body.get_u8();
            let keep_alive = body.get_u16();
            let client_id = get_string(&mut body)?;
            Packet::Connect {
                client_id,
                keep_alive,
                clean_session: connect_flags & 0x02 != 0,
            }
        }
        2 => {
            if body.remaining() < 2 {
                return Err(CodecError::Truncated);
            }
            Packet::ConnAck {
                session_present: body.get_u8() & 0x01 != 0,
                code: body.get_u8(),
            }
        }
        3 => {
            let dup = flags & 0x08 != 0;
            let qos = QoS::from_bits((flags >> 1) & 0x03)?;
            let retain = flags & 0x01 != 0;
            let topic = get_string(&mut body)?;
            let packet_id = if qos != QoS::AtMostOnce {
                if body.remaining() < 2 {
                    return Err(CodecError::Truncated);
                }
                Some(body.get_u16())
            } else {
                None
            };
            Packet::Publish {
                topic,
                payload: body,
                qos,
                retain,
                dup,
                packet_id,
            }
        }
        4 => {
            if body.remaining() < 2 {
                return Err(CodecError::Truncated);
            }
            Packet::PubAck {
                packet_id: body.get_u16(),
            }
        }
        8 => {
            if flags != 0x02 {
                return Err(CodecError::BadFlags);
            }
            if body.remaining() < 2 {
                return Err(CodecError::Truncated);
            }
            let packet_id = body.get_u16();
            let mut filters = Vec::new();
            while body.has_remaining() {
                let f = get_string(&mut body)?;
                if !body.has_remaining() {
                    return Err(CodecError::Truncated);
                }
                let q = QoS::from_bits(body.get_u8())?;
                filters.push((f, q));
            }
            Packet::Subscribe { packet_id, filters }
        }
        9 => {
            if body.remaining() < 2 {
                return Err(CodecError::Truncated);
            }
            let packet_id = body.get_u16();
            let return_codes = body.to_vec();
            Packet::SubAck {
                packet_id,
                return_codes,
            }
        }
        10 => {
            if flags != 0x02 {
                return Err(CodecError::BadFlags);
            }
            if body.remaining() < 2 {
                return Err(CodecError::Truncated);
            }
            let packet_id = body.get_u16();
            let mut filters = Vec::new();
            while body.has_remaining() {
                filters.push(get_string(&mut body)?);
            }
            Packet::Unsubscribe { packet_id, filters }
        }
        11 => {
            if body.remaining() < 2 {
                return Err(CodecError::Truncated);
            }
            Packet::UnsubAck {
                packet_id: body.get_u16(),
            }
        }
        12 => Packet::PingReq,
        13 => Packet::PingResp,
        14 => Packet::Disconnect,
        t => return Err(CodecError::UnknownPacketType(t)),
    };
    Ok(Some(packet))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(p: Packet) {
        let mut buf = BytesMut::new();
        encode(&p, &mut buf);
        let decoded = decode(&mut buf).expect("decode").expect("complete");
        assert_eq!(decoded, p);
        assert!(buf.is_empty(), "all bytes consumed");
    }

    #[test]
    fn roundtrip_all_packet_types() {
        roundtrip(Packet::Connect {
            client_id: "eg-node03".into(),
            keep_alive: 60,
            clean_session: true,
        });
        roundtrip(Packet::ConnAck {
            session_present: false,
            code: 0,
        });
        roundtrip(Packet::Publish {
            topic: "davide/node03/power".into(),
            payload: Bytes::from_static(b"1723.5"),
            qos: QoS::AtMostOnce,
            retain: false,
            dup: false,
            packet_id: None,
        });
        roundtrip(Packet::Publish {
            topic: "davide/node03/power".into(),
            payload: Bytes::from_static(&[0u8; 128]),
            qos: QoS::AtLeastOnce,
            retain: true,
            dup: true,
            packet_id: Some(7),
        });
        roundtrip(Packet::PubAck { packet_id: 7 });
        roundtrip(Packet::Subscribe {
            packet_id: 11,
            filters: vec![
                ("davide/+/power".into(), QoS::AtLeastOnce),
                ("davide/#".into(), QoS::AtMostOnce),
            ],
        });
        roundtrip(Packet::SubAck {
            packet_id: 11,
            return_codes: vec![1, 0],
        });
        roundtrip(Packet::Unsubscribe {
            packet_id: 12,
            filters: vec!["davide/+/power".into()],
        });
        roundtrip(Packet::UnsubAck { packet_id: 12 });
        roundtrip(Packet::PingReq);
        roundtrip(Packet::PingResp);
        roundtrip(Packet::Disconnect);
    }

    #[test]
    fn incremental_decode_waits_for_full_packet() {
        let p = Packet::Publish {
            topic: "t".into(),
            payload: Bytes::from(vec![42u8; 300]),
            qos: QoS::AtMostOnce,
            retain: false,
            dup: false,
            packet_id: None,
        };
        let mut full = BytesMut::new();
        encode(&p, &mut full);
        // Feed the stream byte by byte; decode must return None until
        // the packet completes, then produce it exactly once.
        let mut stream = BytesMut::new();
        let mut out = None;
        for (i, b) in full.iter().enumerate() {
            stream.put_u8(*b);
            match decode(&mut stream).unwrap() {
                Some(got) => {
                    assert_eq!(i, full.len() - 1, "completed only at final byte");
                    out = Some(got);
                }
                None => assert!(i < full.len() - 1),
            }
        }
        assert_eq!(out.unwrap(), p);
    }

    #[test]
    fn remaining_length_multi_byte() {
        // 300-byte body needs a 2-byte remaining-length field.
        let mut buf = BytesMut::new();
        put_remaining_length(&mut buf, 300);
        assert_eq!(&buf[..], &[0xAC, 0x02]);
        let mut b = &buf[..];
        assert_eq!(get_remaining_length(&mut b).unwrap(), Some(300));
        // Largest legal value: 268 435 455.
        let mut buf = BytesMut::new();
        put_remaining_length(&mut buf, 268_435_455);
        assert_eq!(buf.len(), 4);
        let mut b = &buf[..];
        assert_eq!(get_remaining_length(&mut b).unwrap(), Some(268_435_455));
    }

    #[test]
    fn malformed_remaining_length_rejected() {
        let mut buf = BytesMut::new();
        buf.put_slice(&[0x30, 0xFF, 0xFF, 0xFF, 0xFF, 0x01]);
        assert_eq!(
            decode(&mut buf).unwrap_err(),
            CodecError::MalformedRemainingLength
        );
    }

    #[test]
    fn qos2_rejected() {
        let mut buf = BytesMut::new();
        // PUBLISH with QoS bits = 2.
        buf.put_slice(&[0x34, 0x03, 0x00, 0x01, b't']);
        assert_eq!(decode(&mut buf).unwrap_err(), CodecError::UnsupportedQoS(2));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = BytesMut::new();
        buf.put_slice(&[0x30, 0x04, 0x00, 0x02, 0xFF, 0xFE]);
        assert_eq!(decode(&mut buf).unwrap_err(), CodecError::InvalidUtf8);
    }

    #[test]
    fn decode_two_back_to_back_packets() {
        let mut buf = BytesMut::new();
        encode(&Packet::PingReq, &mut buf);
        encode(&Packet::PingResp, &mut buf);
        assert_eq!(decode(&mut buf).unwrap(), Some(Packet::PingReq));
        assert_eq!(decode(&mut buf).unwrap(), Some(Packet::PingResp));
        assert_eq!(decode(&mut buf).unwrap(), None);
    }
}
