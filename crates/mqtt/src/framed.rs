//! Wire-level server endpoint: the byte-stream face of the broker.
//!
//! [`ServerConnection`] speaks the actual MQTT 3.1.1 framing over any
//! byte transport (here: in-memory buffers standing in for TCP): feed it
//! inbound bytes, it decodes packets, drives the in-process broker, and
//! returns the encoded response bytes — CONNACK, SUBACK, PUBACK,
//! PINGRESP and the outbound PUBLISH stream for the connection's
//! subscriptions. Together with [`crate::session::Session`] on the
//! client side this closes the loop: every byte on the "wire" is real
//! protocol.

use crate::broker::Broker;
use crate::client::Client;
use crate::codec::{decode, encode, CodecError, Packet, QoS};
use bytes::BytesMut;

/// Server-side connection state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Waiting for CONNECT (the first packet must be CONNECT).
    AwaitingConnect,
    /// Session established.
    Active,
    /// Closed (DISCONNECT received or protocol error).
    Closed,
}

/// One client connection at the broker's edge.
pub struct ServerConnection {
    broker: Broker,
    client: Option<Client>,
    state: ConnState,
    inbound: BytesMut,
}

impl ServerConnection {
    /// Accept a new transport connection against `broker`.
    pub fn accept(broker: &Broker) -> Self {
        ServerConnection {
            broker: broker.clone(),
            client: None,
            state: ConnState::AwaitingConnect,
            inbound: BytesMut::new(),
        }
    }

    /// Connection state.
    pub fn state(&self) -> ConnState {
        self.state
    }

    /// Feed inbound transport bytes; returns the encoded response bytes
    /// to write back. Protocol errors close the connection (per spec:
    /// no error packet in 3.1.1, just drop).
    pub fn feed(&mut self, bytes: &[u8]) -> Result<Vec<u8>, CodecError> {
        if self.state == ConnState::Closed {
            return Ok(Vec::new());
        }
        self.inbound.extend_from_slice(bytes);
        let mut out = BytesMut::new();
        loop {
            let packet = match decode(&mut self.inbound) {
                Ok(Some(p)) => p,
                Ok(None) => break,
                Err(e) => {
                    self.close();
                    return Err(e);
                }
            };
            self.handle(packet, &mut out);
            if self.state == ConnState::Closed {
                break;
            }
        }
        Ok(out.to_vec())
    }

    fn handle(&mut self, packet: Packet, out: &mut BytesMut) {
        match (self.state, packet) {
            (ConnState::AwaitingConnect, Packet::Connect { client_id, .. }) => {
                let mut client = self.broker.connect(client_id);
                // Outbound QoS 1 deliveries are tracked broker-side so
                // their packet ids survive until the wire PUBACK.
                client.enable_qos1_tracking(
                    crate::broker::DEFAULT_QOS1_WINDOW,
                    crate::broker::DEFAULT_QOS1_RETRIES,
                );
                self.client = Some(client);
                self.state = ConnState::Active;
                encode(
                    &Packet::ConnAck {
                        session_present: false,
                        code: 0,
                    },
                    out,
                );
            }
            (ConnState::AwaitingConnect, _) => {
                // First packet must be CONNECT.
                self.close();
            }
            (ConnState::Active, Packet::Subscribe { packet_id, filters }) => {
                let client = self.client.as_mut().expect("active implies client");
                let return_codes = filters
                    .iter()
                    .map(|(f, q)| match client.subscribe(f, *q) {
                        Ok(()) => *q as u8,
                        Err(_) => 0x80,
                    })
                    .collect();
                encode(
                    &Packet::SubAck {
                        packet_id,
                        return_codes,
                    },
                    out,
                );
            }
            (ConnState::Active, Packet::Unsubscribe { packet_id, filters }) => {
                let client = self.client.as_mut().expect("active implies client");
                for f in &filters {
                    let _ = client.unsubscribe(f);
                }
                encode(&Packet::UnsubAck { packet_id }, out);
            }
            (
                ConnState::Active,
                Packet::Publish {
                    topic,
                    payload,
                    qos,
                    retain,
                    packet_id,
                    ..
                },
            ) => {
                let client = self.client.as_ref().expect("active implies client");
                let _ = client.publish(&topic, payload, qos, retain);
                if let (QoS::AtLeastOnce, Some(id)) = (qos, packet_id) {
                    encode(&Packet::PubAck { packet_id: id }, out);
                }
            }
            (ConnState::Active, Packet::PingReq) => {
                encode(&Packet::PingResp, out);
            }
            (ConnState::Active, Packet::Disconnect) => {
                self.close();
            }
            // A PUBACK from the wire settles the matching outbound
            // QoS 1 delivery in the broker's in-flight table.
            (ConnState::Active, Packet::PubAck { packet_id }) => {
                if let Some(client) = self.client.as_mut() {
                    let _ = client.ack(packet_id);
                }
            }
            (ConnState::Active, _) => {}
            (ConnState::Closed, _) => {}
        }
    }

    /// Encode any queued deliveries for this connection as PUBLISH
    /// frames (what the server's write loop would send). Tracked QoS 1
    /// deliveries carry their broker-assigned packet id (and DUP flag
    /// on redeliveries) and stay in flight until the peer's PUBACK;
    /// untracked QoS 1 deliveries (in-flight window overflow, retained
    /// replay) are downgraded to QoS 0 on the wire rather than sent
    /// with an id nobody is accounting for.
    pub fn poll_outbound(&mut self) -> Vec<u8> {
        let mut out = BytesMut::new();
        if let Some(client) = self.client.as_mut() {
            while let Some(m) = client.try_recv() {
                let (qos, packet_id) = match (m.qos, m.packet_id) {
                    (QoS::AtLeastOnce, Some(id)) => (QoS::AtLeastOnce, Some(id)),
                    (QoS::AtLeastOnce, None) => (QoS::AtMostOnce, None),
                    (q, _) => (q, None),
                };
                encode(
                    &Packet::Publish {
                        topic: m.topic,
                        payload: m.payload,
                        qos,
                        retain: m.retain,
                        dup: m.dup,
                        packet_id,
                    },
                    &mut out,
                );
            }
        }
        out.to_vec()
    }

    /// Re-send every outbound QoS 1 delivery still awaiting its wire
    /// PUBACK, DUP flag set — the server's retransmission-timeout tick.
    /// Returns the encoded PUBLISH frames (empty when nothing is
    /// overdue).
    pub fn retransmit_unacked(&mut self) -> Vec<u8> {
        if let Some(client) = self.client.as_mut() {
            if client.redeliver_unacked() > 0 {
                return self.poll_outbound();
            }
        }
        Vec::new()
    }

    /// Outbound QoS 1 deliveries not yet acknowledged by the peer.
    pub fn unacked_outbound(&self) -> usize {
        self.client.as_ref().map_or(0, |c| c.unacked_count())
    }

    fn close(&mut self) {
        if let Some(mut c) = self.client.take() {
            c.disconnect();
        }
        self.state = ConnState::Closed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{Session, SessionEvent};
    use bytes::Bytes;

    /// Encode a packet to raw bytes.
    fn raw(p: &Packet) -> Vec<u8> {
        let mut b = BytesMut::new();
        encode(p, &mut b);
        b.to_vec()
    }

    /// Decode all packets from raw bytes.
    fn parse_all(mut bytes: BytesMut) -> Vec<Packet> {
        let mut out = Vec::new();
        while let Ok(Some(p)) = decode(&mut bytes) {
            out.push(p);
        }
        out
    }

    #[test]
    fn connect_handshake_over_bytes() {
        let broker = Broker::default();
        let mut conn = ServerConnection::accept(&broker);
        let mut session = Session::new("wire-client", 60.0);
        let connect = raw(&session.connect_packet(0.0, true));
        let reply = conn.feed(&connect).unwrap();
        let packets = parse_all(BytesMut::from(&reply[..]));
        assert_eq!(packets.len(), 1);
        let (ev, _) = session.handle(0.1, packets[0].clone());
        assert_eq!(
            ev,
            Some(SessionEvent::Connected {
                session_present: false
            })
        );
        assert_eq!(conn.state(), ConnState::Active);
        assert_eq!(broker.client_count(), 1);
    }

    #[test]
    fn first_packet_must_be_connect() {
        let broker = Broker::default();
        let mut conn = ServerConnection::accept(&broker);
        let reply = conn.feed(&raw(&Packet::PingReq)).unwrap();
        assert!(reply.is_empty());
        assert_eq!(conn.state(), ConnState::Closed);
    }

    #[test]
    fn full_wire_level_pub_sub() {
        let broker = Broker::default();
        // Subscriber connection.
        let mut sub_conn = ServerConnection::accept(&broker);
        let mut sub_sess = Session::new("sub", 60.0);
        sub_conn
            .feed(&raw(&sub_sess.connect_packet(0.0, true)))
            .unwrap();
        let sub_pkt =
            sub_sess.subscribe_packet(vec![("davide/+/power/#".into(), QoS::AtLeastOnce)]);
        let suback = sub_conn.feed(&raw(&sub_pkt)).unwrap();
        assert!(matches!(
            parse_all(BytesMut::from(&suback[..])).as_slice(),
            [Packet::SubAck { .. }]
        ));

        // Publisher connection sends a QoS 1 frame.
        let mut pub_conn = ServerConnection::accept(&broker);
        let mut pub_sess = Session::new("pub", 60.0);
        pub_conn
            .feed(&raw(&pub_sess.connect_packet(0.0, true)))
            .unwrap();
        let publish = pub_sess.publish_packet(
            1.0,
            "davide/node00/power/node",
            Bytes::from_static(b"1723.5"),
            QoS::AtLeastOnce,
            false,
        );
        let reply = pub_conn.feed(&raw(&publish)).unwrap();
        // Publisher gets its PUBACK over the wire.
        let acks = parse_all(BytesMut::from(&reply[..]));
        assert!(matches!(acks.as_slice(), [Packet::PubAck { .. }]));
        let (ev, _) = pub_sess.handle(1.1, acks[0].clone());
        assert!(matches!(ev, Some(SessionEvent::PublishAcked(_))));

        // Subscriber's write loop carries the delivery.
        let delivery = sub_conn.poll_outbound();
        let packets = parse_all(BytesMut::from(&delivery[..]));
        assert_eq!(packets.len(), 1);
        match &packets[0] {
            Packet::Publish {
                topic,
                payload,
                qos,
                ..
            } => {
                assert_eq!(topic, "davide/node00/power/node");
                assert_eq!(&payload[..], b"1723.5");
                assert_eq!(*qos, QoS::AtLeastOnce);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Client-side session acks the inbound QoS 1 delivery.
        let (ev, resp) = sub_sess.handle(2.0, packets[0].clone());
        assert!(matches!(ev, Some(SessionEvent::Message { .. })));
        assert!(matches!(resp, Some(Packet::PubAck { .. })));
    }

    #[test]
    fn unacked_wire_delivery_is_retransmitted_with_dup() {
        let broker = Broker::default();
        let mut sub_conn = ServerConnection::accept(&broker);
        let mut sub_sess = Session::new("sub", 60.0);
        sub_conn
            .feed(&raw(&sub_sess.connect_packet(0.0, true)))
            .unwrap();
        sub_conn
            .feed(&raw(&sub_sess.subscribe_packet(vec![(
                "davide/site/#".into(),
                QoS::AtLeastOnce,
            )])))
            .unwrap();

        let publ = broker.connect("agg");
        publ.publish(
            "davide/site/total",
            Bytes::from_static(b"44"),
            QoS::AtLeastOnce,
            false,
        )
        .unwrap();

        // First transmission: QoS 1 with a broker-assigned id, no DUP.
        let first = parse_all(BytesMut::from(&sub_conn.poll_outbound()[..]));
        let id = match first.as_slice() {
            [Packet::Publish {
                qos: QoS::AtLeastOnce,
                dup: false,
                packet_id: Some(id),
                ..
            }] => *id,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(sub_conn.unacked_outbound(), 1);

        // The peer never acks: the retransmission tick re-sends with
        // DUP set and the same packet id.
        let redo = parse_all(BytesMut::from(&sub_conn.retransmit_unacked()[..]));
        match redo.as_slice() {
            [Packet::Publish {
                dup: true,
                packet_id: Some(re_id),
                ..
            }] => assert_eq!(*re_id, id),
            other => panic!("unexpected {other:?}"),
        }

        // The (late) PUBACK settles the slot; nothing left to re-send.
        let (_, resp) = sub_sess.handle(1.0, redo[0].clone());
        assert_eq!(resp, Some(Packet::PubAck { packet_id: id }));
        sub_conn.feed(&raw(&resp.unwrap())).unwrap();
        assert_eq!(sub_conn.unacked_outbound(), 0);
        assert!(sub_conn.retransmit_unacked().is_empty());
    }

    #[test]
    fn byte_dribble_is_handled() {
        // Feed the CONNECT one byte at a time: no reply until complete.
        let broker = Broker::default();
        let mut conn = ServerConnection::accept(&broker);
        let mut sess = Session::new("dribble", 60.0);
        let bytes = raw(&sess.connect_packet(0.0, true));
        for (i, b) in bytes.iter().enumerate() {
            let reply = conn.feed(std::slice::from_ref(b)).unwrap();
            if i < bytes.len() - 1 {
                assert!(reply.is_empty(), "no reply at byte {i}");
            } else {
                assert!(!reply.is_empty(), "CONNACK after final byte");
            }
        }
    }

    #[test]
    fn malformed_bytes_close_connection() {
        let broker = Broker::default();
        let mut conn = ServerConnection::accept(&broker);
        let mut sess = Session::new("x", 60.0);
        conn.feed(&raw(&sess.connect_packet(0.0, true))).unwrap();
        // Garbage remaining-length.
        let err = conn.feed(&[0x30, 0xFF, 0xFF, 0xFF, 0xFF, 0x01]);
        assert!(err.is_err());
        assert_eq!(conn.state(), ConnState::Closed);
        assert_eq!(broker.client_count(), 0, "broker side cleaned up");
    }

    #[test]
    fn disconnect_cleans_up() {
        let broker = Broker::default();
        let mut conn = ServerConnection::accept(&broker);
        let mut sess = Session::new("bye", 60.0);
        conn.feed(&raw(&sess.connect_packet(0.0, true))).unwrap();
        assert_eq!(broker.client_count(), 1);
        conn.feed(&raw(&Packet::Disconnect)).unwrap();
        assert_eq!(conn.state(), ConnState::Closed);
        assert_eq!(broker.client_count(), 0);
    }

    #[test]
    fn ping_over_wire() {
        let broker = Broker::default();
        let mut conn = ServerConnection::accept(&broker);
        let mut sess = Session::new("p", 10.0);
        conn.feed(&raw(&sess.connect_packet(0.0, true))).unwrap();
        let reply = conn.feed(&raw(&Packet::PingReq)).unwrap();
        assert!(matches!(
            parse_all(BytesMut::from(&reply[..])).as_slice(),
            [Packet::PingResp]
        ));
    }
}
