//! Broker-to-broker bridging.
//!
//! In a deployment like D.A.V.I.D.E.'s, each rack's management network
//! runs its own broker close to the gateways; a *bridge* forwards
//! selected topics upstream to the site broker where the job scheduler
//! and accounting subscribe. This is the standard MQTT bridging pattern
//! (mosquitto's `connection` blocks), reimplemented over the in-process
//! broker: filter-based forwarding, optional topic prefixing, loop-safe
//! one-directional pumps, and a restart-tolerant source session —
//! [`disconnect_source`]/[`reconnect_source`] model the bridge losing
//! its uplink when the source broker restarts, and the pump
//! deduplicates the retained replay a resubscribe triggers, so each
//! retained status value crosses the bridge **exactly once** no matter
//! how many reconnects happen in between.
//!
//! [`disconnect_source`]: Bridge::disconnect_source
//! [`reconnect_source`]: Bridge::reconnect_source

use crate::broker::{Broker, BrokerError, DEFAULT_QOS1_RETRIES, DEFAULT_QOS1_WINDOW};
use crate::client::Client;
use crate::codec::QoS;
use crate::topic::validate_filter;
use bytes::Bytes;
use std::collections::HashMap;

/// Observer called once per message the bridge actually forwards, with
/// the destination topic, the payload and the retain flag — after
/// retained-replay deduplication, so a hook sees each distinct state
/// crossing exactly once. Federation uses this to stamp the
/// bridge-delivery hop of cap-grant spans without the bridge knowing
/// anything about spans.
pub type ForwardHook = Box<dyn FnMut(&str, &Bytes, bool) + Send>;

/// A one-directional bridge pumping matching messages from a source
/// broker to a destination broker.
pub struct Bridge {
    /// Handle kept so the source session can be rebuilt after a broker
    /// restart.
    source_broker: Broker,
    source: Client,
    destination: Client,
    name: String,
    filters: Vec<String>,
    /// Prefix prepended to forwarded topics (e.g. `rack0`).
    pub prefix: Option<String>,
    forwarded: u64,
    // Source topic → prefixed topic. Telemetry topic universes are
    // small (nodes × channels), so after warm-up the pump loop
    // republishes without re-formatting a String per message.
    topic_cache: HashMap<String, String>,
    // Source topic → last retained payload forwarded. A resubscribe
    // after reconnect replays the retained store into the fresh
    // session; values already forwarded are dropped here so downstream
    // sees each retained state exactly once.
    retained_seen: HashMap<String, Bytes>,
    source_connected: bool,
    forward_hook: Option<ForwardHook>,
}

impl Bridge {
    /// Create a bridge subscribing to `filters` on `source` and
    /// republishing (optionally under `prefix/...`) on `destination`.
    pub fn connect(
        source: &Broker,
        destination: &Broker,
        name: &str,
        filters: &[&str],
        prefix: Option<&str>,
    ) -> Result<Bridge, BrokerError> {
        for f in filters {
            validate_filter(f)?;
        }
        let mut src_client = source.connect(format!("bridge-{name}-in"));
        // The uplink is the reliability-critical hop: QoS 1 tracking
        // means the source broker holds each delivery until the pump
        // acknowledges it, and can re-send what a crashed pump left
        // behind.
        src_client.enable_qos1_tracking(DEFAULT_QOS1_WINDOW, DEFAULT_QOS1_RETRIES);
        for f in filters {
            src_client.subscribe(f, QoS::AtLeastOnce)?;
        }
        let dst_client = destination.connect(format!("bridge-{name}-out"));
        Ok(Bridge {
            source_broker: source.clone(),
            source: src_client,
            destination: dst_client,
            name: name.to_string(),
            filters: filters.iter().map(|f| f.to_string()).collect(),
            prefix: prefix.map(str::to_string),
            forwarded: 0,
            topic_cache: HashMap::new(),
            retained_seen: HashMap::new(),
            source_connected: true,
            forward_hook: None,
        })
    }

    /// Install (or clear) the per-forward observer; see [`ForwardHook`].
    pub fn set_forward_hook(&mut self, hook: Option<ForwardHook>) {
        self.forward_hook = hook;
    }

    /// The bridge's configured name (client ids are derived from it).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Messages forwarded so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// True while the source-side session is up.
    pub fn source_connected(&self) -> bool {
        self.source_connected
    }

    /// Drop the source-side session, as a source-broker restart would:
    /// undelivered messages are lost with the session and nothing is
    /// pumped until [`reconnect_source`](Self::reconnect_source).
    pub fn disconnect_source(&mut self) {
        if self.source_connected {
            self.source.disconnect();
            self.source_connected = false;
        }
    }

    /// Re-establish the source session after a restart: reconnect,
    /// resubscribe every configured filter (triggering the broker's
    /// retained replay into the fresh session). The next
    /// [`pump`](Self::pump) forwards only retained values that have not
    /// already crossed the bridge.
    pub fn reconnect_source(&mut self) -> Result<(), BrokerError> {
        if self.source_connected {
            return Ok(());
        }
        let mut src = self
            .source_broker
            .connect(format!("bridge-{}-in", self.name));
        src.enable_qos1_tracking(DEFAULT_QOS1_WINDOW, DEFAULT_QOS1_RETRIES);
        for f in &self.filters {
            src.subscribe(f, QoS::AtLeastOnce)?;
        }
        self.source = src;
        self.source_connected = true;
        Ok(())
    }

    /// Drain everything queued on the source side and republish it
    /// downstream. Returns the number of messages forwarded. Prefixed
    /// topics are built once per distinct source topic and cached, so
    /// the steady-state pump republishes without allocating. Retained
    /// messages are forwarded at most once per distinct value: the
    /// replay a post-restart resubscribe triggers is dropped when that
    /// exact state already crossed the bridge.
    pub fn pump(&mut self) -> usize {
        if !self.source_connected {
            return 0;
        }
        let mut n = 0;
        while let Some(msg) = self.source.try_recv() {
            // The source broker tracks QoS 1 deliveries to the bridge;
            // every drained message is acknowledged — after the forward
            // (so a pump that dies mid-loop leaves the message in
            // flight for redelivery), or immediately when dedup decides
            // the state already crossed.
            let ack_id = msg.packet_id;
            if msg.retain {
                // Exactly-once for retained state: skip a value we
                // already forwarded (retained replays repeat the last
                // value per topic on every resubscribe).
                if self.retained_seen.get(&msg.topic) == Some(&msg.payload) {
                    if let Some(id) = ack_id {
                        let _ = self.source.ack(id);
                    }
                    continue;
                }
                self.retained_seen
                    .insert(msg.topic.clone(), msg.payload.clone());
            }
            // Never re-forward retained replays of our own destination
            // side: a one-directional bridge cannot loop, but retained
            // replays at subscribe time would double-deliver old state.
            let topic: &str = match &self.prefix {
                Some(p) => {
                    if !self.topic_cache.contains_key(&msg.topic) {
                        self.topic_cache
                            .insert(msg.topic.clone(), format!("{p}/{}", msg.topic));
                    }
                    self.topic_cache[&msg.topic].as_str()
                }
                None => &msg.topic,
            };
            // Forward retained flag so site-side late subscribers get
            // status values (e.g. power caps).
            if let Some(hook) = &mut self.forward_hook {
                hook(topic, &msg.payload, msg.retain);
            }
            let _ = self
                .destination
                .publish(topic, msg.payload, msg.qos, msg.retain);
            if let Some(id) = ack_id {
                let _ = self.source.ack(id);
            }
            n += 1;
        }
        self.forwarded += n as u64;
        n
    }

    /// Re-request every source-side QoS 1 delivery still awaiting the
    /// pump's acknowledgement: the bridge's retransmission tick, run
    /// when a pump cycle may have died between receive and forward.
    /// Redeliveries arrive DUP-flagged and cross downstream again —
    /// at-least-once, by design. Returns the number re-queued.
    pub fn poll_redelivery(&mut self) -> usize {
        if !self.source_connected {
            return 0;
        }
        self.source.redeliver_unacked()
    }

    /// QoS 1 deliveries the source broker still holds against this
    /// bridge (unacknowledged by the pump).
    pub fn source_unacked(&self) -> usize {
        if !self.source_connected {
            return 0;
        }
        self.source.unacked_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn payload(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn forwards_matching_topics_with_prefix() {
        let rack = Broker::default();
        let site = Broker::default();
        let mut bridge =
            Bridge::connect(&rack, &site, "rack0", &["davide/+/power/#"], Some("rack0")).unwrap();
        assert_eq!(bridge.name(), "rack0");

        let mut site_agent = site.connect("site-accounting");
        site_agent
            .subscribe("rack0/davide/+/power/#", QoS::AtMostOnce)
            .unwrap();

        let gw = rack.connect("eg");
        gw.publish(
            "davide/node03/power/node",
            payload("1700"),
            QoS::AtMostOnce,
            false,
        )
        .unwrap();
        gw.publish(
            "davide/node03/temp/cpu0",
            payload("55"),
            QoS::AtMostOnce,
            false,
        )
        .unwrap(); // not bridged

        assert_eq!(bridge.pump(), 1);
        let m = site_agent.try_recv().unwrap();
        assert_eq!(m.topic, "rack0/davide/node03/power/node");
        assert_eq!(&m.payload[..], b"1700");
        assert!(site_agent.try_recv().is_none());
        assert_eq!(bridge.forwarded(), 1);
    }

    #[test]
    fn pump_on_empty_source_is_zero() {
        let rack = Broker::default();
        let site = Broker::default();
        let mut bridge = Bridge::connect(&rack, &site, "b", &["#"], None).unwrap();
        assert_eq!(bridge.pump(), 0);
    }

    #[test]
    fn retained_status_survives_the_bridge() {
        let rack = Broker::default();
        let site = Broker::default();
        let mut bridge = Bridge::connect(&rack, &site, "r0", &["davide/+/status/#"], None).unwrap();
        let gw = rack.connect("eg");
        gw.publish(
            "davide/node00/status/powercap",
            payload("1500"),
            QoS::AtLeastOnce,
            true,
        )
        .unwrap();
        bridge.pump();
        // A late site-side subscriber still sees the value: the bridge
        // preserved the retain flag.
        let mut late = site.connect("late");
        late.subscribe("davide/+/status/#", QoS::AtMostOnce)
            .unwrap();
        let m = late.try_recv().expect("retained replay downstream");
        assert!(m.retain);
        assert_eq!(&m.payload[..], b"1500");
    }

    #[test]
    fn three_racks_fan_into_one_site_broker() {
        let site = Broker::default();
        let mut site_agent = site.connect("sched-plugin");
        site_agent
            .subscribe("+/davide/+/power/node", QoS::AtMostOnce)
            .unwrap();
        let mut bridges = Vec::new();
        let racks: Vec<Broker> = (0..3).map(|_| Broker::default()).collect();
        for (i, rack) in racks.iter().enumerate() {
            bridges.push(
                Bridge::connect(
                    rack,
                    &site,
                    &format!("rack{i}"),
                    &["davide/+/power/#"],
                    Some(&format!("rack{i}")),
                )
                .unwrap(),
            );
        }
        for (i, rack) in racks.iter().enumerate() {
            let gw = rack.connect("eg");
            gw.publish(
                &format!("davide/node{i:02}/power/node"),
                payload("1650"),
                QoS::AtMostOnce,
                false,
            )
            .unwrap();
        }
        let total: usize = bridges.iter_mut().map(|b| b.pump()).sum();
        assert_eq!(total, 3);
        let topics: Vec<String> = site_agent.drain().into_iter().map(|m| m.topic).collect();
        assert_eq!(topics.len(), 3);
        assert!(topics.contains(&"rack1/davide/node01/power/node".to_string()));
    }

    #[test]
    fn pump_acks_tracked_deliveries() {
        let rack = Broker::default();
        let site = Broker::default();
        let mut bridge = Bridge::connect(&rack, &site, "r0", &["davide/#"], None).unwrap();
        let gw = rack.connect("eg");
        for i in 0..3 {
            gw.publish(
                &format!("davide/n0/s{i}"),
                payload("x"),
                QoS::AtLeastOnce,
                false,
            )
            .unwrap();
        }
        assert_eq!(bridge.source_unacked(), 3, "held until the pump acks");
        assert_eq!(bridge.pump(), 3);
        assert_eq!(bridge.source_unacked(), 0, "pump acknowledged all");
        assert_eq!(bridge.poll_redelivery(), 0, "nothing left to re-send");
    }

    #[test]
    fn unpumped_deliveries_redeliver_with_dup_and_cross_again() {
        // A pump that died between receive and forward: the messages
        // sit unacked at the source broker. The redelivery tick re-
        // queues them DUP-flagged, and the next pump forwards them —
        // at-least-once across the bridge.
        let rack = Broker::default();
        let site = Broker::default();
        let mut bridge = Bridge::connect(&rack, &site, "r0", &["davide/#"], None).unwrap();
        let mut down = site.connect("down");
        down.subscribe("davide/#", QoS::AtMostOnce).unwrap();

        let gw = rack.connect("eg");
        gw.publish("davide/n0/x", payload("44"), QoS::AtLeastOnce, false)
            .unwrap();
        assert_eq!(bridge.source_unacked(), 1);
        // Simulate the lost pump cycle: redeliver without having
        // drained the original.
        assert_eq!(bridge.poll_redelivery(), 1);
        assert_eq!(
            rack.stats()
                .redelivered
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        // Original + DUP redelivery both cross: at-least-once.
        assert_eq!(bridge.pump(), 2);
        assert_eq!(bridge.source_unacked(), 0);
        let got = down.drain();
        assert_eq!(got.len(), 2);
        assert_eq!(&got[0].payload[..], b"44");
        assert_eq!(&got[1].payload[..], b"44");
    }

    #[test]
    fn dedup_skip_still_acknowledges() {
        // A retained replay the dedup drops must still be acked, or it
        // would sit in the in-flight window forever and leak slots.
        let rack = Broker::default();
        let site = Broker::default();
        let mut bridge = Bridge::connect(&rack, &site, "caps", &["fed/+/cap"], None).unwrap();
        let fed = rack.connect("federator");
        fed.publish("fed/rack00/cap", payload("7200"), QoS::AtLeastOnce, true)
            .unwrap();
        assert_eq!(bridge.pump(), 1);
        // Republish the identical retained value: tracked delivery,
        // deduplicated by the pump — but acknowledged.
        fed.publish("fed/rack00/cap", payload("7200"), QoS::AtLeastOnce, true)
            .unwrap();
        assert_eq!(bridge.source_unacked(), 1);
        assert_eq!(bridge.pump(), 0, "identical retained value deduped");
        assert_eq!(bridge.source_unacked(), 0, "but still acknowledged");
    }

    #[test]
    fn invalid_filter_rejected_at_connect() {
        let a = Broker::default();
        let b = Broker::default();
        assert!(Bridge::connect(&a, &b, "x", &["bad/#/filter"], None).is_err());
    }

    #[test]
    fn disconnected_source_pumps_nothing_until_reconnect() {
        let rack = Broker::default();
        let site = Broker::default();
        let mut bridge = Bridge::connect(&rack, &site, "r0", &["davide/#"], None).unwrap();
        let mut down = site.connect("down");
        down.subscribe("davide/#", QoS::AtMostOnce).unwrap();

        bridge.disconnect_source();
        assert!(!bridge.source_connected());
        let gw = rack.connect("eg");
        gw.publish("davide/n0/x", payload("lost"), QoS::AtMostOnce, false)
            .unwrap();
        assert_eq!(bridge.pump(), 0, "no session, nothing to pump");

        bridge.reconnect_source().unwrap();
        assert!(bridge.source_connected());
        // The non-retained message published during the outage is gone
        // with the old session (MQTT semantics: lost, not duplicated).
        assert_eq!(bridge.pump(), 0);
        gw.publish("davide/n0/x", payload("live"), QoS::AtMostOnce, false)
            .unwrap();
        assert_eq!(bridge.pump(), 1);
        assert_eq!(&down.drain().pop().unwrap().payload[..], b"live");
    }

    #[test]
    fn forward_hook_sees_deduplicated_forwards_only() {
        use std::sync::{Arc, Mutex};
        let rack = Broker::default();
        let site = Broker::default();
        let mut bridge = Bridge::connect(&rack, &site, "caps", &["fed/+/cap"], None).unwrap();
        type Forwards = Vec<(String, Vec<u8>, bool)>;
        let seen: Arc<Mutex<Forwards>> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        bridge.set_forward_hook(Some(Box::new(move |topic, payload, retain| {
            sink.lock()
                .unwrap()
                .push((topic.to_string(), payload.to_vec(), retain));
        })));

        let fed = rack.connect("federator");
        fed.publish("fed/rack00/cap", payload("7200 0"), QoS::AtLeastOnce, true)
            .unwrap();
        assert_eq!(bridge.pump(), 1);
        // The retained replay after a restart is deduplicated *before*
        // the hook: the observer must not see the grant twice.
        bridge.disconnect_source();
        bridge.reconnect_source().unwrap();
        assert_eq!(bridge.pump(), 0);

        let got = seen.lock().unwrap().clone();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, "fed/rack00/cap");
        assert_eq!(got[0].1, b"7200 0");
        assert!(got[0].2);
    }

    #[test]
    fn broker_restart_delivers_each_retained_message_exactly_once() {
        // The fault-coverage regression for federation's downlinks: a
        // retained cap grant must reach downstream exactly once across a
        // source-broker restart, even though the resubscribe replays it.
        let rack = Broker::default();
        let site = Broker::default();
        let mut bridge = Bridge::connect(&rack, &site, "caps", &["fed/+/cap"], None).unwrap();
        let mut down = site.connect("rack-ctl");
        down.subscribe("fed/+/cap", QoS::AtMostOnce).unwrap();

        let fed = rack.connect("federator");
        fed.publish("fed/rack00/cap", payload("7200"), QoS::AtLeastOnce, true)
            .unwrap();
        assert_eq!(bridge.pump(), 1);

        // Restart: the bridge's source session drops and comes back; the
        // resubscribe replays the retained grant into the new session.
        bridge.disconnect_source();
        bridge.reconnect_source().unwrap();
        assert_eq!(
            bridge.pump(),
            0,
            "retained replay of an already-forwarded value must not re-cross"
        );

        // A *new* grant value does cross, once, and further restarts
        // still replay only the latest value — also deduplicated.
        fed.publish("fed/rack00/cap", payload("6800"), QoS::AtLeastOnce, true)
            .unwrap();
        assert_eq!(bridge.pump(), 1);
        bridge.disconnect_source();
        bridge.reconnect_source().unwrap();
        bridge.disconnect_source();
        bridge.reconnect_source().unwrap();
        assert_eq!(bridge.pump(), 0);

        let got: Vec<_> = down.drain().into_iter().map(|m| m.payload).collect();
        assert_eq!(got.len(), 2, "one delivery per distinct grant: {got:?}");
        assert_eq!(&got[0][..], b"7200");
        assert_eq!(&got[1][..], b"6800");
    }
}
