//! Broker-to-broker bridging.
//!
//! In a deployment like D.A.V.I.D.E.'s, each rack's management network
//! runs its own broker close to the gateways; a *bridge* forwards
//! selected topics upstream to the site broker where the job scheduler
//! and accounting subscribe. This is the standard MQTT bridging pattern
//! (mosquitto's `connection` blocks), reimplemented over the in-process
//! broker: filter-based forwarding, optional topic prefixing, and
//! loop-safe one-directional pumps.

use crate::broker::{Broker, BrokerError};
use crate::client::Client;
use crate::codec::QoS;
use crate::topic::validate_filter;
use std::collections::HashMap;

/// A one-directional bridge pumping matching messages from a source
/// broker to a destination broker.
pub struct Bridge {
    source: Client,
    destination: Client,
    /// Prefix prepended to forwarded topics (e.g. `rack0`).
    pub prefix: Option<String>,
    forwarded: u64,
    // Source topic → prefixed topic. Telemetry topic universes are
    // small (nodes × channels), so after warm-up the pump loop
    // republishes without re-formatting a String per message.
    topic_cache: HashMap<String, String>,
}

impl Bridge {
    /// Create a bridge subscribing to `filters` on `source` and
    /// republishing (optionally under `prefix/...`) on `destination`.
    pub fn connect(
        source: &Broker,
        destination: &Broker,
        name: &str,
        filters: &[&str],
        prefix: Option<&str>,
    ) -> Result<Bridge, BrokerError> {
        for f in filters {
            validate_filter(f)?;
        }
        let mut src_client = source.connect(format!("bridge-{name}-in"));
        for f in filters {
            src_client.subscribe(f, QoS::AtLeastOnce)?;
        }
        let dst_client = destination.connect(format!("bridge-{name}-out"));
        Ok(Bridge {
            source: src_client,
            destination: dst_client,
            prefix: prefix.map(str::to_string),
            forwarded: 0,
            topic_cache: HashMap::new(),
        })
    }

    /// Messages forwarded so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Drain everything queued on the source side and republish it
    /// downstream. Returns the number of messages forwarded. Prefixed
    /// topics are built once per distinct source topic and cached, so
    /// the steady-state pump republishes without allocating.
    pub fn pump(&mut self) -> usize {
        let mut n = 0;
        while let Some(msg) = self.source.try_recv() {
            // Never re-forward retained replays of our own destination
            // side: a one-directional bridge cannot loop, but retained
            // replays at subscribe time would double-deliver old state.
            let topic: &str = match &self.prefix {
                Some(p) => {
                    if !self.topic_cache.contains_key(&msg.topic) {
                        self.topic_cache
                            .insert(msg.topic.clone(), format!("{p}/{}", msg.topic));
                    }
                    self.topic_cache[&msg.topic].as_str()
                }
                None => &msg.topic,
            };
            // Forward retained flag so site-side late subscribers get
            // status values (e.g. power caps).
            let _ = self
                .destination
                .publish(topic, msg.payload, msg.qos, msg.retain);
            n += 1;
        }
        self.forwarded += n as u64;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn payload(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn forwards_matching_topics_with_prefix() {
        let rack = Broker::default();
        let site = Broker::default();
        let mut bridge =
            Bridge::connect(&rack, &site, "rack0", &["davide/+/power/#"], Some("rack0")).unwrap();

        let mut site_agent = site.connect("site-accounting");
        site_agent
            .subscribe("rack0/davide/+/power/#", QoS::AtMostOnce)
            .unwrap();

        let gw = rack.connect("eg");
        gw.publish(
            "davide/node03/power/node",
            payload("1700"),
            QoS::AtMostOnce,
            false,
        )
        .unwrap();
        gw.publish(
            "davide/node03/temp/cpu0",
            payload("55"),
            QoS::AtMostOnce,
            false,
        )
        .unwrap(); // not bridged

        assert_eq!(bridge.pump(), 1);
        let m = site_agent.try_recv().unwrap();
        assert_eq!(m.topic, "rack0/davide/node03/power/node");
        assert_eq!(&m.payload[..], b"1700");
        assert!(site_agent.try_recv().is_none());
        assert_eq!(bridge.forwarded(), 1);
    }

    #[test]
    fn pump_on_empty_source_is_zero() {
        let rack = Broker::default();
        let site = Broker::default();
        let mut bridge = Bridge::connect(&rack, &site, "b", &["#"], None).unwrap();
        assert_eq!(bridge.pump(), 0);
    }

    #[test]
    fn retained_status_survives_the_bridge() {
        let rack = Broker::default();
        let site = Broker::default();
        let mut bridge = Bridge::connect(&rack, &site, "r0", &["davide/+/status/#"], None).unwrap();
        let gw = rack.connect("eg");
        gw.publish(
            "davide/node00/status/powercap",
            payload("1500"),
            QoS::AtLeastOnce,
            true,
        )
        .unwrap();
        bridge.pump();
        // A late site-side subscriber still sees the value: the bridge
        // preserved the retain flag.
        let mut late = site.connect("late");
        late.subscribe("davide/+/status/#", QoS::AtMostOnce)
            .unwrap();
        let m = late.try_recv().expect("retained replay downstream");
        assert!(m.retain);
        assert_eq!(&m.payload[..], b"1500");
    }

    #[test]
    fn three_racks_fan_into_one_site_broker() {
        let site = Broker::default();
        let mut site_agent = site.connect("sched-plugin");
        site_agent
            .subscribe("+/davide/+/power/node", QoS::AtMostOnce)
            .unwrap();
        let mut bridges = Vec::new();
        let racks: Vec<Broker> = (0..3).map(|_| Broker::default()).collect();
        for (i, rack) in racks.iter().enumerate() {
            bridges.push(
                Bridge::connect(
                    rack,
                    &site,
                    &format!("rack{i}"),
                    &["davide/+/power/#"],
                    Some(&format!("rack{i}")),
                )
                .unwrap(),
            );
        }
        for (i, rack) in racks.iter().enumerate() {
            let gw = rack.connect("eg");
            gw.publish(
                &format!("davide/node{i:02}/power/node"),
                payload("1650"),
                QoS::AtMostOnce,
                false,
            )
            .unwrap();
        }
        let total: usize = bridges.iter_mut().map(|b| b.pump()).sum();
        assert_eq!(total, 3);
        let topics: Vec<String> = site_agent.drain().into_iter().map(|m| m.topic).collect();
        assert_eq!(topics.len(), 3);
        assert!(topics.contains(&"rack1/davide/node01/power/node".to_string()));
    }

    #[test]
    fn invalid_filter_rejected_at_connect() {
        let a = Broker::default();
        let b = Broker::default();
        assert!(Bridge::connect(&a, &b, "x", &["bad/#/filter"], None).is_err());
    }
}
