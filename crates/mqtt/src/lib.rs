//! # davide-mqtt
//!
//! A from-scratch, in-process MQTT 3.1.1-style broker — the
//! machine-to-machine (M2M) transport of the D.A.V.I.D.E. energy gateway
//! (§III-A1 of the paper): power samples are published on per-node,
//! per-component topics and fanned out to control agents, per-job
//! aggregators, profilers and accounting tools.
//!
//! * [`topic`] — topic-name/filter validation and `+`/`#` wildcard
//!   matching semantics (MQTT 3.1.1 §4.7, including the `$SYS` rule);
//! * [`codec`] — the real wire format (fixed headers, variable-length
//!   remaining-length, length-prefixed UTF-8), so every packet the broker
//!   handles can round-trip through bytes;
//! * [`broker`] — topic-trie subscription store, retained messages,
//!   QoS 0/1 with delivery/drop accounting, bounded per-subscriber queues;
//! * [`client`] — the publish/subscribe handle used by gateways & agents.

#![warn(missing_docs)]

pub mod bridge;
pub mod broker;
pub mod client;
pub mod codec;
pub mod framed;
pub mod session;
pub mod topic;

pub use bridge::Bridge;
pub use broker::{
    Broker, BrokerError, BrokerObs, BrokerStats, FaultHook, Message, PublishFate,
    DEFAULT_QOS1_RETRIES, DEFAULT_QOS1_WINDOW, DEFAULT_SHARDS,
};
pub use client::Client;
pub use codec::{CodecError, Packet, QoS};
pub use framed::{ConnState, ServerConnection};
pub use session::{Session, SessionEvent, SessionObs, SessionState, DEFAULT_MAX_IN_FLIGHT};
