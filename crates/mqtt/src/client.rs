//! Client handle for the in-process broker.

use crate::broker::{Broker, BrokerError, Message};
use crate::codec::QoS;
use bytes::Bytes;
use crossbeam::channel::Receiver;
use std::time::Duration;

/// A connected MQTT client: publish from any thread, receive on this
/// handle. Dropping the handle disconnects.
pub struct Client {
    broker: Broker,
    id: u64,
    client_id: String,
    rx: Receiver<Message>,
    connected: bool,
}

impl Client {
    pub(crate) fn new(broker: Broker, id: u64, client_id: String, rx: Receiver<Message>) -> Self {
        Client {
            broker,
            id,
            client_id,
            rx,
            connected: true,
        }
    }

    /// The client-chosen identifier.
    pub fn client_id(&self) -> &str {
        &self.client_id
    }

    /// Publish `payload` on `topic`; returns the number of subscribers
    /// reached.
    pub fn publish(
        &self,
        topic: &str,
        payload: Bytes,
        qos: QoS,
        retain: bool,
    ) -> Result<usize, BrokerError> {
        self.broker.publish(topic, payload, qos, retain)
    }

    /// Publish a batch of non-retained QoS 0 messages with one broker
    /// lock acquisition for the whole batch — the bulk path for
    /// telemetry frame fan-in (see `Broker::publish_batch`). Returns
    /// the total subscriber deliveries across the batch.
    pub fn publish_batch(&self, msgs: &[(String, Bytes)]) -> Result<usize, BrokerError> {
        self.broker.publish_batch(msgs)
    }

    /// Convenience: publish a UTF-8 string payload at QoS 0.
    pub fn publish_str(&self, topic: &str, payload: &str) -> Result<usize, BrokerError> {
        self.publish(
            topic,
            Bytes::copy_from_slice(payload.as_bytes()),
            QoS::AtMostOnce,
            false,
        )
    }

    /// Subscribe this client to `filter` at `qos`.
    pub fn subscribe(&mut self, filter: &str, qos: QoS) -> Result<(), BrokerError> {
        self.broker.subscribe(self.id, filter, qos)
    }

    /// Remove a subscription.
    pub fn unsubscribe(&mut self, filter: &str) -> Result<(), BrokerError> {
        self.broker.unsubscribe(self.id, filter)
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self) -> Option<Message> {
        self.rx.try_recv().ok()
    }

    /// Blocking receive with timeout.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Option<Message> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Blocking receive.
    pub fn recv(&mut self) -> Option<Message> {
        self.rx.recv().ok()
    }

    /// Drain everything currently queued.
    pub fn drain(&mut self) -> Vec<Message> {
        let mut out = Vec::new();
        while let Ok(m) = self.rx.try_recv() {
            out.push(m);
        }
        out
    }

    /// Number of messages waiting in this client's queue.
    pub fn pending(&self) -> usize {
        self.rx.len()
    }

    /// Opt this subscriber into QoS 1 delivery tracking: QoS 1
    /// deliveries get a broker-assigned packet id (up to `window` in
    /// flight) which must be confirmed with [`Client::ack`]; unacked
    /// messages can be re-sent with [`Client::redeliver_unacked`] up to
    /// `max_retries` times before they are expired.
    pub fn enable_qos1_tracking(&mut self, window: usize, max_retries: u32) {
        self.broker.qos1_enable(self.id, window, max_retries);
    }

    /// Acknowledge a tracked QoS 1 delivery (the in-process PUBACK).
    /// Returns whether the packet id was actually in flight.
    pub fn ack(&mut self, packet_id: u16) -> bool {
        self.broker.qos1_ack(self.id, packet_id)
    }

    /// Tracked deliveries not yet acknowledged.
    pub fn unacked_count(&self) -> usize {
        self.broker.qos1_unacked(self.id)
    }

    /// Re-send every unacknowledged tracked message with the DUP flag,
    /// expiring those past their retry budget. Returns the number
    /// re-sent. Callers decide the cadence (the bridge ties it to its
    /// retransmission timeout).
    pub fn redeliver_unacked(&mut self) -> usize {
        self.broker.qos1_redeliver(self.id)
    }

    /// Explicit disconnect (also happens on drop).
    pub fn disconnect(&mut self) {
        if self.connected {
            self.broker.disconnect(self.id);
            self.connected = false;
        }
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        self.disconnect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_str_and_drain() {
        let broker = Broker::default();
        let mut sub = broker.connect("a");
        sub.subscribe("x/#", QoS::AtMostOnce).unwrap();
        let publ = broker.connect("b");
        for i in 0..5 {
            publ.publish_str(&format!("x/{i}"), "v").unwrap();
        }
        assert_eq!(sub.pending(), 5);
        let all = sub.drain();
        assert_eq!(all.len(), 5);
        assert_eq!(sub.pending(), 0);
    }

    #[test]
    fn drop_disconnects() {
        let broker = Broker::default();
        {
            let _c = broker.connect("ephemeral");
            assert_eq!(broker.client_count(), 1);
        }
        assert_eq!(broker.client_count(), 0);
    }

    #[test]
    fn client_id_accessible() {
        let broker = Broker::default();
        let c = broker.connect("eg-node07");
        assert_eq!(c.client_id(), "eg-node07");
    }
}
