//! The in-process MQTT broker.
//!
//! D.A.V.I.D.E.'s energy gateways publish power samples over MQTT so that
//! *multiple agents* — in-node control agents, per-job aggregators,
//! profilers and accounting — can consume the same stream with low
//! latency (§III-A1). This broker provides those semantics in-process:
//! a topic-trie subscription store with `+`/`#` wildcards, retained
//! messages, QoS 0/1 and per-subscriber bounded queues with drop
//! accounting (a slow profiler must not stall the control agents).

use crate::codec::QoS;
use crate::topic::{filter_matches, validate_filter, validate_topic, TopicError};
use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use davide_obs::{frame_trace_id, Counter, Gauge, ObsHub, Stage};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An application message as delivered to subscribers.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Topic it was published on.
    pub topic: String,
    /// Payload bytes.
    pub payload: Bytes,
    /// Delivery QoS (min of publish and subscription QoS).
    pub qos: QoS,
    /// True when replayed from the retained store.
    pub retain: bool,
}

/// Broker-side errors.
#[derive(Debug, Clone, PartialEq)]
pub enum BrokerError {
    /// Invalid topic or filter string.
    Topic(TopicError),
    /// Operation on a client id the broker does not know.
    UnknownClient(u64),
}

impl std::fmt::Display for BrokerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BrokerError::Topic(e) => write!(f, "{e}"),
            BrokerError::UnknownClient(id) => write!(f, "unknown client {id}"),
        }
    }
}

impl std::error::Error for BrokerError {}

impl From<TopicError> for BrokerError {
    fn from(e: TopicError) -> Self {
        BrokerError::Topic(e)
    }
}

#[derive(Debug)]
struct SubEntry {
    client: u64,
    qos: QoS,
}

/// Subscription trie node: one level of the topic hierarchy.
#[derive(Debug, Default)]
struct TrieNode {
    children: HashMap<String, TrieNode>,
    plus: Option<Box<TrieNode>>,
    /// Subscriptions whose filter ends exactly at this node.
    subs: Vec<SubEntry>,
    /// Subscriptions whose filter is `<this node>/#`.
    hash_subs: Vec<SubEntry>,
}

impl TrieNode {
    fn insert(&mut self, levels: &[&str], entry: SubEntry) {
        match levels.split_first() {
            None => self.subs.push(entry),
            Some((&"#", _)) => self.hash_subs.push(entry),
            Some((&"+", rest)) => self
                .plus
                .get_or_insert_with(Default::default)
                .insert(rest, entry),
            Some((&level, rest)) => self
                .children
                .entry(level.to_string())
                .or_default()
                .insert(rest, entry),
        }
    }

    fn remove(&mut self, levels: &[&str], client: u64) {
        match levels.split_first() {
            None => self.subs.retain(|s| s.client != client),
            Some((&"#", _)) => self.hash_subs.retain(|s| s.client != client),
            Some((&"+", rest)) => {
                if let Some(p) = &mut self.plus {
                    p.remove(rest, client);
                }
            }
            Some((&level, rest)) => {
                if let Some(c) = self.children.get_mut(level) {
                    c.remove(rest, client);
                }
            }
        }
    }

    fn remove_client(&mut self, client: u64) {
        self.subs.retain(|s| s.client != client);
        self.hash_subs.retain(|s| s.client != client);
        if let Some(p) = &mut self.plus {
            p.remove_client(client);
        }
        for c in self.children.values_mut() {
            c.remove_client(client);
        }
    }

    /// Collect `(client, qos)` matches for the topic levels.
    fn collect(&self, levels: &[&str], skip_wildcards: bool, out: &mut Vec<(u64, QoS)>) {
        // A `parent/#` filter also matches `parent` itself.
        if !skip_wildcards {
            for s in &self.hash_subs {
                out.push((s.client, s.qos));
            }
        }
        match levels.split_first() {
            None => {
                for s in &self.subs {
                    out.push((s.client, s.qos));
                }
            }
            Some((&level, rest)) => {
                if let Some(c) = self.children.get(level) {
                    c.collect(rest, false, out);
                }
                if !skip_wildcards {
                    if let Some(p) = &self.plus {
                        p.collect(rest, false, out);
                    }
                }
            }
        }
    }
}

#[derive(Debug)]
struct ClientState {
    sender: Sender<Message>,
    client_id: String,
}

#[derive(Debug, Default)]
struct BrokerState {
    trie: TrieNode,
    clients: HashMap<u64, ClientState>,
    retained: HashMap<String, Message>,
}

/// Delivery statistics, exposed on the `$SYS` topics of a real broker.
/// Fault-injection counts (injected drops/dups) live in the metrics
/// registry via [`BrokerObs`], not here.
#[derive(Debug, Default)]
pub struct BrokerStats {
    /// PUBLISH packets accepted.
    pub published: AtomicU64,
    /// Messages enqueued to subscribers.
    pub delivered: AtomicU64,
    /// Messages dropped because a subscriber queue was full.
    pub dropped: AtomicU64,
    /// QoS 1 PUBLISHes acknowledged.
    pub acked: AtomicU64,
}

/// Per-topic delivery instruments, registered lazily on first sight of
/// a topic (obs self-telemetry topics are excluded to bound
/// cardinality — counting them would mint new metrics for every metric,
/// a feedback loop).
struct TopicObs {
    published: Counter,
    delivered: Counter,
    retained: Gauge,
}

/// Broker-side observability: global and per-topic delivery counters,
/// fault-injection counters, and causal-trace stamps for telemetry
/// frames — all registered in the [`ObsHub`]'s metrics registry.
///
/// Installed with [`Broker::set_obs`]; brokers without one behave
/// exactly as before (the hot path checks a mutex-guarded `Option`).
pub struct BrokerObs {
    hub: ObsHub,
    /// Payload prefix identifying a telemetry `SampleFrame`; only such
    /// publishes are causally traced. `None` disables tracing.
    frame_magic: Option<Vec<u8>>,
    published: Counter,
    delivered: Counter,
    dropped: Counter,
    injected_drops: Counter,
    injected_dups: Counter,
    retained_total: Gauge,
    per_topic: HashMap<String, TopicObs>,
}

impl BrokerObs {
    /// Broker instruments registered in `hub`'s registry. Publishes
    /// whose payload starts with `frame_magic` get [`Stage`] trace
    /// stamps (publish + deliver).
    pub fn new(hub: &ObsHub, frame_magic: Option<&[u8]>) -> Self {
        let r = &hub.registry;
        BrokerObs {
            hub: hub.clone(),
            frame_magic: frame_magic.map(|m| m.to_vec()),
            published: r.counter("mqtt_published_total"),
            delivered: r.counter("mqtt_delivered_total"),
            dropped: r.counter("mqtt_dropped_total"),
            injected_drops: r.counter("mqtt_injected_drops_total"),
            injected_dups: r.counter("mqtt_injected_dups_total"),
            retained_total: r.gauge("mqtt_retained_messages"),
            per_topic: HashMap::new(),
        }
    }

    fn traceable(&self, topic: &str, payload: &[u8]) -> bool {
        match &self.frame_magic {
            Some(m) => payload.starts_with(m) && !topic.starts_with("davide/obs/"),
            None => false,
        }
    }

    fn topic_obs(&mut self, topic: &str) -> Option<&mut TopicObs> {
        if topic.starts_with("davide/obs/") {
            return None;
        }
        if !self.per_topic.contains_key(topic) {
            let r = &self.hub.registry;
            let t = TopicObs {
                published: r.counter(&format!("mqtt_topic_published{{topic=\"{topic}\"}}")),
                delivered: r.counter(&format!("mqtt_topic_delivered{{topic=\"{topic}\"}}")),
                retained: r.gauge(&format!("mqtt_topic_retained{{topic=\"{topic}\"}}")),
            };
            self.per_topic.insert(topic.to_string(), t);
        }
        self.per_topic.get_mut(topic)
    }

    fn on_publish(&mut self, topic: &str, payload: &[u8]) {
        self.published.inc();
        if self.traceable(topic, payload) {
            let now = self.hub.clock.now_s();
            self.hub
                .tracer
                .stamp(frame_trace_id(topic, payload), Stage::BrokerPublish, now);
        }
        if let Some(t) = self.topic_obs(topic) {
            t.published.inc();
        }
    }

    fn on_deliver(&mut self, topic: &str, payload: &[u8]) {
        self.delivered.inc();
        if self.traceable(topic, payload) {
            let now = self.hub.clock.now_s();
            self.hub
                .tracer
                .stamp(frame_trace_id(topic, payload), Stage::SessionDeliver, now);
        }
        if let Some(t) = self.topic_obs(topic) {
            t.delivered.inc();
        }
    }

    fn on_retained(&mut self, topic: &str, present: bool, total: usize) {
        self.retained_total.set(total as f64);
        if let Some(t) = self.topic_obs(topic) {
            t.retained.set(if present { 1.0 } else { 0.0 });
        }
    }
}

impl std::fmt::Debug for BrokerObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BrokerObs")
            .field("topics", &self.per_topic.len())
            .finish_non_exhaustive()
    }
}

/// Verdict returned by a [fault hook](Broker::set_fault_hook) for one
/// PUBLISH: deliver it normally, silently lose it (a lossy link between
/// the energy gateway and the broker), or deliver it twice (a QoS 1
/// retransmission whose original was not actually lost).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PublishFate {
    /// Normal fan-out.
    Deliver,
    /// The packet never reaches the broker: no retained-store update,
    /// no delivery. Counted in [`BrokerStats::injected_drops`].
    Drop,
    /// The packet is processed twice back-to-back (duplicate QoS 1
    /// delivery). Counted once in [`BrokerStats::injected_dups`].
    Duplicate,
}

/// A fault-injection hook consulted once per PUBLISH, before any broker
/// state is touched. Deterministic harnesses install closures driven by
/// a seeded RNG.
pub type FaultHook = Box<dyn FnMut(&str) -> PublishFate + Send>;

/// The broker: cheaply cloneable handle, safe to share across threads.
///
/// ```
/// use davide_mqtt::{Broker, QoS};
/// use bytes::Bytes;
///
/// let broker = Broker::default();
/// let mut agent = broker.connect("accounting");
/// agent.subscribe("davide/+/power/#", QoS::AtMostOnce).unwrap();
/// let gw = broker.connect("eg-node00");
/// let reached = gw
///     .publish("davide/node00/power/node", Bytes::from_static(b"1700"), QoS::AtMostOnce, false)
///     .unwrap();
/// assert_eq!(reached, 1);
/// assert_eq!(&agent.try_recv().unwrap().payload[..], b"1700");
/// ```
#[derive(Clone)]
pub struct Broker {
    state: Arc<Mutex<BrokerState>>,
    stats: Arc<BrokerStats>,
    // Kept outside `state` so a hook can never deadlock against the
    // broker lock, and so installing one is race-free with publishes.
    fault: Arc<Mutex<Option<FaultHook>>>,
    // Same isolation rationale as `fault`; obs code never touches the
    // state lock.
    obs: Arc<Mutex<Option<BrokerObs>>>,
    next_client: Arc<AtomicU64>,
    queue_depth: usize,
}

/// Default per-subscriber queue depth: sized for one second of decimated
/// EG samples (50 kS/s) so a briefly-stalled agent loses nothing.
pub const DEFAULT_QUEUE_DEPTH: usize = 65_536;

impl Default for Broker {
    fn default() -> Self {
        Self::new(DEFAULT_QUEUE_DEPTH)
    }
}

impl Broker {
    /// New broker with the given per-subscriber queue depth.
    pub fn new(queue_depth: usize) -> Self {
        assert!(queue_depth > 0);
        Broker {
            state: Arc::new(Mutex::new(BrokerState::default())),
            stats: Arc::new(BrokerStats::default()),
            fault: Arc::new(Mutex::new(None)),
            obs: Arc::new(Mutex::new(None)),
            next_client: Arc::new(AtomicU64::new(1)),
            queue_depth,
        }
    }

    /// Install (or clear) the broker's observability instruments; see
    /// [`BrokerObs`].
    pub fn set_obs(&self, obs: Option<BrokerObs>) {
        *self.obs.lock() = obs;
    }

    /// Install (or clear, with `None`) a fault-injection hook consulted
    /// once per PUBLISH with the topic; see [`PublishFate`]. The hook
    /// runs before the retained store or any subscriber queue is
    /// touched, so a dropped packet leaves no trace beyond the
    /// [`BrokerStats::injected_drops`] counter.
    pub fn set_fault_hook(&self, hook: Option<FaultHook>) {
        *self.fault.lock() = hook;
    }

    /// The retained payload currently stored for `topic`, if any.
    /// Checkers use this to compare the broker's durable command state
    /// against what the plant actually applied.
    pub fn retained_get(&self, topic: &str) -> Option<Bytes> {
        self.state
            .lock()
            .retained
            .get(topic)
            .map(|m| m.payload.clone())
    }

    /// Connect a client; returns its handle.
    pub fn connect(&self, client_id: impl Into<String>) -> super::client::Client {
        let id = self.next_client.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(self.queue_depth);
        let client_id = client_id.into();
        self.state.lock().clients.insert(
            id,
            ClientState {
                sender: tx,
                client_id: client_id.clone(),
            },
        );
        super::client::Client::new(self.clone(), id, client_id, rx)
    }

    /// Shared statistics handle.
    pub fn stats(&self) -> &BrokerStats {
        &self.stats
    }

    /// Number of connected clients.
    pub fn client_count(&self) -> usize {
        self.state.lock().clients.len()
    }

    /// Number of retained messages held.
    pub fn retained_count(&self) -> usize {
        self.state.lock().retained.len()
    }

    pub(crate) fn disconnect(&self, client: u64) {
        let mut st = self.state.lock();
        st.clients.remove(&client);
        st.trie.remove_client(client);
    }

    pub(crate) fn subscribe(&self, client: u64, filter: &str, qos: QoS) -> Result<(), BrokerError> {
        validate_filter(filter)?;
        let mut st = self.state.lock();
        if !st.clients.contains_key(&client) {
            return Err(BrokerError::UnknownClient(client));
        }
        let levels: Vec<&str> = filter.split('/').collect();
        // Replace any existing subscription by this client on the filter.
        st.trie.remove(&levels, client);
        st.trie.insert(&levels, SubEntry { client, qos });

        // Replay retained messages matching the new filter, in topic
        // order — the map iterates in per-process random order, and
        // replay order must not leak that nondeterminism to sessions.
        let mut matches: Vec<Message> = st
            .retained
            .values()
            .filter(|m| filter_matches(filter, &m.topic))
            .cloned()
            .collect();
        matches.sort_unstable_by(|a, b| a.topic.cmp(&b.topic));
        if let Some(cs) = st.clients.get(&client) {
            for mut m in matches {
                m.retain = true;
                m.qos = m.qos.min(qos);
                match cs.sender.try_send(m) {
                    Ok(()) => {
                        self.stats.delivered.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        self.stats.dropped.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        Ok(())
    }

    pub(crate) fn unsubscribe(&self, client: u64, filter: &str) -> Result<(), BrokerError> {
        validate_filter(filter)?;
        let levels: Vec<&str> = filter.split('/').collect();
        self.state.lock().trie.remove(&levels, client);
        Ok(())
    }

    /// Publish a message; returns the number of subscribers it reached.
    ///
    /// For QoS 1 the broker "acknowledges" by bumping the `acked`
    /// counter once the message is safely fanned out — the in-process
    /// equivalent of PUBACK.
    pub(crate) fn publish(
        &self,
        topic: &str,
        payload: Bytes,
        qos: QoS,
        retain: bool,
    ) -> Result<usize, BrokerError> {
        validate_topic(topic)?;
        self.stats.published.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = self.obs.lock().as_mut() {
            o.on_publish(topic, &payload);
        }

        // Fault injection: decide the packet's fate before touching any
        // broker state (the hook lock is never held together with the
        // state lock).
        let fate = match self.fault.lock().as_mut() {
            Some(hook) => hook(topic),
            None => PublishFate::Deliver,
        };
        match fate {
            PublishFate::Deliver => {}
            PublishFate::Drop => {
                if let Some(o) = self.obs.lock().as_mut() {
                    o.injected_drops.inc();
                }
                return Ok(0);
            }
            PublishFate::Duplicate => {
                if let Some(o) = self.obs.lock().as_mut() {
                    o.injected_dups.inc();
                }
                let first = self.fan_out(topic, &payload, qos, retain);
                self.fan_out(topic, &payload, qos, retain);
                return Ok(first);
            }
        }
        Ok(self.fan_out(topic, &payload, qos, retain))
    }

    /// Publish a batch of non-retained QoS 0 messages with one state-lock
    /// acquisition for the whole batch.
    ///
    /// Per-publish semantics are preserved message by message — topic
    /// validation, `published` stats, [`BrokerObs::on_publish`], the
    /// fault hook's per-packet fate, delivery counting — but the three
    /// broker locks (obs, fault, state) are each taken once instead of
    /// once per message. At the full-rate acquisition scale (36 000
    /// frames per simulated second from 45 gateways) the per-publish
    /// lock traffic is a measurable fraction of the fan-in cost; this
    /// is the EG's bulk path. Messages are fanned out in slice order,
    /// so inter-batch ordering is exactly what a publish loop produces.
    ///
    /// Returns the total number of subscriber deliveries across the
    /// batch. Errors on the first invalid topic, before any message is
    /// published.
    pub(crate) fn publish_batch(&self, msgs: &[(String, Bytes)]) -> Result<usize, BrokerError> {
        for (topic, _) in msgs {
            validate_topic(topic)?;
        }
        self.stats
            .published
            .fetch_add(msgs.len() as u64, Ordering::Relaxed);
        // One fault-hook lock: decide every packet's fate up front (the
        // hook must see one call per message, same as the loop form).
        let fates: Option<Vec<PublishFate>> = {
            let mut guard = self.fault.lock();
            guard
                .as_mut()
                .map(|hook| msgs.iter().map(|(topic, _)| hook(topic)).collect())
        };
        // One obs lock and one state lock for the whole batch (same
        // state → obs acquisition order as the per-publish path never
        // holds both, so no ordering hazard is introduced).
        let mut obs = self.obs.lock();
        if let Some(o) = obs.as_mut() {
            for (topic, payload) in msgs {
                o.on_publish(topic, payload);
            }
        }
        let mut st = self.state.lock();
        let mut reached = 0;
        let mut targets = Vec::new();
        for (i, (topic, payload)) in msgs.iter().enumerate() {
            match fates.as_ref().map_or(PublishFate::Deliver, |f| f[i]) {
                PublishFate::Deliver => {
                    reached += self.fan_out_locked(&mut st, &mut obs, topic, payload, &mut targets);
                }
                PublishFate::Drop => {
                    if let Some(o) = obs.as_mut() {
                        o.injected_drops.inc();
                    }
                }
                PublishFate::Duplicate => {
                    if let Some(o) = obs.as_mut() {
                        o.injected_dups.inc();
                    }
                    reached += self.fan_out_locked(&mut st, &mut obs, topic, payload, &mut targets);
                    self.fan_out_locked(&mut st, &mut obs, topic, payload, &mut targets);
                }
            }
        }
        Ok(reached)
    }

    /// Non-retained QoS 0 fan-out with the state (and obs) locks already
    /// held — the per-message body of [`Broker::publish_batch`].
    /// `targets` is caller-owned scratch so the batch loop reuses one
    /// match buffer.
    fn fan_out_locked(
        &self,
        st: &mut BrokerState,
        obs: &mut Option<BrokerObs>,
        topic: &str,
        payload: &Bytes,
        targets: &mut Vec<(u64, QoS)>,
    ) -> usize {
        let levels: Vec<&str> = topic.split('/').collect();
        targets.clear();
        st.trie.collect(&levels, topic.starts_with('$'), targets);
        let mut reached = 0;
        for &(client, sub_qos) in targets.iter() {
            if let Some(cs) = st.clients.get(&client) {
                let m = Message {
                    topic: topic.to_string(),
                    payload: payload.clone(),
                    qos: QoS::AtMostOnce.min(sub_qos),
                    retain: false,
                };
                match cs.sender.try_send(m) {
                    Ok(()) => {
                        reached += 1;
                        self.stats.delivered.fetch_add(1, Ordering::Relaxed);
                        if let Some(o) = obs.as_mut() {
                            o.on_deliver(topic, payload);
                        }
                    }
                    Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                        self.stats.dropped.fetch_add(1, Ordering::Relaxed);
                        if let Some(o) = obs.as_mut() {
                            o.dropped.inc();
                        }
                    }
                }
            }
        }
        reached
    }

    /// One pass of retained-store update + subscriber fan-out.
    fn fan_out(&self, topic: &str, payload: &Bytes, qos: QoS, retain: bool) -> usize {
        let mut st = self.state.lock();
        if retain {
            if payload.is_empty() {
                // Empty retained payload clears the retained message.
                st.retained.remove(topic);
            } else {
                st.retained.insert(
                    topic.to_string(),
                    Message {
                        topic: topic.to_string(),
                        payload: payload.clone(),
                        qos,
                        retain: true,
                    },
                );
            }
            if let Some(o) = self.obs.lock().as_mut() {
                o.on_retained(topic, !payload.is_empty(), st.retained.len());
            }
        }

        let levels: Vec<&str> = topic.split('/').collect();
        let mut targets = Vec::new();
        // $-topics suppress wildcards at the root level only.
        let skip_wild_at_root = topic.starts_with('$');
        st.trie.collect(&levels, skip_wild_at_root, &mut targets);
        let mut reached = 0;
        for (client, sub_qos) in targets {
            if let Some(cs) = st.clients.get(&client) {
                // "Retain as published" (the MQTT 5 RAP behaviour):
                // live deliveries carry the publisher's retain flag so
                // bridges can preserve retained state downstream.
                let m = Message {
                    topic: topic.to_string(),
                    payload: payload.clone(),
                    qos: qos.min(sub_qos),
                    retain,
                };
                match cs.sender.try_send(m) {
                    Ok(()) => {
                        reached += 1;
                        self.stats.delivered.fetch_add(1, Ordering::Relaxed);
                        if let Some(o) = self.obs.lock().as_mut() {
                            o.on_deliver(topic, payload);
                        }
                    }
                    Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                        self.stats.dropped.fetch_add(1, Ordering::Relaxed);
                        if let Some(o) = self.obs.lock().as_mut() {
                            o.dropped.inc();
                        }
                    }
                }
            }
        }
        if qos == QoS::AtLeastOnce {
            self.stats.acked.fetch_add(1, Ordering::Relaxed);
        }
        reached
    }

    /// Look up a client's chosen id string (diagnostics).
    pub fn client_name(&self, client: u64) -> Option<String> {
        self.state
            .lock()
            .clients
            .get(&client)
            .map(|c| c.client_id.clone())
    }
}

/// A receiving endpoint handed to subscribers (re-export of the
/// crossbeam receiver so callers can `recv`, `try_recv`, iterate…).
pub type MessageReceiver = Receiver<Message>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;
    use std::time::Duration;

    fn payload(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn publish_subscribe_roundtrip() {
        let broker = Broker::default();
        let mut sub = broker.connect("agent");
        let publ = broker.connect("gateway");
        sub.subscribe("davide/+/power", QoS::AtMostOnce).unwrap();
        let n = publ
            .publish(
                "davide/node03/power",
                payload("1720"),
                QoS::AtMostOnce,
                false,
            )
            .unwrap();
        assert_eq!(n, 1);
        let m = sub.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(m.topic, "davide/node03/power");
        assert_eq!(&m.payload[..], b"1720");
    }

    #[test]
    fn fan_out_to_multiple_agents() {
        let broker = Broker::default();
        let publ = broker.connect("gateway");
        let mut subs: Vec<_> = (0..8)
            .map(|i| {
                let mut c = broker.connect(format!("agent{i}"));
                c.subscribe("davide/#", QoS::AtMostOnce).unwrap();
                c
            })
            .collect();
        let n = publ
            .publish("davide/node00/power", payload("p"), QoS::AtMostOnce, false)
            .unwrap();
        assert_eq!(n, 8);
        for s in &mut subs {
            assert!(s.try_recv().is_some());
        }
    }

    #[test]
    fn no_delivery_without_match() {
        let broker = Broker::default();
        let mut sub = broker.connect("agent");
        let publ = broker.connect("gateway");
        sub.subscribe("davide/+/temp", QoS::AtMostOnce).unwrap();
        let n = publ
            .publish("davide/node03/power", payload("x"), QoS::AtMostOnce, false)
            .unwrap();
        assert_eq!(n, 0);
        assert!(sub.try_recv().is_none());
    }

    #[test]
    fn retained_message_replayed_on_subscribe() {
        let broker = Broker::default();
        let publ = broker.connect("gateway");
        publ.publish("davide/node03/cap", payload("1500"), QoS::AtLeastOnce, true)
            .unwrap();
        assert_eq!(broker.retained_count(), 1);
        // Late subscriber still sees the value.
        let mut sub = broker.connect("late-agent");
        sub.subscribe("davide/+/cap", QoS::AtLeastOnce).unwrap();
        let m = sub.recv_timeout(Duration::from_secs(1)).unwrap();
        assert!(m.retain);
        assert_eq!(&m.payload[..], b"1500");
        // Clearing: empty retained payload.
        publ.publish("davide/node03/cap", Bytes::new(), QoS::AtMostOnce, true)
            .unwrap();
        assert_eq!(broker.retained_count(), 0);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let broker = Broker::default();
        let mut sub = broker.connect("agent");
        let publ = broker.connect("gateway");
        sub.subscribe("a/b", QoS::AtMostOnce).unwrap();
        publ.publish("a/b", payload("1"), QoS::AtMostOnce, false)
            .unwrap();
        sub.unsubscribe("a/b").unwrap();
        publ.publish("a/b", payload("2"), QoS::AtMostOnce, false)
            .unwrap();
        assert_eq!(&sub.try_recv().unwrap().payload[..], b"1");
        assert!(sub.try_recv().is_none());
    }

    #[test]
    fn disconnect_cleans_up() {
        let broker = Broker::default();
        let mut sub = broker.connect("agent");
        sub.subscribe("a/#", QoS::AtMostOnce).unwrap();
        assert_eq!(broker.client_count(), 1);
        sub.disconnect();
        assert_eq!(broker.client_count(), 0);
        let publ = broker.connect("gateway");
        let n = publ
            .publish("a/b", payload("x"), QoS::AtMostOnce, false)
            .unwrap();
        assert_eq!(n, 0, "no stale subscriptions");
    }

    #[test]
    fn slow_subscriber_drops_do_not_block_publisher() {
        let broker = Broker::new(4); // tiny queue
        let mut sub = broker.connect("slow-agent");
        let publ = broker.connect("gateway");
        sub.subscribe("t", QoS::AtMostOnce).unwrap();
        for i in 0..10 {
            publ.publish("t", payload(&i.to_string()), QoS::AtMostOnce, false)
                .unwrap();
        }
        let delivered = broker.stats().delivered.load(Ordering::Relaxed);
        let dropped = broker.stats().dropped.load(Ordering::Relaxed);
        assert_eq!(delivered, 4);
        assert_eq!(dropped, 6);
        // The slow consumer still gets the first 4.
        let got: Vec<_> = std::iter::from_fn(|| sub.try_recv()).collect();
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn qos_downgraded_to_subscription_qos() {
        let broker = Broker::default();
        let mut sub = broker.connect("agent");
        let publ = broker.connect("gateway");
        sub.subscribe("t", QoS::AtMostOnce).unwrap();
        publ.publish("t", payload("x"), QoS::AtLeastOnce, false)
            .unwrap();
        let m = sub.try_recv().unwrap();
        assert_eq!(m.qos, QoS::AtMostOnce, "min(pub, sub)");
        assert_eq!(broker.stats().acked.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn sys_topics_hidden_from_hash() {
        let broker = Broker::default();
        let mut wild = broker.connect("wild");
        let mut explicit = broker.connect("explicit");
        wild.subscribe("#", QoS::AtMostOnce).unwrap();
        explicit.subscribe("$SYS/#", QoS::AtMostOnce).unwrap();
        let publ = broker.connect("broker-self");
        publ.publish("$SYS/broker/load", payload("0.5"), QoS::AtMostOnce, false)
            .unwrap();
        assert!(wild.try_recv().is_none(), "# must not see $SYS");
        assert!(explicit.try_recv().is_some());
    }

    #[test]
    fn resubscribe_does_not_duplicate() {
        let broker = Broker::default();
        let mut sub = broker.connect("agent");
        let publ = broker.connect("gateway");
        sub.subscribe("t", QoS::AtMostOnce).unwrap();
        sub.subscribe("t", QoS::AtLeastOnce).unwrap(); // replace
        let n = publ
            .publish("t", payload("x"), QoS::AtLeastOnce, false)
            .unwrap();
        assert_eq!(n, 1, "single delivery after re-subscribe");
        assert_eq!(sub.try_recv().unwrap().qos, QoS::AtLeastOnce);
    }

    #[test]
    fn fault_hook_drops_and_duplicates() {
        let broker = Broker::default();
        // Fault-injection counts surface through the metrics registry.
        let (hub, _clock) = ObsHub::manual();
        broker.set_obs(Some(BrokerObs::new(&hub, None)));
        let mut sub = broker.connect("agent");
        let publ = broker.connect("gateway");
        sub.subscribe("davide/#", QoS::AtMostOnce).unwrap();
        // Drop everything under davide/node00, duplicate node01.
        broker.set_fault_hook(Some(Box::new(|topic: &str| {
            if topic.starts_with("davide/node00") {
                PublishFate::Drop
            } else if topic.starts_with("davide/node01") {
                PublishFate::Duplicate
            } else {
                PublishFate::Deliver
            }
        })));
        let n = publ
            .publish("davide/node00/power", payload("1"), QoS::AtMostOnce, true)
            .unwrap();
        assert_eq!(n, 0, "dropped before fan-out");
        assert_eq!(broker.retained_count(), 0, "drop precedes retained store");
        publ.publish("davide/node01/power", payload("2"), QoS::AtMostOnce, false)
            .unwrap();
        publ.publish("davide/node02/power", payload("3"), QoS::AtMostOnce, false)
            .unwrap();
        let got: Vec<_> = std::iter::from_fn(|| sub.try_recv()).collect();
        assert_eq!(got.len(), 3, "one dup + one normal");
        assert_eq!(&got[0].payload[..], b"2");
        assert_eq!(&got[1].payload[..], b"2");
        assert_eq!(&got[2].payload[..], b"3");
        let drops = hub
            .registry
            .find_counter("mqtt_injected_drops_total")
            .unwrap();
        let dups = hub
            .registry
            .find_counter("mqtt_injected_dups_total")
            .unwrap();
        assert_eq!(drops.get(), 1);
        assert_eq!(dups.get(), 1);
        // Clearing the hook restores normal delivery.
        broker.set_fault_hook(None);
        let n = publ
            .publish("davide/node00/power", payload("4"), QoS::AtMostOnce, false)
            .unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn per_topic_instruments_track_published_delivered_retained() {
        let broker = Broker::default();
        let (hub, _clock) = ObsHub::manual();
        broker.set_obs(Some(BrokerObs::new(&hub, None)));
        let mut sub = broker.connect("agent");
        let publ = broker.connect("gateway");
        sub.subscribe("davide/+/power/#", QoS::AtMostOnce).unwrap();
        for _ in 0..3 {
            publ.publish(
                "davide/node00/power/node",
                payload("1700"),
                QoS::AtMostOnce,
                false,
            )
            .unwrap();
        }
        publ.publish(
            "davide/node00/ctl/speed",
            payload("0.9"),
            QoS::AtMostOnce,
            true,
        )
        .unwrap();
        let r = &hub.registry;
        let pt = |name: &str| r.find_counter(name).map(|c| c.get());
        assert_eq!(
            pt("mqtt_topic_published{topic=\"davide/node00/power/node\"}"),
            Some(3)
        );
        assert_eq!(
            pt("mqtt_topic_delivered{topic=\"davide/node00/power/node\"}"),
            Some(3)
        );
        assert_eq!(
            pt("mqtt_topic_published{topic=\"davide/node00/ctl/speed\"}"),
            Some(1)
        );
        // Retained gauge flips with the retained store.
        let text = r.render_text();
        assert!(text.contains("mqtt_topic_retained{topic=\"davide/node00/ctl/speed\"} 1"));
        assert!(text.contains("mqtt_retained_messages 1"));
        publ.publish(
            "davide/node00/ctl/speed",
            Bytes::new(),
            QoS::AtMostOnce,
            true,
        )
        .unwrap();
        let text = r.render_text();
        assert!(text.contains("mqtt_topic_retained{topic=\"davide/node00/ctl/speed\"} 0"));
        assert!(text.contains("mqtt_retained_messages 0"));
        // Obs self-telemetry topics never mint per-topic series.
        publ.publish(
            "davide/obs/self/some_metric",
            payload("1"),
            QoS::AtMostOnce,
            false,
        )
        .unwrap();
        assert_eq!(
            pt("mqtt_topic_published{topic=\"davide/obs/self/some_metric\"}"),
            None
        );
        // Global counters still see everything.
        assert_eq!(r.find_counter("mqtt_published_total").unwrap().get(), 6);
    }

    #[test]
    fn retained_get_reads_store() {
        let broker = Broker::default();
        let publ = broker.connect("ctl");
        assert_eq!(broker.retained_get("davide/node00/ctl/speed"), None);
        publ.publish(
            "davide/node00/ctl/speed",
            payload("0.8589"),
            QoS::AtLeastOnce,
            true,
        )
        .unwrap();
        assert_eq!(
            broker.retained_get("davide/node00/ctl/speed").as_deref(),
            Some(&b"0.8589"[..])
        );
        // Empty retained payload clears the slot.
        publ.publish(
            "davide/node00/ctl/speed",
            Bytes::new(),
            QoS::AtMostOnce,
            true,
        )
        .unwrap();
        assert_eq!(broker.retained_get("davide/node00/ctl/speed"), None);
    }

    #[test]
    fn publish_batch_matches_publish_loop() {
        let broker = Broker::default();
        let mut sub = broker.connect("agent");
        sub.subscribe("davide/+/power/#", QoS::AtMostOnce).unwrap();
        let publ = broker.connect("gateway");
        let batch: Vec<(String, Bytes)> = (0..5)
            .map(|i| {
                (
                    format!("davide/node0{i}/power/node"),
                    payload(&i.to_string()),
                )
            })
            .collect();
        let reached = publ.publish_batch(&batch).unwrap();
        assert_eq!(reached, 5);
        let got = sub.drain();
        assert_eq!(got.len(), 5);
        // Delivery is in slice order with per-message semantics intact.
        for (i, m) in got.iter().enumerate() {
            assert_eq!(m.topic, batch[i].0);
            assert_eq!(m.payload, batch[i].1);
            assert_eq!(m.qos, QoS::AtMostOnce);
            assert!(!m.retain);
        }
        assert_eq!(broker.stats().published.load(Ordering::Relaxed), 5);
        assert_eq!(broker.stats().delivered.load(Ordering::Relaxed), 5);
        // An invalid topic fails the whole batch up front.
        assert!(publ
            .publish_batch(&[("bad/#/topic".to_string(), Bytes::new())])
            .is_err());
    }

    #[test]
    fn publish_batch_honours_fault_hook_per_message() {
        let broker = Broker::default();
        let mut sub = broker.connect("agent");
        sub.subscribe("davide/#", QoS::AtMostOnce).unwrap();
        broker.set_fault_hook(Some(Box::new(|topic: &str| {
            if topic.contains("node00") {
                PublishFate::Drop
            } else if topic.contains("node01") {
                PublishFate::Duplicate
            } else {
                PublishFate::Deliver
            }
        })));
        let publ = broker.connect("gateway");
        let batch: Vec<(String, Bytes)> = (0..3)
            .map(|i| (format!("davide/node0{i}/power/node"), payload("x")))
            .collect();
        // Drop counts 0, duplicate counts its first fan-out, deliver 1.
        let reached = publ.publish_batch(&batch).unwrap();
        assert_eq!(reached, 2);
        let got = sub.drain();
        let topics: Vec<&str> = got.iter().map(|m| m.topic.as_str()).collect();
        assert_eq!(
            topics,
            [
                "davide/node01/power/node",
                "davide/node01/power/node",
                "davide/node02/power/node"
            ]
        );
    }

    #[test]
    fn concurrent_publishers() {
        let broker = Broker::default();
        let mut sub = broker.connect("agent");
        sub.subscribe("davide/#", QoS::AtMostOnce).unwrap();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let b = broker.clone();
                std::thread::spawn(move || {
                    let c = b.connect(format!("gw{t}"));
                    for i in 0..250 {
                        c.publish(
                            &format!("davide/node{t}/s{i}"),
                            Bytes::new(),
                            QoS::AtMostOnce,
                            false,
                        )
                        .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mut count = 0;
        while sub.try_recv().is_some() {
            count += 1;
        }
        assert_eq!(count, 1000);
    }
}
