//! The in-process MQTT broker.
//!
//! D.A.V.I.D.E.'s energy gateways publish power samples over MQTT so that
//! *multiple agents* — in-node control agents, per-job aggregators,
//! profilers and accounting — can consume the same stream with low
//! latency (§III-A1). This broker provides those semantics in-process:
//! a topic-trie subscription store with `+`/`#` wildcards, retained
//! messages, QoS 0/1 and per-subscriber bounded queues with drop
//! accounting (a slow profiler must not stall the control agents).
//!
//! # Sharding
//!
//! The hot publish path is sharded: the topic trie, the retained store
//! and the subscription entries are split across [`DEFAULT_SHARDS`]
//! shards keyed by a hash of the topic's first two levels
//! ([`crate::topic::shard_of_topic`]). Every topic maps to exactly one
//! shard, so a publish takes exactly one shard lock; publishers on
//! topics under different node prefixes never contend. Subscription
//! filters are registered on every shard they can match
//! ([`crate::topic::filter_shards`]): a per-node filter like
//! `davide/node03/#` pins one shard, a cross-node wildcard like
//! `davide/+/power/#` registers on all of them. Fan-out is still
//! deterministic — for any one topic, all matching entries live on that
//! topic's shard and are visited in the same trie order as the old
//! single-lock broker, and the fault hook remains a single global
//! sequence point consulted once per publish in submission order.

use crate::codec::QoS;
use crate::topic::{
    filter_matches, filter_shards, shard_of_topic, validate_filter, validate_topic, TopicError,
};
use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use davide_obs::{frame_trace_id, Counter, Gauge, ObsHub, Stage};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// An application message as delivered to subscribers.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Topic it was published on.
    pub topic: String,
    /// Payload bytes.
    pub payload: Bytes,
    /// Delivery QoS (min of publish and subscription QoS).
    pub qos: QoS,
    /// True when replayed from the retained store.
    pub retain: bool,
    /// True when this is a QoS 1 redelivery of an unacknowledged
    /// message (maps to the wire DUP flag).
    pub dup: bool,
    /// Broker-assigned packet id when the subscriber has QoS 1
    /// delivery tracking enabled; the subscriber acknowledges it with
    /// [`super::client::Client::ack`]. `None` for untracked delivery.
    pub packet_id: Option<u16>,
}

/// Broker-side errors.
#[derive(Debug, Clone, PartialEq)]
pub enum BrokerError {
    /// Invalid topic or filter string.
    Topic(TopicError),
    /// Operation on a client id the broker does not know.
    UnknownClient(u64),
}

impl std::fmt::Display for BrokerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BrokerError::Topic(e) => write!(f, "{e}"),
            BrokerError::UnknownClient(id) => write!(f, "unknown client {id}"),
        }
    }
}

impl std::error::Error for BrokerError {}

impl From<TopicError> for BrokerError {
    fn from(e: TopicError) -> Self {
        BrokerError::Topic(e)
    }
}

/// Default QoS 1 in-flight window per subscriber: deliveries beyond it
/// are downgraded to untracked until acknowledgements free slots.
pub const DEFAULT_QOS1_WINDOW: usize = 32;

/// Default redelivery attempts before a tracked message is expired.
pub const DEFAULT_QOS1_RETRIES: u32 = 3;

/// Per-subscriber QoS 1 delivery tracking: the broker-side half of the
/// PUBACK handshake. Disabled by default (zero overhead on the QoS 0
/// telemetry path); a subscriber that wants at-least-once opts in via
/// [`super::client::Client::enable_qos1_tracking`].
#[derive(Debug, Default)]
pub(crate) struct Qos1State {
    enabled: AtomicBool,
    inner: Mutex<Qos1Inner>,
}

#[derive(Debug)]
struct Qos1Inner {
    next_id: u16,
    window: usize,
    max_retries: u32,
    /// In-flight messages keyed by packet id. A `BTreeMap` so
    /// redelivery sweeps walk ids in a deterministic order.
    unacked: BTreeMap<u16, Tracked>,
}

#[derive(Debug)]
struct Tracked {
    msg: Message,
    retries: u32,
}

impl Default for Qos1Inner {
    fn default() -> Self {
        Qos1Inner {
            next_id: 1,
            window: DEFAULT_QOS1_WINDOW,
            max_retries: DEFAULT_QOS1_RETRIES,
            unacked: BTreeMap::new(),
        }
    }
}

impl Qos1Inner {
    /// Next free non-zero packet id (wrapping; skips ids still in
    /// flight — the window is far below 65535, so this terminates).
    fn alloc_id(&mut self) -> u16 {
        loop {
            let id = self.next_id;
            self.next_id = if id == u16::MAX { 1 } else { id + 1 };
            if !self.unacked.contains_key(&id) {
                return id;
            }
        }
    }
}

#[derive(Debug)]
struct SubEntry {
    client: u64,
    qos: QoS,
    /// The subscriber's queue, stored in the trie entry so fan-out
    /// never has to consult a global client table.
    sender: Sender<Message>,
    qos1: Arc<Qos1State>,
}

/// Subscription trie node: one level of the topic hierarchy.
#[derive(Debug, Default)]
struct TrieNode {
    children: HashMap<String, TrieNode>,
    plus: Option<Box<TrieNode>>,
    /// Subscriptions whose filter ends exactly at this node.
    subs: Vec<SubEntry>,
    /// Subscriptions whose filter is `<this node>/#`.
    hash_subs: Vec<SubEntry>,
}

impl TrieNode {
    fn insert(&mut self, levels: &[&str], entry: SubEntry) {
        match levels.split_first() {
            None => self.subs.push(entry),
            Some((&"#", _)) => self.hash_subs.push(entry),
            Some((&"+", rest)) => self
                .plus
                .get_or_insert_with(Default::default)
                .insert(rest, entry),
            Some((&level, rest)) => self
                .children
                .entry(level.to_string())
                .or_default()
                .insert(rest, entry),
        }
    }

    fn remove(&mut self, levels: &[&str], client: u64) {
        match levels.split_first() {
            None => self.subs.retain(|s| s.client != client),
            Some((&"#", _)) => self.hash_subs.retain(|s| s.client != client),
            Some((&"+", rest)) => {
                if let Some(p) = &mut self.plus {
                    p.remove(rest, client);
                }
            }
            Some((&level, rest)) => {
                if let Some(c) = self.children.get_mut(level) {
                    c.remove(rest, client);
                }
            }
        }
    }

    fn remove_client(&mut self, client: u64) {
        self.subs.retain(|s| s.client != client);
        self.hash_subs.retain(|s| s.client != client);
        if let Some(p) = &mut self.plus {
            p.remove_client(client);
        }
        for c in self.children.values_mut() {
            c.remove_client(client);
        }
    }

    /// Visit every subscription matching the topic levels, in the same
    /// traversal order the old collect-then-deliver path used:
    /// `#`-subscriptions at each node first, then exact matches, then
    /// literal children before the `+` branch.
    fn for_each_match(&self, levels: &[&str], skip_wildcards: bool, f: &mut impl FnMut(&SubEntry)) {
        // A `parent/#` filter also matches `parent` itself.
        if !skip_wildcards {
            for s in &self.hash_subs {
                f(s);
            }
        }
        match levels.split_first() {
            None => {
                for s in &self.subs {
                    f(s);
                }
            }
            Some((&level, rest)) => {
                if let Some(c) = self.children.get(level) {
                    c.for_each_match(rest, false, f);
                }
                if !skip_wildcards {
                    if let Some(p) = &self.plus {
                        p.for_each_match(rest, false, f);
                    }
                }
            }
        }
    }
}

/// One shard: the trie and retained slice for topics that hash here,
/// plus this shard's observability fork. Lock order within a shard is
/// always obs before state.
#[derive(Debug, Default)]
struct Shard {
    state: Mutex<ShardState>,
    obs: Mutex<Option<BrokerObs>>,
}

#[derive(Debug, Default)]
struct ShardState {
    trie: TrieNode,
    retained: HashMap<String, Message>,
}

/// Connection-level bookkeeping, off the publish hot path: touched only
/// by connect/disconnect/subscribe and the QoS 1 control surface.
#[derive(Debug)]
struct ClientInfo {
    sender: Sender<Message>,
    client_id: String,
    filters: HashSet<String>,
    qos1: Arc<Qos1State>,
}

/// Delivery statistics, exposed on the `$SYS` topics of a real broker.
/// Fault-injection counts (injected drops/dups) live in the metrics
/// registry via [`BrokerObs`], not here. All counters are atomics so
/// `stats()` reads never race with sharded publishers.
#[derive(Debug, Default)]
pub struct BrokerStats {
    /// PUBLISH packets accepted.
    pub published: AtomicU64,
    /// Messages enqueued to subscribers.
    pub delivered: AtomicU64,
    /// Messages dropped because a subscriber queue was full.
    pub dropped: AtomicU64,
    /// QoS 1 PUBLISHes acknowledged.
    pub acked: AtomicU64,
    /// QoS 1 tracked messages re-sent with the DUP flag.
    pub redelivered: AtomicU64,
    /// QoS 1 tracked messages given up on after `max_retries`.
    pub expired: AtomicU64,
}

/// Per-topic delivery instruments, registered lazily on first sight of
/// a topic (obs self-telemetry topics are excluded to bound
/// cardinality — counting them would mint new metrics for every metric,
/// a feedback loop).
struct TopicObs {
    published: Counter,
    delivered: Counter,
    retained: Gauge,
}

/// Broker-side observability: global and per-topic delivery counters,
/// fault-injection counters, and causal-trace stamps for telemetry
/// frames — all registered in the [`ObsHub`]'s metrics registry.
///
/// Installed with [`Broker::set_obs`]; brokers without one behave
/// exactly as before (the hot path checks an atomic flag). Internally
/// the broker holds one fork per shard — the forks share every global
/// counter (metric registration is idempotent) while each keeps its own
/// per-topic map, which is safe because a topic maps to exactly one
/// shard and therefore to exactly one fork.
pub struct BrokerObs {
    hub: ObsHub,
    /// Payload prefix identifying a telemetry `SampleFrame`; only such
    /// publishes are causally traced. `None` disables tracing.
    frame_magic: Option<Vec<u8>>,
    published: Counter,
    delivered: Counter,
    dropped: Counter,
    injected_drops: Counter,
    injected_dups: Counter,
    retained_total: Gauge,
    per_topic: HashMap<String, TopicObs>,
}

impl BrokerObs {
    /// Broker instruments registered in `hub`'s registry. Publishes
    /// whose payload starts with `frame_magic` get [`Stage`] trace
    /// stamps (publish + deliver).
    pub fn new(hub: &ObsHub, frame_magic: Option<&[u8]>) -> Self {
        let r = &hub.registry;
        BrokerObs {
            hub: hub.clone(),
            frame_magic: frame_magic.map(|m| m.to_vec()),
            published: r.counter("mqtt_published_total"),
            delivered: r.counter("mqtt_delivered_total"),
            dropped: r.counter("mqtt_dropped_total"),
            injected_drops: r.counter("mqtt_injected_drops_total"),
            injected_dups: r.counter("mqtt_injected_dups_total"),
            retained_total: r.gauge("mqtt_retained_messages"),
            per_topic: HashMap::new(),
        }
    }

    /// A per-shard sibling: shares every global instrument handle but
    /// starts with an empty per-topic map of its own.
    fn fork(&self) -> BrokerObs {
        BrokerObs {
            hub: self.hub.clone(),
            frame_magic: self.frame_magic.clone(),
            published: self.published.clone(),
            delivered: self.delivered.clone(),
            dropped: self.dropped.clone(),
            injected_drops: self.injected_drops.clone(),
            injected_dups: self.injected_dups.clone(),
            retained_total: self.retained_total.clone(),
            per_topic: HashMap::new(),
        }
    }

    fn traceable(&self, topic: &str, payload: &[u8]) -> bool {
        match &self.frame_magic {
            Some(m) => payload.starts_with(m) && !topic.starts_with("davide/obs/"),
            None => false,
        }
    }

    fn topic_obs(&mut self, topic: &str) -> Option<&mut TopicObs> {
        if topic.starts_with("davide/obs/") {
            return None;
        }
        if !self.per_topic.contains_key(topic) {
            let r = &self.hub.registry;
            let t = TopicObs {
                published: r.counter(&format!("mqtt_topic_published{{topic=\"{topic}\"}}")),
                delivered: r.counter(&format!("mqtt_topic_delivered{{topic=\"{topic}\"}}")),
                retained: r.gauge(&format!("mqtt_topic_retained{{topic=\"{topic}\"}}")),
            };
            self.per_topic.insert(topic.to_string(), t);
        }
        self.per_topic.get_mut(topic)
    }

    fn on_publish(&mut self, topic: &str, payload: &[u8]) {
        self.published.inc();
        if self.traceable(topic, payload) {
            let now = self.hub.clock.now_s();
            self.hub
                .tracer
                .stamp(frame_trace_id(topic, payload), Stage::BrokerPublish, now);
        }
        if let Some(t) = self.topic_obs(topic) {
            t.published.inc();
        }
    }

    fn on_deliver(&mut self, topic: &str, payload: &[u8]) {
        self.delivered.inc();
        if self.traceable(topic, payload) {
            let now = self.hub.clock.now_s();
            self.hub
                .tracer
                .stamp(frame_trace_id(topic, payload), Stage::SessionDeliver, now);
        }
        if let Some(t) = self.topic_obs(topic) {
            t.delivered.inc();
        }
    }

    fn on_retained(&mut self, topic: &str, present: bool, total: usize) {
        self.retained_total.set(total as f64);
        if let Some(t) = self.topic_obs(topic) {
            t.retained.set(if present { 1.0 } else { 0.0 });
        }
    }
}

impl std::fmt::Debug for BrokerObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BrokerObs")
            .field("topics", &self.per_topic.len())
            .finish_non_exhaustive()
    }
}

/// Verdict returned by a [fault hook](Broker::set_fault_hook) for one
/// PUBLISH: deliver it normally, silently lose it (a lossy link between
/// the energy gateway and the broker), or deliver it twice (a QoS 1
/// retransmission whose original was not actually lost).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PublishFate {
    /// Normal fan-out.
    Deliver,
    /// The packet never reaches the broker: no retained-store update,
    /// no delivery. Counted in [`BrokerStats::injected_drops`].
    Drop,
    /// The packet is processed twice back-to-back (duplicate QoS 1
    /// delivery). Counted once in [`BrokerStats::injected_dups`].
    Duplicate,
}

/// A fault-injection hook consulted once per PUBLISH, before any broker
/// state is touched. Deterministic harnesses install closures driven by
/// a seeded RNG. The hook is a single global sequence point even on the
/// sharded broker: it sees one call per publish, in submission order.
pub type FaultHook = Box<dyn FnMut(&str) -> PublishFate + Send>;

/// The broker: cheaply cloneable handle, safe to share across threads.
///
/// ```
/// use davide_mqtt::{Broker, QoS};
/// use bytes::Bytes;
///
/// let broker = Broker::default();
/// let mut agent = broker.connect("accounting");
/// agent.subscribe("davide/+/power/#", QoS::AtMostOnce).unwrap();
/// let gw = broker.connect("eg-node00");
/// let reached = gw
///     .publish("davide/node00/power/node", Bytes::from_static(b"1700"), QoS::AtMostOnce, false)
///     .unwrap();
/// assert_eq!(reached, 1);
/// assert_eq!(&agent.try_recv().unwrap().payload[..], b"1700");
/// ```
#[derive(Clone)]
pub struct Broker {
    shards: Arc<[Shard]>,
    /// Connection table, off the publish path entirely.
    clients: Arc<Mutex<HashMap<u64, ClientInfo>>>,
    stats: Arc<BrokerStats>,
    // Kept outside the shards so a hook can never deadlock against a
    // shard lock, and so the hook sees one global call sequence.
    fault: Arc<Mutex<Option<FaultHook>>>,
    fault_installed: Arc<AtomicBool>,
    obs_installed: Arc<AtomicBool>,
    /// Retained messages across all shards, maintained under shard
    /// locks so the obs gauge sees a consistent total.
    retained_total: Arc<AtomicUsize>,
    next_client: Arc<AtomicU64>,
    queue_depth: usize,
}

/// Default per-subscriber queue depth: sized for one second of decimated
/// EG samples (50 kS/s) so a briefly-stalled agent loses nothing.
pub const DEFAULT_QUEUE_DEPTH: usize = 65_536;

/// Default shard count: enough that the 16 concurrent publishers of the
/// E30 workload rarely collide, small enough that all-shard wildcard
/// subscriptions stay cheap to register.
pub const DEFAULT_SHARDS: usize = 8;

impl Default for Broker {
    fn default() -> Self {
        Self::new(DEFAULT_QUEUE_DEPTH)
    }
}

impl Broker {
    /// New broker with the given per-subscriber queue depth and the
    /// default shard count.
    pub fn new(queue_depth: usize) -> Self {
        Self::with_shards(queue_depth, DEFAULT_SHARDS)
    }

    /// New broker with an explicit shard count (1 reproduces the old
    /// single-lock broker exactly; differential tests rely on this).
    pub fn with_shards(queue_depth: usize, shards: usize) -> Self {
        assert!(queue_depth > 0);
        assert!(shards > 0);
        let shards: Vec<Shard> = (0..shards).map(|_| Shard::default()).collect();
        Broker {
            shards: shards.into(),
            clients: Arc::new(Mutex::new(HashMap::new())),
            stats: Arc::new(BrokerStats::default()),
            fault: Arc::new(Mutex::new(None)),
            fault_installed: Arc::new(AtomicBool::new(false)),
            obs_installed: Arc::new(AtomicBool::new(false)),
            retained_total: Arc::new(AtomicUsize::new(0)),
            next_client: Arc::new(AtomicU64::new(1)),
            queue_depth,
        }
    }

    /// Number of shards the publish path is split across.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Install (or clear) the broker's observability instruments; see
    /// [`BrokerObs`]. Internally one fork per shard.
    pub fn set_obs(&self, obs: Option<BrokerObs>) {
        match obs {
            Some(o) => {
                for shard in self.shards.iter().skip(1) {
                    *shard.obs.lock() = Some(o.fork());
                }
                *self.shards[0].obs.lock() = Some(o);
                self.obs_installed.store(true, Ordering::Release);
            }
            None => {
                self.obs_installed.store(false, Ordering::Release);
                for shard in self.shards.iter() {
                    *shard.obs.lock() = None;
                }
            }
        }
    }

    /// Install (or clear, with `None`) a fault-injection hook consulted
    /// once per PUBLISH with the topic; see [`PublishFate`]. The hook
    /// runs before the retained store or any subscriber queue is
    /// touched, so a dropped packet leaves no trace beyond the
    /// injected-drops counter.
    pub fn set_fault_hook(&self, hook: Option<FaultHook>) {
        let installed = hook.is_some();
        *self.fault.lock() = hook;
        self.fault_installed.store(installed, Ordering::Release);
    }

    /// The retained payload currently stored for `topic`, if any.
    /// Checkers use this to compare the broker's durable command state
    /// against what the plant actually applied.
    pub fn retained_get(&self, topic: &str) -> Option<Bytes> {
        let idx = shard_of_topic(topic, self.shards.len());
        self.shards[idx]
            .state
            .lock()
            .retained
            .get(topic)
            .map(|m| m.payload.clone())
    }

    /// Connect a client; returns its handle.
    pub fn connect(&self, client_id: impl Into<String>) -> super::client::Client {
        self.connect_with_depth(client_id, self.queue_depth)
    }

    /// Connect a client with an explicit queue depth instead of the
    /// broker default. Queue slots are allocated up front per client,
    /// so large fan-out populations size them per subscriber class: a
    /// global-wildcard auditor needs room for every publish in flight,
    /// an exact-match agent only for its own topic's.
    pub fn connect_with_depth(
        &self,
        client_id: impl Into<String>,
        queue_depth: usize,
    ) -> super::client::Client {
        let id = self.next_client.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(queue_depth);
        let client_id = client_id.into();
        self.clients.lock().insert(
            id,
            ClientInfo {
                sender: tx,
                client_id: client_id.clone(),
                filters: HashSet::new(),
                qos1: Arc::new(Qos1State::default()),
            },
        );
        super::client::Client::new(self.clone(), id, client_id, rx)
    }

    /// Shared statistics handle.
    pub fn stats(&self) -> &BrokerStats {
        &self.stats
    }

    /// Number of connected clients.
    pub fn client_count(&self) -> usize {
        self.clients.lock().len()
    }

    /// Number of retained messages held, across all shards.
    pub fn retained_count(&self) -> usize {
        self.retained_total.load(Ordering::Relaxed)
    }

    /// Number of live subscriptions (distinct client/filter pairs).
    pub fn subscription_count(&self) -> usize {
        self.clients.lock().values().map(|c| c.filters.len()).sum()
    }

    pub(crate) fn disconnect(&self, client: u64) {
        self.clients.lock().remove(&client);
        // Cold path: sweep every shard rather than replaying the
        // filter list, so stale entries can never survive.
        for shard in self.shards.iter() {
            shard.state.lock().trie.remove_client(client);
        }
    }

    pub(crate) fn subscribe(&self, client: u64, filter: &str, qos: QoS) -> Result<(), BrokerError> {
        validate_filter(filter)?;
        let (sender, qos1) = {
            let mut cl = self.clients.lock();
            let info = cl
                .get_mut(&client)
                .ok_or(BrokerError::UnknownClient(client))?;
            info.filters.insert(filter.to_string());
            (info.sender.clone(), info.qos1.clone())
        };
        let levels: Vec<&str> = filter.split('/').collect();
        let n = self.shards.len();
        // Per shard, the trie update and the retained snapshot happen
        // under one lock hold, so a concurrent retained publish is
        // either replayed or live-delivered — never both, since each
        // topic lives on exactly one shard.
        let mut matches: Vec<Message> = Vec::new();
        for idx in filter_shards(filter, n).iter(n) {
            let mut st = self.shards[idx].state.lock();
            // Replace any existing subscription by this client on the
            // filter.
            st.trie.remove(&levels, client);
            st.trie.insert(
                &levels,
                SubEntry {
                    client,
                    qos,
                    sender: sender.clone(),
                    qos1: qos1.clone(),
                },
            );
            matches.extend(
                st.retained
                    .values()
                    .filter(|m| filter_matches(filter, &m.topic))
                    .cloned(),
            );
        }
        // Replay retained messages matching the new filter, in topic
        // order — the per-shard maps iterate in per-process random
        // order, and replay order must not leak that nondeterminism to
        // sessions.
        matches.sort_unstable_by(|a, b| a.topic.cmp(&b.topic));
        for mut m in matches {
            m.retain = true;
            m.qos = m.qos.min(qos);
            match sender.try_send(m) {
                Ok(()) => {
                    self.stats.delivered.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    self.stats.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(())
    }

    pub(crate) fn unsubscribe(&self, client: u64, filter: &str) -> Result<(), BrokerError> {
        validate_filter(filter)?;
        if let Some(info) = self.clients.lock().get_mut(&client) {
            info.filters.remove(filter);
        }
        let levels: Vec<&str> = filter.split('/').collect();
        let n = self.shards.len();
        for idx in filter_shards(filter, n).iter(n) {
            self.shards[idx].state.lock().trie.remove(&levels, client);
        }
        Ok(())
    }

    /// Publish a message; returns the number of subscribers it reached.
    ///
    /// For QoS 1 the broker "acknowledges" by bumping the `acked`
    /// counter once the message is safely fanned out — the in-process
    /// equivalent of PUBACK. Subscribers that enabled QoS 1 tracking
    /// additionally get a packet id they must [ack](super::client::Client::ack).
    pub(crate) fn publish(
        &self,
        topic: &str,
        payload: Bytes,
        qos: QoS,
        retain: bool,
    ) -> Result<usize, BrokerError> {
        validate_topic(topic)?;
        let shard = &self.shards[shard_of_topic(topic, self.shards.len())];
        self.stats.published.fetch_add(1, Ordering::Relaxed);
        if self.obs_installed.load(Ordering::Acquire) {
            if let Some(o) = shard.obs.lock().as_mut() {
                o.on_publish(topic, &payload);
            }
        }

        // Fault injection: decide the packet's fate before touching any
        // broker state (the hook lock is never held together with a
        // shard lock).
        let fate = if self.fault_installed.load(Ordering::Acquire) {
            match self.fault.lock().as_mut() {
                Some(hook) => hook(topic),
                None => PublishFate::Deliver,
            }
        } else {
            PublishFate::Deliver
        };
        match fate {
            PublishFate::Deliver => {}
            PublishFate::Drop => {
                if let Some(o) = shard.obs.lock().as_mut() {
                    o.injected_drops.inc();
                }
                return Ok(0);
            }
            PublishFate::Duplicate => {
                if let Some(o) = shard.obs.lock().as_mut() {
                    o.injected_dups.inc();
                }
                let first = self.fan_out(shard, topic, &payload, qos, retain);
                self.fan_out(shard, topic, &payload, qos, retain);
                return Ok(first);
            }
        }
        Ok(self.fan_out(shard, topic, &payload, qos, retain))
    }

    /// Publish a batch of non-retained QoS 0 messages with one
    /// lock acquisition per run of same-shard topics.
    ///
    /// Per-publish semantics are preserved message by message — topic
    /// validation, `published` stats, [`BrokerObs::on_publish`], the
    /// fault hook's per-packet fate, delivery counting — but lock
    /// traffic is amortized: the fault hook is consulted once for the
    /// whole batch, and the obs/state locks are handed off only when
    /// consecutive messages hash to different shards. An EG batch
    /// carries one node's frames, which share a topic prefix and
    /// therefore a shard, so the common case is one lock pair per
    /// batch. Messages are fanned out in slice order.
    ///
    /// Returns the total number of subscriber deliveries across the
    /// batch. Errors on the first invalid topic, before any message is
    /// published.
    pub(crate) fn publish_batch(&self, msgs: &[(String, Bytes)]) -> Result<usize, BrokerError> {
        for (topic, _) in msgs {
            validate_topic(topic)?;
        }
        self.stats
            .published
            .fetch_add(msgs.len() as u64, Ordering::Relaxed);
        // One fault-hook lock: decide every packet's fate up front (the
        // hook must see one call per message, same as the loop form).
        let fates: Option<Vec<PublishFate>> = if self.fault_installed.load(Ordering::Acquire) {
            let mut guard = self.fault.lock();
            guard
                .as_mut()
                .map(|hook| msgs.iter().map(|(topic, _)| hook(topic)).collect())
        } else {
            None
        };
        let n = self.shards.len();
        // First pass, matching the old all-publishes-then-deliveries
        // order observable through the frame tracer: count every
        // message as published before any is fanned out.
        if self.obs_installed.load(Ordering::Acquire) {
            let mut held: Option<(usize, std::sync::MutexGuard<'_, Option<BrokerObs>>)> = None;
            for (topic, payload) in msgs {
                let idx = shard_of_topic(topic, n);
                if held.as_ref().map(|h| h.0) != Some(idx) {
                    // Release the previous guard before taking the next
                    // shard's: never hold two shards at once.
                    drop(held.take());
                    held = Some((idx, self.shards[idx].obs.lock()));
                }
                if let Some(o) = held.as_mut().and_then(|h| h.1.as_mut()) {
                    o.on_publish(topic, payload);
                }
            }
        }
        // Second pass: fan out, handing the shard's obs+state lock pair
        // off only when the shard changes.
        let mut reached = 0;
        let mut held: Option<(
            usize,
            std::sync::MutexGuard<'_, Option<BrokerObs>>,
            std::sync::MutexGuard<'_, ShardState>,
        )> = None;
        for (i, (topic, payload)) in msgs.iter().enumerate() {
            let idx = shard_of_topic(topic, n);
            if held.as_ref().map(|h| h.0) != Some(idx) {
                // Release the previous pair before taking the next
                // shard's: never hold two shards at once.
                drop(held.take());
                let shard = &self.shards[idx];
                let obs = shard.obs.lock();
                let st = shard.state.lock();
                held = Some((idx, obs, st));
            }
            let (_, obs_guard, st_guard) = held.as_mut().expect("guard pair just installed");
            let obs: &mut Option<BrokerObs> = obs_guard;
            let st: &mut ShardState = st_guard;
            match fates.as_ref().map_or(PublishFate::Deliver, |f| f[i]) {
                PublishFate::Deliver => {
                    reached += self.fan_out_locked(st, obs, topic, payload, QoS::AtMostOnce, false);
                }
                PublishFate::Drop => {
                    if let Some(o) = obs.as_mut() {
                        o.injected_drops.inc();
                    }
                }
                PublishFate::Duplicate => {
                    if let Some(o) = obs.as_mut() {
                        o.injected_dups.inc();
                    }
                    reached += self.fan_out_locked(st, obs, topic, payload, QoS::AtMostOnce, false);
                    self.fan_out_locked(st, obs, topic, payload, QoS::AtMostOnce, false);
                }
            }
        }
        Ok(reached)
    }

    /// One pass of retained-store update + subscriber fan-out on the
    /// topic's shard.
    fn fan_out(
        &self,
        shard: &Shard,
        topic: &str,
        payload: &Bytes,
        qos: QoS,
        retain: bool,
    ) -> usize {
        // Lock order within a shard: obs, then state (matches
        // publish_batch).
        let mut obs_guard = if self.obs_installed.load(Ordering::Acquire) {
            Some(shard.obs.lock())
        } else {
            None
        };
        let mut no_obs = None;
        let obs: &mut Option<BrokerObs> = match obs_guard.as_mut() {
            Some(g) => g,
            None => &mut no_obs,
        };
        let mut st = shard.state.lock();
        self.fan_out_locked(&mut st, obs, topic, payload, qos, retain)
    }

    /// The per-message fan-out body, with the shard's locks held.
    fn fan_out_locked(
        &self,
        st: &mut ShardState,
        obs: &mut Option<BrokerObs>,
        topic: &str,
        payload: &Bytes,
        qos: QoS,
        retain: bool,
    ) -> usize {
        if retain {
            if payload.is_empty() {
                // Empty retained payload clears the retained message.
                if st.retained.remove(topic).is_some() {
                    self.retained_total.fetch_sub(1, Ordering::Relaxed);
                }
            } else {
                let prev = st.retained.insert(
                    topic.to_string(),
                    Message {
                        topic: topic.to_string(),
                        payload: payload.clone(),
                        qos,
                        retain: true,
                        dup: false,
                        packet_id: None,
                    },
                );
                if prev.is_none() {
                    self.retained_total.fetch_add(1, Ordering::Relaxed);
                }
            }
            if let Some(o) = obs.as_mut() {
                o.on_retained(
                    topic,
                    !payload.is_empty(),
                    self.retained_total.load(Ordering::Relaxed),
                );
            }
        }

        let levels: Vec<&str> = topic.split('/').collect();
        // $-topics suppress wildcards at the root level only.
        let skip_wild_at_root = topic.starts_with('$');
        let mut reached = 0;
        st.trie
            .for_each_match(&levels, skip_wild_at_root, &mut |s| {
                // "Retain as published" (the MQTT 5 RAP behaviour):
                // live deliveries carry the publisher's retain flag so
                // bridges can preserve retained state downstream.
                let mut m = Message {
                    topic: topic.to_string(),
                    payload: payload.clone(),
                    qos: qos.min(s.qos),
                    retain,
                    dup: false,
                    packet_id: None,
                };
                // QoS 1 delivery tracking: assign a packet id while the
                // in-flight window has room; past it the delivery degrades
                // to untracked rather than blocking the publisher.
                if m.qos == QoS::AtLeastOnce && s.qos1.enabled.load(Ordering::Acquire) {
                    let mut q = s.qos1.inner.lock();
                    if q.unacked.len() < q.window {
                        let id = q.alloc_id();
                        m.packet_id = Some(id);
                        q.unacked.insert(
                            id,
                            Tracked {
                                msg: m.clone(),
                                retries: 0,
                            },
                        );
                    }
                }
                match s.sender.try_send(m) {
                    Ok(()) => {
                        reached += 1;
                        self.stats.delivered.fetch_add(1, Ordering::Relaxed);
                        if let Some(o) = obs.as_mut() {
                            o.on_deliver(topic, payload);
                        }
                    }
                    Err(e) => {
                        self.stats.dropped.fetch_add(1, Ordering::Relaxed);
                        if let Some(o) = obs.as_mut() {
                            o.dropped.inc();
                        }
                        // A full queue keeps the tracked slot (the
                        // redelivery sweep will retry); a disconnected
                        // subscriber releases it.
                        if let TrySendError::Disconnected(m) = e {
                            if let Some(id) = m.packet_id {
                                s.qos1.inner.lock().unacked.remove(&id);
                            }
                        }
                    }
                }
            });
        if qos == QoS::AtLeastOnce {
            self.stats.acked.fetch_add(1, Ordering::Relaxed);
        }
        reached
    }

    /// Turn on QoS 1 delivery tracking for a subscriber; see
    /// [`super::client::Client::enable_qos1_tracking`].
    pub(crate) fn qos1_enable(&self, client: u64, window: usize, max_retries: u32) -> bool {
        let cl = self.clients.lock();
        match cl.get(&client) {
            Some(info) => {
                {
                    let mut q = info.qos1.inner.lock();
                    q.window = window.max(1);
                    q.max_retries = max_retries;
                }
                info.qos1.enabled.store(true, Ordering::Release);
                true
            }
            None => false,
        }
    }

    /// Acknowledge a tracked delivery; returns whether the id was in
    /// flight.
    pub(crate) fn qos1_ack(&self, client: u64, packet_id: u16) -> bool {
        let cl = self.clients.lock();
        match cl.get(&client) {
            Some(info) => info.qos1.inner.lock().unacked.remove(&packet_id).is_some(),
            None => false,
        }
    }

    /// Number of tracked deliveries awaiting acknowledgement.
    pub(crate) fn qos1_unacked(&self, client: u64) -> usize {
        let cl = self.clients.lock();
        match cl.get(&client) {
            Some(info) => info.qos1.inner.lock().unacked.len(),
            None => 0,
        }
    }

    /// Re-send every unacknowledged tracked message to the subscriber
    /// with the DUP flag, in packet-id order. Messages past their retry
    /// budget are expired instead. Returns the number re-sent.
    pub(crate) fn qos1_redeliver(&self, client: u64) -> usize {
        let (sender, qos1) = {
            let cl = self.clients.lock();
            match cl.get(&client) {
                Some(info) => (info.sender.clone(), info.qos1.clone()),
                None => return 0,
            }
        };
        let mut q = qos1.inner.lock();
        let max = q.max_retries;
        let ids: Vec<u16> = q.unacked.keys().copied().collect();
        let mut resent = 0;
        for id in ids {
            enum Fate {
                Kept,
                Expired,
                Gone,
            }
            let fate = {
                let t = q.unacked.get_mut(&id).expect("id snapshot just taken");
                if t.retries >= max {
                    Fate::Expired
                } else {
                    let mut m = t.msg.clone();
                    m.dup = true;
                    match sender.try_send(m) {
                        Ok(()) => {
                            t.retries += 1;
                            resent += 1;
                            self.stats.redelivered.fetch_add(1, Ordering::Relaxed);
                            Fate::Kept
                        }
                        // Queue full: leave the slot untouched for the
                        // next sweep; no retry is charged.
                        Err(TrySendError::Full(_)) => Fate::Kept,
                        Err(TrySendError::Disconnected(_)) => Fate::Gone,
                    }
                }
            };
            match fate {
                Fate::Kept => {}
                Fate::Expired => {
                    q.unacked.remove(&id);
                    self.stats.expired.fetch_add(1, Ordering::Relaxed);
                }
                Fate::Gone => {
                    q.unacked.remove(&id);
                }
            }
        }
        resent
    }

    /// Look up a client's chosen id string (diagnostics).
    pub fn client_name(&self, client: u64) -> Option<String> {
        self.clients
            .lock()
            .get(&client)
            .map(|c| c.client_id.clone())
    }
}

/// A receiving endpoint handed to subscribers (re-export of the
/// crossbeam receiver so callers can `recv`, `try_recv`, iterate…).
pub type MessageReceiver = Receiver<Message>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;
    use std::time::Duration;

    fn payload(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn publish_subscribe_roundtrip() {
        let broker = Broker::default();
        let mut sub = broker.connect("agent");
        let publ = broker.connect("gateway");
        sub.subscribe("davide/+/power", QoS::AtMostOnce).unwrap();
        let n = publ
            .publish(
                "davide/node03/power",
                payload("1720"),
                QoS::AtMostOnce,
                false,
            )
            .unwrap();
        assert_eq!(n, 1);
        let m = sub.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(m.topic, "davide/node03/power");
        assert_eq!(&m.payload[..], b"1720");
    }

    #[test]
    fn fan_out_to_multiple_agents() {
        let broker = Broker::default();
        let publ = broker.connect("gateway");
        let mut subs: Vec<_> = (0..8)
            .map(|i| {
                let mut c = broker.connect(format!("agent{i}"));
                c.subscribe("davide/#", QoS::AtMostOnce).unwrap();
                c
            })
            .collect();
        let n = publ
            .publish("davide/node00/power", payload("p"), QoS::AtMostOnce, false)
            .unwrap();
        assert_eq!(n, 8);
        for s in &mut subs {
            assert!(s.try_recv().is_some());
        }
    }

    #[test]
    fn no_delivery_without_match() {
        let broker = Broker::default();
        let mut sub = broker.connect("agent");
        let publ = broker.connect("gateway");
        sub.subscribe("davide/+/temp", QoS::AtMostOnce).unwrap();
        let n = publ
            .publish("davide/node03/power", payload("x"), QoS::AtMostOnce, false)
            .unwrap();
        assert_eq!(n, 0);
        assert!(sub.try_recv().is_none());
    }

    #[test]
    fn retained_message_replayed_on_subscribe() {
        let broker = Broker::default();
        let publ = broker.connect("gateway");
        publ.publish("davide/node03/cap", payload("1500"), QoS::AtLeastOnce, true)
            .unwrap();
        assert_eq!(broker.retained_count(), 1);
        // Late subscriber still sees the value.
        let mut sub = broker.connect("late-agent");
        sub.subscribe("davide/+/cap", QoS::AtLeastOnce).unwrap();
        let m = sub.recv_timeout(Duration::from_secs(1)).unwrap();
        assert!(m.retain);
        assert_eq!(&m.payload[..], b"1500");
        // Clearing: empty retained payload.
        publ.publish("davide/node03/cap", Bytes::new(), QoS::AtMostOnce, true)
            .unwrap();
        assert_eq!(broker.retained_count(), 0);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let broker = Broker::default();
        let mut sub = broker.connect("agent");
        let publ = broker.connect("gateway");
        sub.subscribe("a/b", QoS::AtMostOnce).unwrap();
        publ.publish("a/b", payload("1"), QoS::AtMostOnce, false)
            .unwrap();
        sub.unsubscribe("a/b").unwrap();
        publ.publish("a/b", payload("2"), QoS::AtMostOnce, false)
            .unwrap();
        assert_eq!(&sub.try_recv().unwrap().payload[..], b"1");
        assert!(sub.try_recv().is_none());
    }

    #[test]
    fn disconnect_cleans_up() {
        let broker = Broker::default();
        let mut sub = broker.connect("agent");
        sub.subscribe("a/#", QoS::AtMostOnce).unwrap();
        assert_eq!(broker.client_count(), 1);
        assert_eq!(broker.subscription_count(), 1);
        sub.disconnect();
        assert_eq!(broker.client_count(), 0);
        assert_eq!(broker.subscription_count(), 0);
        let publ = broker.connect("gateway");
        let n = publ
            .publish("a/b", payload("x"), QoS::AtMostOnce, false)
            .unwrap();
        assert_eq!(n, 0, "no stale subscriptions");
    }

    #[test]
    fn slow_subscriber_drops_do_not_block_publisher() {
        let broker = Broker::new(4); // tiny queue
        let mut sub = broker.connect("slow-agent");
        let publ = broker.connect("gateway");
        sub.subscribe("t", QoS::AtMostOnce).unwrap();
        for i in 0..10 {
            publ.publish("t", payload(&i.to_string()), QoS::AtMostOnce, false)
                .unwrap();
        }
        let delivered = broker.stats().delivered.load(Ordering::Relaxed);
        let dropped = broker.stats().dropped.load(Ordering::Relaxed);
        assert_eq!(delivered, 4);
        assert_eq!(dropped, 6);
        // The slow consumer still gets the first 4.
        let got: Vec<_> = std::iter::from_fn(|| sub.try_recv()).collect();
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn qos_downgraded_to_subscription_qos() {
        let broker = Broker::default();
        let mut sub = broker.connect("agent");
        let publ = broker.connect("gateway");
        sub.subscribe("t", QoS::AtMostOnce).unwrap();
        publ.publish("t", payload("x"), QoS::AtLeastOnce, false)
            .unwrap();
        let m = sub.try_recv().unwrap();
        assert_eq!(m.qos, QoS::AtMostOnce, "min(pub, sub)");
        assert_eq!(broker.stats().acked.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn sys_topics_hidden_from_hash() {
        let broker = Broker::default();
        let mut wild = broker.connect("wild");
        let mut explicit = broker.connect("explicit");
        wild.subscribe("#", QoS::AtMostOnce).unwrap();
        explicit.subscribe("$SYS/#", QoS::AtMostOnce).unwrap();
        let publ = broker.connect("broker-self");
        publ.publish("$SYS/broker/load", payload("0.5"), QoS::AtMostOnce, false)
            .unwrap();
        assert!(wild.try_recv().is_none(), "# must not see $SYS");
        assert!(explicit.try_recv().is_some());
    }

    #[test]
    fn resubscribe_does_not_duplicate() {
        let broker = Broker::default();
        let mut sub = broker.connect("agent");
        let publ = broker.connect("gateway");
        sub.subscribe("t", QoS::AtMostOnce).unwrap();
        sub.subscribe("t", QoS::AtLeastOnce).unwrap(); // replace
        let n = publ
            .publish("t", payload("x"), QoS::AtLeastOnce, false)
            .unwrap();
        assert_eq!(n, 1, "single delivery after re-subscribe");
        assert_eq!(sub.try_recv().unwrap().qos, QoS::AtLeastOnce);
        assert_eq!(broker.subscription_count(), 1, "one filter, not two");
    }

    #[test]
    fn fault_hook_drops_and_duplicates() {
        let broker = Broker::default();
        // Fault-injection counts surface through the metrics registry.
        let (hub, _clock) = ObsHub::manual();
        broker.set_obs(Some(BrokerObs::new(&hub, None)));
        let mut sub = broker.connect("agent");
        let publ = broker.connect("gateway");
        sub.subscribe("davide/#", QoS::AtMostOnce).unwrap();
        // Drop everything under davide/node00, duplicate node01.
        broker.set_fault_hook(Some(Box::new(|topic: &str| {
            if topic.starts_with("davide/node00") {
                PublishFate::Drop
            } else if topic.starts_with("davide/node01") {
                PublishFate::Duplicate
            } else {
                PublishFate::Deliver
            }
        })));
        let n = publ
            .publish("davide/node00/power", payload("1"), QoS::AtMostOnce, true)
            .unwrap();
        assert_eq!(n, 0, "dropped before fan-out");
        assert_eq!(broker.retained_count(), 0, "drop precedes retained store");
        publ.publish("davide/node01/power", payload("2"), QoS::AtMostOnce, false)
            .unwrap();
        publ.publish("davide/node02/power", payload("3"), QoS::AtMostOnce, false)
            .unwrap();
        let got: Vec<_> = std::iter::from_fn(|| sub.try_recv()).collect();
        assert_eq!(got.len(), 3, "one dup + one normal");
        assert_eq!(&got[0].payload[..], b"2");
        assert_eq!(&got[1].payload[..], b"2");
        assert_eq!(&got[2].payload[..], b"3");
        let drops = hub
            .registry
            .find_counter("mqtt_injected_drops_total")
            .unwrap();
        let dups = hub
            .registry
            .find_counter("mqtt_injected_dups_total")
            .unwrap();
        assert_eq!(drops.get(), 1);
        assert_eq!(dups.get(), 1);
        // Clearing the hook restores normal delivery.
        broker.set_fault_hook(None);
        let n = publ
            .publish("davide/node00/power", payload("4"), QoS::AtMostOnce, false)
            .unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn per_topic_instruments_track_published_delivered_retained() {
        let broker = Broker::default();
        let (hub, _clock) = ObsHub::manual();
        broker.set_obs(Some(BrokerObs::new(&hub, None)));
        let mut sub = broker.connect("agent");
        let publ = broker.connect("gateway");
        sub.subscribe("davide/+/power/#", QoS::AtMostOnce).unwrap();
        for _ in 0..3 {
            publ.publish(
                "davide/node00/power/node",
                payload("1700"),
                QoS::AtMostOnce,
                false,
            )
            .unwrap();
        }
        publ.publish(
            "davide/node00/ctl/speed",
            payload("0.9"),
            QoS::AtMostOnce,
            true,
        )
        .unwrap();
        let r = &hub.registry;
        let pt = |name: &str| r.find_counter(name).map(|c| c.get());
        assert_eq!(
            pt("mqtt_topic_published{topic=\"davide/node00/power/node\"}"),
            Some(3)
        );
        assert_eq!(
            pt("mqtt_topic_delivered{topic=\"davide/node00/power/node\"}"),
            Some(3)
        );
        assert_eq!(
            pt("mqtt_topic_published{topic=\"davide/node00/ctl/speed\"}"),
            Some(1)
        );
        // Retained gauge flips with the retained store.
        let text = r.render_text();
        assert!(text.contains("mqtt_topic_retained{topic=\"davide/node00/ctl/speed\"} 1"));
        assert!(text.contains("mqtt_retained_messages 1"));
        publ.publish(
            "davide/node00/ctl/speed",
            Bytes::new(),
            QoS::AtMostOnce,
            true,
        )
        .unwrap();
        let text = r.render_text();
        assert!(text.contains("mqtt_topic_retained{topic=\"davide/node00/ctl/speed\"} 0"));
        assert!(text.contains("mqtt_retained_messages 0"));
        // Obs self-telemetry topics never mint per-topic series.
        publ.publish(
            "davide/obs/self/some_metric",
            payload("1"),
            QoS::AtMostOnce,
            false,
        )
        .unwrap();
        assert_eq!(
            pt("mqtt_topic_published{topic=\"davide/obs/self/some_metric\"}"),
            None
        );
        // Global counters still see everything.
        assert_eq!(r.find_counter("mqtt_published_total").unwrap().get(), 6);
    }

    #[test]
    fn retained_get_reads_store() {
        let broker = Broker::default();
        let publ = broker.connect("ctl");
        assert_eq!(broker.retained_get("davide/node00/ctl/speed"), None);
        publ.publish(
            "davide/node00/ctl/speed",
            payload("0.8589"),
            QoS::AtLeastOnce,
            true,
        )
        .unwrap();
        assert_eq!(
            broker.retained_get("davide/node00/ctl/speed").as_deref(),
            Some(&b"0.8589"[..])
        );
        // Empty retained payload clears the slot.
        publ.publish(
            "davide/node00/ctl/speed",
            Bytes::new(),
            QoS::AtMostOnce,
            true,
        )
        .unwrap();
        assert_eq!(broker.retained_get("davide/node00/ctl/speed"), None);
    }

    #[test]
    fn publish_batch_matches_publish_loop() {
        let broker = Broker::default();
        let mut sub = broker.connect("agent");
        sub.subscribe("davide/+/power/#", QoS::AtMostOnce).unwrap();
        let publ = broker.connect("gateway");
        let batch: Vec<(String, Bytes)> = (0..5)
            .map(|i| {
                (
                    format!("davide/node0{i}/power/node"),
                    payload(&i.to_string()),
                )
            })
            .collect();
        let reached = publ.publish_batch(&batch).unwrap();
        assert_eq!(reached, 5);
        let got = sub.drain();
        assert_eq!(got.len(), 5);
        // Delivery is in slice order with per-message semantics intact.
        for (i, m) in got.iter().enumerate() {
            assert_eq!(m.topic, batch[i].0);
            assert_eq!(m.payload, batch[i].1);
            assert_eq!(m.qos, QoS::AtMostOnce);
            assert!(!m.retain);
        }
        assert_eq!(broker.stats().published.load(Ordering::Relaxed), 5);
        assert_eq!(broker.stats().delivered.load(Ordering::Relaxed), 5);
        // An invalid topic fails the whole batch up front.
        assert!(publ
            .publish_batch(&[("bad/#/topic".to_string(), Bytes::new())])
            .is_err());
    }

    #[test]
    fn publish_batch_honours_fault_hook_per_message() {
        let broker = Broker::default();
        let mut sub = broker.connect("agent");
        sub.subscribe("davide/#", QoS::AtMostOnce).unwrap();
        broker.set_fault_hook(Some(Box::new(|topic: &str| {
            if topic.contains("node00") {
                PublishFate::Drop
            } else if topic.contains("node01") {
                PublishFate::Duplicate
            } else {
                PublishFate::Deliver
            }
        })));
        let publ = broker.connect("gateway");
        let batch: Vec<(String, Bytes)> = (0..3)
            .map(|i| (format!("davide/node0{i}/power/node"), payload("x")))
            .collect();
        // Drop counts 0, duplicate counts its first fan-out, deliver 1.
        let reached = publ.publish_batch(&batch).unwrap();
        assert_eq!(reached, 2);
        let got = sub.drain();
        let topics: Vec<&str> = got.iter().map(|m| m.topic.as_str()).collect();
        assert_eq!(
            topics,
            [
                "davide/node01/power/node",
                "davide/node01/power/node",
                "davide/node02/power/node"
            ]
        );
    }

    #[test]
    fn concurrent_publishers() {
        let broker = Broker::default();
        let mut sub = broker.connect("agent");
        sub.subscribe("davide/#", QoS::AtMostOnce).unwrap();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let b = broker.clone();
                std::thread::spawn(move || {
                    let c = b.connect(format!("gw{t}"));
                    for i in 0..250 {
                        c.publish(
                            &format!("davide/node{t}/s{i}"),
                            Bytes::new(),
                            QoS::AtMostOnce,
                            false,
                        )
                        .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mut count = 0;
        while sub.try_recv().is_some() {
            count += 1;
        }
        assert_eq!(count, 1000);
    }

    /// Run the same single-threaded pub/sub script against two brokers
    /// and require bit-identical delivery sequences per subscriber.
    fn delivery_script(broker: &Broker) -> Vec<Vec<Message>> {
        let mut exact = broker.connect("exact");
        let mut per_node = broker.connect("per-node");
        let mut global = broker.connect("global");
        let publ = broker.connect("gateway");
        // Retained state laid down before any subscription.
        publ.publish("davide/node01/cap", payload("1500"), QoS::AtMostOnce, true)
            .unwrap();
        publ.publish("davide/node02/cap", payload("1600"), QoS::AtMostOnce, true)
            .unwrap();
        exact
            .subscribe("davide/node01/power/cpu", QoS::AtMostOnce)
            .unwrap();
        per_node
            .subscribe("davide/node01/#", QoS::AtMostOnce)
            .unwrap();
        global.subscribe("davide/+/cap", QoS::AtMostOnce).unwrap();
        global
            .subscribe("davide/+/power/#", QoS::AtMostOnce)
            .unwrap();
        for i in 0..4 {
            for node in ["node01", "node02", "node03"] {
                publ.publish(
                    &format!("davide/{node}/power/cpu"),
                    payload(&format!("{i}")),
                    QoS::AtMostOnce,
                    false,
                )
                .unwrap();
            }
        }
        let batch: Vec<(String, Bytes)> = (0..6)
            .map(|i| (format!("davide/node0{}/power/gpu", i % 3 + 1), payload("b")))
            .collect();
        publ.publish_batch(&batch).unwrap();
        vec![exact.drain(), per_node.drain(), global.drain()]
    }

    #[test]
    fn shard_count_does_not_change_delivery() {
        let single = delivery_script(&Broker::with_shards(1024, 1));
        for shards in [2, 3, 8] {
            let sharded = delivery_script(&Broker::with_shards(1024, shards));
            assert_eq!(single, sharded, "divergence at {shards} shards");
        }
    }

    #[test]
    fn qos1_tracked_delivery_ack_and_redeliver() {
        let broker = Broker::default();
        let mut sub = broker.connect("bridge");
        sub.enable_qos1_tracking(DEFAULT_QOS1_WINDOW, DEFAULT_QOS1_RETRIES);
        sub.subscribe("davide/site/#", QoS::AtLeastOnce).unwrap();
        let publ = broker.connect("gateway");
        publ.publish("davide/site/agg", payload("x"), QoS::AtLeastOnce, false)
            .unwrap();
        let m = sub.try_recv().unwrap();
        let id = m.packet_id.expect("tracked delivery carries an id");
        assert!(!m.dup);
        assert_eq!(sub.unacked_count(), 1);
        // Redelivery re-sends the same message with DUP set.
        assert_eq!(sub.redeliver_unacked(), 1);
        let dup = sub.try_recv().unwrap();
        assert!(dup.dup);
        assert_eq!(dup.packet_id, Some(id));
        assert_eq!(dup.payload, m.payload);
        assert_eq!(broker.stats().redelivered.load(Ordering::Relaxed), 1);
        // A (late) ack clears the slot; nothing left to redeliver.
        assert!(sub.ack(id));
        assert_eq!(sub.unacked_count(), 0);
        assert_eq!(sub.redeliver_unacked(), 0);
        assert!(!sub.ack(id), "double-ack is a no-op");
    }

    #[test]
    fn qos1_window_bounds_in_flight() {
        let broker = Broker::default();
        let mut sub = broker.connect("bridge");
        sub.enable_qos1_tracking(2, DEFAULT_QOS1_RETRIES);
        sub.subscribe("t/#", QoS::AtLeastOnce).unwrap();
        let publ = broker.connect("gw");
        for i in 0..4 {
            publ.publish(&format!("t/{i}"), payload("x"), QoS::AtLeastOnce, false)
                .unwrap();
        }
        let got = sub.drain();
        assert_eq!(got.len(), 4, "overflow degrades, never blocks");
        let tracked: Vec<_> = got.iter().filter(|m| m.packet_id.is_some()).collect();
        assert_eq!(tracked.len(), 2, "window caps tracked deliveries");
        assert_eq!(sub.unacked_count(), 2);
        // Acking frees slots for new tracked deliveries.
        for m in tracked {
            assert!(sub.ack(m.packet_id.unwrap()));
        }
        publ.publish("t/5", payload("x"), QoS::AtLeastOnce, false)
            .unwrap();
        assert!(sub.try_recv().unwrap().packet_id.is_some());
    }

    #[test]
    fn qos1_expiry_after_max_retries() {
        let broker = Broker::default();
        let mut sub = broker.connect("bridge");
        sub.enable_qos1_tracking(8, 1);
        sub.subscribe("t", QoS::AtLeastOnce).unwrap();
        let publ = broker.connect("gw");
        publ.publish("t", payload("x"), QoS::AtLeastOnce, false)
            .unwrap();
        assert_eq!(sub.redeliver_unacked(), 1, "first retry allowed");
        assert_eq!(sub.redeliver_unacked(), 0, "budget spent: expired");
        assert_eq!(sub.unacked_count(), 0);
        assert_eq!(broker.stats().expired.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn qos0_subscriber_never_tracked() {
        let broker = Broker::default();
        let mut sub = broker.connect("agent");
        sub.enable_qos1_tracking(8, 3);
        sub.subscribe("t", QoS::AtMostOnce).unwrap();
        let publ = broker.connect("gw");
        publ.publish("t", payload("x"), QoS::AtLeastOnce, false)
            .unwrap();
        let m = sub.try_recv().unwrap();
        assert_eq!(m.qos, QoS::AtMostOnce);
        assert_eq!(m.packet_id, None, "QoS 0 delivery is untracked");
        assert_eq!(sub.unacked_count(), 0);
    }
}
