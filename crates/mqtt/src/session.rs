//! Protocol-level client session: the state machine a networked MQTT
//! client runs over the wire codec.
//!
//! The in-process broker ([`crate::broker`]) is what the DAVIDE stack
//! uses at runtime; this module makes the implementation protocol-true
//! end to end: a [`Session`] consumes inbound [`Packet`]s and emits the
//! outbound packets the spec requires — CONNECT/CONNACK handshake,
//! SUBSCRIBE/SUBACK bookkeeping, QoS 1 PUBLISH with packet-id
//! allocation, PUBACK handling, retransmission with the DUP flag, and
//! keep-alive PINGREQ scheduling.

use crate::codec::{Packet, QoS};
use bytes::Bytes;
use davide_obs::{Counter, MetricsRegistry};
use std::collections::{HashMap, VecDeque};

/// Session lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// CONNECT sent, waiting for CONNACK.
    Connecting,
    /// CONNACK accepted.
    Connected,
    /// Broker refused the connection or we disconnected.
    Closed,
}

/// Application-level events surfaced by the session.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionEvent {
    /// Connection accepted (`session_present` from CONNACK).
    Connected {
        /// Broker-side session state existed.
        session_present: bool,
    },
    /// Connection refused with the broker's return code.
    Refused(u8),
    /// A subscription was acknowledged with the granted QoS codes.
    Subscribed {
        /// SUBSCRIBE packet id.
        packet_id: u16,
        /// Granted QoS (0x80 = failure) per filter.
        granted: Vec<u8>,
    },
    /// An application message arrived.
    Message {
        /// Topic it was published on.
        topic: String,
        /// Payload bytes.
        payload: Bytes,
        /// Delivery QoS.
        qos: QoS,
    },
    /// A QoS 1 publish completed (PUBACK received).
    PublishAcked(u16),
    /// The broker answered our PINGREQ.
    Pong,
}

/// Session-side observability counters: QoS 1 reliability behaviour
/// (retransmissions, expiries, acks) that the broker can't see.
#[derive(Debug, Clone)]
pub struct SessionObs {
    publishes: Counter,
    retransmits: Counter,
    expired: Counter,
    acks: Counter,
    pings: Counter,
}

impl SessionObs {
    /// Session instruments registered in `registry`; shared across all
    /// sessions of one deployment (the counters aggregate).
    pub fn new(registry: &MetricsRegistry) -> Self {
        SessionObs {
            publishes: registry.counter("mqtt_session_publish_total"),
            retransmits: registry.counter("mqtt_session_retransmit_total"),
            expired: registry.counter("mqtt_session_expired_total"),
            acks: registry.counter("mqtt_session_ack_total"),
            pings: registry.counter("mqtt_session_ping_total"),
        }
    }
}

/// An in-flight QoS 1 message awaiting PUBACK.
#[derive(Debug, Clone)]
struct InFlight {
    topic: String,
    payload: Bytes,
    retain: bool,
    sent_at_s: f64,
    retries: u32,
}

/// A QoS 1 publish deferred because the in-flight window was full.
#[derive(Debug, Clone)]
struct PendingPublish {
    topic: String,
    payload: Bytes,
    retain: bool,
}

/// Default bound on unacked QoS 1 publishes per session; publishes past
/// it queue until PUBACKs free window slots.
pub const DEFAULT_MAX_IN_FLIGHT: usize = 32;

/// Client-side MQTT session state machine.
///
/// Time is passed in explicitly (`now_s`) so the session is fully
/// deterministic and testable without a wall clock.
#[derive(Debug)]
pub struct Session {
    /// Client identifier used in CONNECT.
    pub client_id: String,
    /// Keep-alive interval, seconds.
    pub keep_alive_s: f64,
    /// Retransmission timeout for unacked QoS 1 publishes, seconds.
    pub retransmit_after_s: f64,
    /// Give up on a publish after this many retransmissions.
    pub max_retries: u32,
    /// Bound on unacked QoS 1 publishes; [`Session::try_publish`]
    /// queues past it.
    pub max_in_flight: usize,
    state: SessionState,
    next_packet_id: u16,
    in_flight: HashMap<u16, InFlight>,
    pending: VecDeque<PendingPublish>,
    last_activity_s: f64,
    ping_outstanding: bool,
    obs: Option<SessionObs>,
}

impl Session {
    /// New, unconnected session.
    pub fn new(client_id: impl Into<String>, keep_alive_s: f64) -> Self {
        Session {
            client_id: client_id.into(),
            keep_alive_s,
            retransmit_after_s: 5.0,
            max_retries: 3,
            max_in_flight: DEFAULT_MAX_IN_FLIGHT,
            state: SessionState::Connecting,
            next_packet_id: 1,
            in_flight: HashMap::new(),
            pending: VecDeque::new(),
            last_activity_s: 0.0,
            ping_outstanding: false,
            obs: None,
        }
    }

    /// Install (or clear) session observability counters.
    pub fn set_obs(&mut self, obs: Option<SessionObs>) {
        self.obs = obs;
    }

    /// Current state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// Unacked QoS 1 publishes.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// QoS 1 publishes queued behind a full in-flight window.
    pub fn pending_publish_count(&self) -> usize {
        self.pending.len()
    }

    /// The CONNECT packet opening the session.
    pub fn connect_packet(&mut self, now_s: f64, clean_session: bool) -> Packet {
        self.last_activity_s = now_s;
        Packet::Connect {
            client_id: self.client_id.clone(),
            keep_alive: self.keep_alive_s as u16,
            clean_session,
        }
    }

    /// Allocate the next packet identifier (non-zero, wrapping).
    fn alloc_packet_id(&mut self) -> u16 {
        loop {
            let id = self.next_packet_id;
            self.next_packet_id = self.next_packet_id.wrapping_add(1).max(1);
            if !self.in_flight.contains_key(&id) {
                return id;
            }
        }
    }

    /// Build a SUBSCRIBE packet.
    pub fn subscribe_packet(&mut self, filters: Vec<(String, QoS)>) -> Packet {
        let packet_id = self.alloc_packet_id();
        Packet::Subscribe { packet_id, filters }
    }

    /// Build a PUBLISH packet; QoS 1 messages enter the in-flight table
    /// until a matching PUBACK arrives.
    pub fn publish_packet(
        &mut self,
        now_s: f64,
        topic: &str,
        payload: Bytes,
        qos: QoS,
        retain: bool,
    ) -> Packet {
        self.last_activity_s = now_s;
        if let Some(o) = &self.obs {
            o.publishes.inc();
        }
        let packet_id = if qos == QoS::AtLeastOnce {
            let id = self.alloc_packet_id();
            self.in_flight.insert(
                id,
                InFlight {
                    topic: topic.to_string(),
                    payload: payload.clone(),
                    retain,
                    sent_at_s: now_s,
                    retries: 0,
                },
            );
            Some(id)
        } else {
            None
        };
        Packet::Publish {
            topic: topic.to_string(),
            payload,
            qos,
            retain,
            dup: false,
            packet_id,
        }
    }

    /// Window-respecting publish: like [`Session::publish_packet`], but
    /// a QoS 1 publish that would exceed [`Session::max_in_flight`] is
    /// queued instead and `None` is returned — it goes out later, from
    /// [`Session::handle`]'s PUBACK response slot or [`Session::poll`],
    /// once acknowledgements free window slots. QoS 0 publishes are
    /// never queued.
    pub fn try_publish(
        &mut self,
        now_s: f64,
        topic: &str,
        payload: Bytes,
        qos: QoS,
        retain: bool,
    ) -> Option<Packet> {
        if qos == QoS::AtLeastOnce && self.in_flight.len() >= self.max_in_flight {
            self.pending.push_back(PendingPublish {
                topic: topic.to_string(),
                payload,
                retain,
            });
            return None;
        }
        Some(self.publish_packet(now_s, topic, payload, qos, retain))
    }

    /// Pop the next deferred publish into the in-flight window. Must
    /// only be called with room in the window.
    fn next_pending_publish(&mut self, now_s: f64) -> Option<Packet> {
        let p = self.pending.pop_front()?;
        debug_assert!(self.in_flight.len() < self.max_in_flight);
        Some(self.publish_packet(now_s, &p.topic, p.payload, QoS::AtLeastOnce, p.retain))
    }

    /// Consume one inbound packet; returns the event it produced (if
    /// any) and any immediate response packet the spec requires.
    pub fn handle(&mut self, now_s: f64, packet: Packet) -> (Option<SessionEvent>, Option<Packet>) {
        match packet {
            Packet::ConnAck {
                session_present,
                code,
            } => {
                if code == 0 {
                    self.state = SessionState::Connected;
                    (Some(SessionEvent::Connected { session_present }), None)
                } else {
                    self.state = SessionState::Closed;
                    (Some(SessionEvent::Refused(code)), None)
                }
            }
            Packet::SubAck {
                packet_id,
                return_codes,
            } => (
                Some(SessionEvent::Subscribed {
                    packet_id,
                    granted: return_codes,
                }),
                None,
            ),
            Packet::Publish {
                topic,
                payload,
                qos,
                packet_id,
                ..
            } => {
                // QoS 1 inbound requires a PUBACK.
                let response = match (qos, packet_id) {
                    (QoS::AtLeastOnce, Some(id)) => Some(Packet::PubAck { packet_id: id }),
                    _ => None,
                };
                (
                    Some(SessionEvent::Message {
                        topic,
                        payload,
                        qos,
                    }),
                    response,
                )
            }
            Packet::PubAck { packet_id } => {
                self.last_activity_s = now_s;
                if self.in_flight.remove(&packet_id).is_some() {
                    if let Some(o) = &self.obs {
                        o.acks.inc();
                    }
                    // The freed window slot immediately admits the next
                    // deferred publish, if any.
                    let next = self.next_pending_publish(now_s);
                    (Some(SessionEvent::PublishAcked(packet_id)), next)
                } else {
                    // Duplicate or stale ack: ignore per spec.
                    (None, None)
                }
            }
            Packet::PingResp => {
                self.ping_outstanding = false;
                self.last_activity_s = now_s;
                (Some(SessionEvent::Pong), None)
            }
            Packet::Disconnect => {
                self.state = SessionState::Closed;
                (None, None)
            }
            // Server-side packets a client should never receive; ignore.
            _ => (None, None),
        }
    }

    /// Periodic housekeeping: retransmit overdue QoS 1 publishes (with
    /// the DUP flag) and emit a PINGREQ when the keep-alive window is
    /// about to lapse. Returns the packets to send now.
    pub fn poll(&mut self, now_s: f64) -> Vec<Packet> {
        let mut out = Vec::new();
        if self.state != SessionState::Connected {
            return out;
        }
        // Retransmissions.
        let overdue: Vec<u16> = self
            .in_flight
            .iter()
            .filter(|(_, f)| now_s - f.sent_at_s >= self.retransmit_after_s)
            .map(|(&id, _)| id)
            .collect();
        for id in overdue {
            let retries = self.in_flight[&id].retries;
            if retries >= self.max_retries {
                // Drop: deliverability is the transport's problem now.
                self.in_flight.remove(&id);
                if let Some(o) = &self.obs {
                    o.expired.inc();
                }
                continue;
            }
            let f = self.in_flight.get_mut(&id).expect("present");
            if let Some(o) = &self.obs {
                o.retransmits.inc();
            }
            f.retries += 1;
            f.sent_at_s = now_s;
            out.push(Packet::Publish {
                topic: f.topic.clone(),
                payload: f.payload.clone(),
                qos: QoS::AtLeastOnce,
                retain: f.retain,
                dup: true,
                packet_id: Some(id),
            });
        }
        // Drain deferred publishes into whatever window room expiries
        // (or acks handled since the last poll) have opened up.
        while self.in_flight.len() < self.max_in_flight {
            match self.next_pending_publish(now_s) {
                Some(p) => out.push(p),
                None => break,
            }
        }
        // Keep-alive.
        if !self.ping_outstanding && now_s - self.last_activity_s >= self.keep_alive_s * 0.75 {
            self.ping_outstanding = true;
            self.last_activity_s = now_s;
            if let Some(o) = &self.obs {
                o.pings.inc();
            }
            out.push(Packet::PingReq);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn connected_session() -> Session {
        let mut s = Session::new("eg-node00", 60.0);
        let _ = s.connect_packet(0.0, true);
        let (ev, _) = s.handle(
            0.1,
            Packet::ConnAck {
                session_present: false,
                code: 0,
            },
        );
        assert_eq!(
            ev,
            Some(SessionEvent::Connected {
                session_present: false
            })
        );
        s
    }

    #[test]
    fn handshake_accept_and_refuse() {
        let s = connected_session();
        assert_eq!(s.state(), SessionState::Connected);

        let mut refused = Session::new("x", 60.0);
        let _ = refused.connect_packet(0.0, true);
        let (ev, _) = refused.handle(
            0.1,
            Packet::ConnAck {
                session_present: false,
                code: 5,
            },
        );
        assert_eq!(ev, Some(SessionEvent::Refused(5)));
        assert_eq!(refused.state(), SessionState::Closed);
    }

    #[test]
    fn qos1_publish_lifecycle() {
        let mut s = connected_session();
        let pkt = s.publish_packet(
            1.0,
            "davide/node00/power/node",
            Bytes::from_static(b"x"),
            QoS::AtLeastOnce,
            false,
        );
        let id = match pkt {
            Packet::Publish {
                packet_id: Some(id),
                dup: false,
                ..
            } => id,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(s.in_flight_count(), 1);
        let (ev, resp) = s.handle(1.2, Packet::PubAck { packet_id: id });
        assert_eq!(ev, Some(SessionEvent::PublishAcked(id)));
        assert!(resp.is_none());
        assert_eq!(s.in_flight_count(), 0);
        // A duplicate ack is silently ignored.
        let (ev, _) = s.handle(1.3, Packet::PubAck { packet_id: id });
        assert!(ev.is_none());
    }

    #[test]
    fn retransmission_sets_dup_and_gives_up() {
        let mut s = connected_session();
        s.retransmit_after_s = 1.0;
        s.max_retries = 2;
        let _ = s.publish_packet(0.0, "t", Bytes::from_static(b"p"), QoS::AtLeastOnce, false);
        // First retransmit.
        let out = s.poll(1.5);
        assert_eq!(out.len(), 1);
        assert!(matches!(&out[0], Packet::Publish { dup: true, .. }));
        // Second retransmit.
        let out = s.poll(3.0);
        assert_eq!(out.len(), 1);
        // Exceeds max_retries → dropped.
        let out = s.poll(4.5);
        assert!(out.is_empty());
        assert_eq!(s.in_flight_count(), 0);
    }

    #[test]
    fn late_puback_after_dup_retransmit_clears_slot() {
        let mut s = connected_session();
        s.retransmit_after_s = 1.0;
        let pkt = s.publish_packet(0.0, "t", Bytes::from_static(b"p"), QoS::AtLeastOnce, false);
        let id = match pkt {
            Packet::Publish {
                packet_id: Some(id),
                ..
            } => id,
            other => panic!("unexpected {other:?}"),
        };
        // Past the retransmission timeout the publish goes out again,
        // same packet id, DUP set.
        let out = s.poll(1.5);
        assert_eq!(out.len(), 1);
        match &out[0] {
            Packet::Publish { dup, packet_id, .. } => {
                assert!(*dup, "retransmission must set DUP");
                assert_eq!(*packet_id, Some(id), "same id on retransmit");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(s.in_flight_count(), 1, "still unacked");
        // The PUBACK arrives late — after the retransmit — and must
        // still clear the in-flight slot exactly once.
        let (ev, resp) = s.handle(2.0, Packet::PubAck { packet_id: id });
        assert_eq!(ev, Some(SessionEvent::PublishAcked(id)));
        assert!(resp.is_none());
        assert_eq!(s.in_flight_count(), 0);
        // No ghost retransmissions afterwards.
        assert!(s
            .poll(10.0)
            .iter()
            .all(|p| !matches!(p, Packet::Publish { .. })));
    }

    #[test]
    fn in_flight_window_queues_and_drains() {
        let mut s = connected_session();
        s.max_in_flight = 2;
        let p1 = s.try_publish(0.0, "a", Bytes::from_static(b"1"), QoS::AtLeastOnce, false);
        let p2 = s.try_publish(0.0, "b", Bytes::from_static(b"2"), QoS::AtLeastOnce, false);
        assert!(p1.is_some() && p2.is_some());
        // Third exceeds the window: deferred, not sent.
        let p3 = s.try_publish(0.0, "c", Bytes::from_static(b"3"), QoS::AtLeastOnce, false);
        assert!(p3.is_none());
        assert_eq!(s.in_flight_count(), 2);
        assert_eq!(s.pending_publish_count(), 1);
        // QoS 0 is never deferred by the window.
        assert!(s
            .try_publish(0.0, "q0", Bytes::new(), QoS::AtMostOnce, false)
            .is_some());
        // A PUBACK frees a slot and carries the queued publish out.
        let id1 = match p1.unwrap() {
            Packet::Publish {
                packet_id: Some(id),
                ..
            } => id,
            _ => unreachable!(),
        };
        let (ev, resp) = s.handle(0.5, Packet::PubAck { packet_id: id1 });
        assert_eq!(ev, Some(SessionEvent::PublishAcked(id1)));
        match resp {
            Some(Packet::Publish {
                ref topic,
                dup: false,
                packet_id: Some(_),
                ..
            }) => assert_eq!(topic, "c"),
            other => panic!("queued publish should ride the ack: {other:?}"),
        }
        assert_eq!(s.in_flight_count(), 2);
        assert_eq!(s.pending_publish_count(), 0);
    }

    #[test]
    fn poll_drains_pending_after_expiry() {
        let mut s = connected_session();
        s.max_in_flight = 1;
        s.retransmit_after_s = 1.0;
        s.max_retries = 0; // first overdue poll expires it
        let _ = s.try_publish(0.0, "a", Bytes::from_static(b"1"), QoS::AtLeastOnce, false);
        assert!(s
            .try_publish(0.0, "b", Bytes::from_static(b"2"), QoS::AtLeastOnce, false)
            .is_none());
        // The expiry of "a" makes room; the same poll sends "b".
        let out = s.poll(2.0);
        assert_eq!(out.len(), 1);
        match &out[0] {
            Packet::Publish { topic, dup, .. } => {
                assert_eq!(topic, "b");
                assert!(!dup, "fresh publish, not a retransmission");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(s.in_flight_count(), 1);
        assert_eq!(s.pending_publish_count(), 0);
    }

    #[test]
    fn session_obs_counts_reliability_events() {
        let registry = MetricsRegistry::new();
        let mut s = connected_session();
        s.set_obs(Some(SessionObs::new(&registry)));
        s.retransmit_after_s = 1.0;
        s.max_retries = 1;
        let _ = s.publish_packet(0.0, "t", Bytes::from_static(b"p"), QoS::AtLeastOnce, false);
        let _ = s.poll(1.5); // retransmit
        let _ = s.poll(3.0); // exceeds max_retries → expired
        let get = |n: &str| registry.find_counter(n).unwrap().get();
        assert_eq!(get("mqtt_session_publish_total"), 1);
        assert_eq!(get("mqtt_session_retransmit_total"), 1);
        assert_eq!(get("mqtt_session_expired_total"), 1);
        assert_eq!(get("mqtt_session_ack_total"), 0);
        // An acked publish bumps the ack counter.
        let pkt = s.publish_packet(4.0, "t", Bytes::from_static(b"q"), QoS::AtLeastOnce, false);
        let id = match pkt {
            Packet::Publish { packet_id, .. } => packet_id.unwrap(),
            _ => unreachable!(),
        };
        let _ = s.handle(4.1, Packet::PubAck { packet_id: id });
        assert_eq!(get("mqtt_session_ack_total"), 1);
    }

    #[test]
    fn inbound_qos1_message_is_acked() {
        let mut s = connected_session();
        let (ev, resp) = s.handle(
            2.0,
            Packet::Publish {
                topic: "davide/node01/power/node".into(),
                payload: Bytes::from_static(b"1700"),
                qos: QoS::AtLeastOnce,
                retain: false,
                dup: false,
                packet_id: Some(42),
            },
        );
        assert!(matches!(ev, Some(SessionEvent::Message { .. })));
        assert_eq!(resp, Some(Packet::PubAck { packet_id: 42 }));
        // QoS 0 inbound needs no ack.
        let (_, resp) = s.handle(
            2.1,
            Packet::Publish {
                topic: "t".into(),
                payload: Bytes::new(),
                qos: QoS::AtMostOnce,
                retain: false,
                dup: false,
                packet_id: None,
            },
        );
        assert!(resp.is_none());
    }

    #[test]
    fn keep_alive_ping_cycle() {
        let mut s = connected_session();
        // No ping needed early.
        assert!(s.poll(10.0).is_empty());
        // 75 % of keep-alive elapsed → PINGREQ.
        let out = s.poll(46.0);
        assert_eq!(out, vec![Packet::PingReq]);
        // Only one outstanding ping at a time.
        assert!(s.poll(47.0).is_empty());
        let (ev, _) = s.handle(47.5, Packet::PingResp);
        assert_eq!(ev, Some(SessionEvent::Pong));
        // Cycle can repeat.
        let out = s.poll(95.0);
        assert_eq!(out, vec![Packet::PingReq]);
    }

    #[test]
    fn packet_ids_skip_in_flight_and_zero() {
        let mut s = connected_session();
        let mut ids = std::collections::HashSet::new();
        for _ in 0..100 {
            let pkt = s.publish_packet(0.0, "t", Bytes::new(), QoS::AtLeastOnce, false);
            if let Packet::Publish {
                packet_id: Some(id),
                ..
            } = pkt
            {
                assert_ne!(id, 0, "packet id zero is illegal");
                assert!(ids.insert(id), "no reuse while in flight");
            }
        }
    }

    #[test]
    fn disconnected_session_does_not_poll() {
        let mut s = Session::new("x", 10.0);
        assert!(s.poll(100.0).is_empty(), "not yet connected");
        let _ = s.connect_packet(0.0, true);
        s.handle(
            0.1,
            Packet::ConnAck {
                session_present: false,
                code: 0,
            },
        );
        s.handle(0.2, Packet::Disconnect);
        assert_eq!(s.state(), SessionState::Closed);
        assert!(s.poll(100.0).is_empty());
    }

    #[test]
    fn subscribe_packet_carries_filters() {
        let mut s = connected_session();
        let pkt = s.subscribe_packet(vec![("davide/+/power/#".into(), QoS::AtLeastOnce)]);
        match pkt {
            Packet::Subscribe { packet_id, filters } => {
                assert!(packet_id > 0);
                assert_eq!(filters.len(), 1);
                let (ev, _) = s.handle(
                    1.0,
                    Packet::SubAck {
                        packet_id,
                        return_codes: vec![1],
                    },
                );
                assert_eq!(
                    ev,
                    Some(SessionEvent::Subscribed {
                        packet_id,
                        granted: vec![1]
                    })
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
