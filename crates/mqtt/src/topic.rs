//! MQTT topic names and subscription filters (MQTT 3.1.1 §4.7).
//!
//! Topic names are `/`-separated level strings; filters may use the `+`
//! single-level and `#` multi-level wildcards. Topics starting with `$`
//! (broker-internal, e.g. `$SYS/...`) are not matched by filters whose
//! first level is a wildcard.

use std::fmt;

/// Errors from topic/filter validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopicError {
    /// Empty topic or filter string.
    Empty,
    /// A topic name contained a wildcard character.
    WildcardInTopic,
    /// `#` appeared somewhere other than the final level, or was mixed
    /// into a level with other characters.
    BadMultiLevelWildcard,
    /// `+` was mixed into a level with other characters.
    BadSingleLevelWildcard,
    /// Embedded NUL character.
    NulCharacter,
}

impl fmt::Display for TopicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopicError::Empty => write!(f, "topic must not be empty"),
            TopicError::WildcardInTopic => write!(f, "topic names must not contain wildcards"),
            TopicError::BadMultiLevelWildcard => {
                write!(f, "'#' must be the entire final level of a filter")
            }
            TopicError::BadSingleLevelWildcard => {
                write!(f, "'+' must occupy an entire filter level")
            }
            TopicError::NulCharacter => write!(f, "topic must not contain NUL"),
        }
    }
}

impl std::error::Error for TopicError {}

/// Validate a topic *name* (used when publishing).
pub fn validate_topic(topic: &str) -> Result<(), TopicError> {
    if topic.is_empty() {
        return Err(TopicError::Empty);
    }
    if topic.contains('\0') {
        return Err(TopicError::NulCharacter);
    }
    if topic.contains('+') || topic.contains('#') {
        return Err(TopicError::WildcardInTopic);
    }
    Ok(())
}

/// Validate a subscription *filter*.
pub fn validate_filter(filter: &str) -> Result<(), TopicError> {
    if filter.is_empty() {
        return Err(TopicError::Empty);
    }
    if filter.contains('\0') {
        return Err(TopicError::NulCharacter);
    }
    let levels: Vec<&str> = filter.split('/').collect();
    for (i, level) in levels.iter().enumerate() {
        if level.contains('#') && (*level != "#" || i != levels.len() - 1) {
            return Err(TopicError::BadMultiLevelWildcard);
        }
        if level.contains('+') && *level != "+" {
            return Err(TopicError::BadSingleLevelWildcard);
        }
    }
    Ok(())
}

/// Does `filter` match `topic`? Both must already be valid.
///
/// ```
/// use davide_mqtt::topic::filter_matches;
/// assert!(filter_matches("node/+/power", "node/17/power"));
/// assert!(filter_matches("node/#", "node/17/power/cpu0"));
/// assert!(!filter_matches("node/+/power", "node/17/temp"));
/// ```
pub fn filter_matches(filter: &str, topic: &str) -> bool {
    // $-prefixed topics are invisible to leading wildcards.
    if topic.starts_with('$') && (filter.starts_with('+') || filter.starts_with('#')) {
        return false;
    }
    let mut f = filter.split('/');
    let mut t = topic.split('/');
    loop {
        match (f.next(), t.next()) {
            (Some("#"), _) => return true,
            (Some("+"), Some(_)) => {}
            (Some(fl), Some(tl)) if fl == tl => {}
            (None, None) => return true,
            // "sport/tennis/#" also matches "sport/tennis".
            _ => {
                return false;
            }
        }
    }
}

/// Split a topic into its levels.
pub fn levels(topic: &str) -> impl Iterator<Item = &str> {
    topic.split('/')
}

/// The set of broker shards a subscription filter must be registered on.
///
/// A filter whose first two levels are literal maps to exactly one shard
/// (the shard its matching topics hash to); any wildcard in the first two
/// levels forces registration on every shard, because matching topics can
/// hash anywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardSet {
    /// Register on every shard.
    All,
    /// Register on exactly this shard index.
    One(usize),
}

impl ShardSet {
    /// Does this set contain shard `idx`?
    pub fn contains(&self, idx: usize) -> bool {
        match self {
            ShardSet::All => true,
            ShardSet::One(i) => *i == idx,
        }
    }

    /// Iterate the shard indices in this set, in ascending order.
    pub fn iter(&self, shard_count: usize) -> impl Iterator<Item = usize> {
        let (start, end) = match self {
            ShardSet::All => (0, shard_count),
            ShardSet::One(i) => (*i, *i + 1),
        };
        start..end
    }
}

/// FNV-1a over the shard key of a topic: its first two levels joined by a
/// NUL byte (topics cannot contain NUL, so the key is unambiguous). A
/// single-level topic hashes just that level.
///
/// Two levels — not one — because every telemetry topic in this system
/// starts with the same site prefix (`davide/...`); hashing only the first
/// level would put the entire cluster in one shard. The second level is the
/// node/gateway name, which is exactly the axis concurrent publishers are
/// disjoint on.
fn shard_hash(topic: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut iter = topic.split('/');
    let l0 = iter.next().unwrap_or("");
    for b in l0.bytes() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    if let Some(l1) = iter.next() {
        // Fold in a NUL separator byte (`h ^ 0` is `h`) so `ab` and
        // `a/b` cannot collide by construction.
        h = h.wrapping_mul(FNV_PRIME);
        for b in l1.bytes() {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Which shard (of `shard_count`) does `topic` belong to?
pub fn shard_of_topic(topic: &str, shard_count: usize) -> usize {
    debug_assert!(shard_count > 0);
    (shard_hash(topic) % shard_count as u64) as usize
}

/// Which shards must `filter` be registered on so every topic it can match
/// is covered? Guarantee: for any valid topic `t` and filter `f`, if
/// `filter_matches(f, t)` then `filter_shards(f, n).contains(shard_of_topic(t, n))`.
pub fn filter_shards(filter: &str, shard_count: usize) -> ShardSet {
    debug_assert!(shard_count > 0);
    if shard_count == 1 {
        return ShardSet::One(0);
    }
    let mut iter = filter.split('/');
    let l0 = iter.next().unwrap_or("");
    if l0 == "+" || l0 == "#" {
        return ShardSet::All;
    }
    match iter.next() {
        // Single-level filter: matches only the single-level topic `l0`.
        None => ShardSet::One(shard_of_topic(l0, shard_count)),
        Some("#") | Some("+") => {
            // `a/#` also matches the single-level topic `a`, which hashes
            // differently from `a/<x>` — so a second-level wildcard spans
            // every shard.
            ShardSet::All
        }
        Some(_) => {
            // First two levels literal: every matching topic starts with
            // them, so all matching topics share one shard. Hash the
            // filter's own two-level prefix — identical to the topics'.
            ShardSet::One(shard_of_topic(filter, shard_count))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topic_validation() {
        assert!(validate_topic("node/17/power").is_ok());
        assert!(
            validate_topic("/leading/slash").is_ok(),
            "empty level legal"
        );
        assert_eq!(validate_topic(""), Err(TopicError::Empty));
        assert_eq!(validate_topic("a/+/b"), Err(TopicError::WildcardInTopic));
        assert_eq!(validate_topic("a/#"), Err(TopicError::WildcardInTopic));
        assert_eq!(validate_topic("a\0b"), Err(TopicError::NulCharacter));
    }

    #[test]
    fn filter_validation() {
        assert!(validate_filter("node/+/power").is_ok());
        assert!(validate_filter("#").is_ok());
        assert!(validate_filter("node/#").is_ok());
        assert!(validate_filter("+/+/+").is_ok());
        assert_eq!(validate_filter(""), Err(TopicError::Empty));
        assert_eq!(
            validate_filter("node/#/power"),
            Err(TopicError::BadMultiLevelWildcard)
        );
        assert_eq!(
            validate_filter("node/x#"),
            Err(TopicError::BadMultiLevelWildcard)
        );
        assert_eq!(
            validate_filter("node/x+/power"),
            Err(TopicError::BadSingleLevelWildcard)
        );
    }

    #[test]
    fn exact_matching() {
        assert!(filter_matches("a/b/c", "a/b/c"));
        assert!(!filter_matches("a/b/c", "a/b"));
        assert!(!filter_matches("a/b", "a/b/c"));
        assert!(!filter_matches("a/b/c", "a/b/d"));
    }

    #[test]
    fn single_level_wildcard() {
        assert!(filter_matches("a/+/c", "a/b/c"));
        assert!(filter_matches("+/+/+", "a/b/c"));
        assert!(!filter_matches("a/+", "a/b/c"));
        assert!(filter_matches("a/+", "a/"));
        assert!(!filter_matches("+", "a/b"));
    }

    #[test]
    fn multi_level_wildcard() {
        assert!(filter_matches("#", "a"));
        assert!(filter_matches("#", "a/b/c/d"));
        assert!(filter_matches("a/#", "a/b/c"));
        assert!(filter_matches("a/b/#", "a/b"), "parent matches per spec");
        assert!(!filter_matches("a/#", "b/c"));
        assert!(filter_matches("a/+/#", "a/x/y/z"));
    }

    #[test]
    fn dollar_topics_hidden_from_leading_wildcards() {
        assert!(!filter_matches("#", "$SYS/broker/load"));
        assert!(!filter_matches("+/broker/load", "$SYS/broker/load"));
        assert!(filter_matches("$SYS/#", "$SYS/broker/load"));
        assert!(filter_matches("$SYS/broker/load", "$SYS/broker/load"));
    }

    #[test]
    fn davide_telemetry_topics() {
        // The EG publishes per-node, per-channel topics like these.
        let t = "davide/node03/power/gpu1";
        assert!(validate_topic(t).is_ok());
        assert!(filter_matches("davide/+/power/#", t));
        assert!(filter_matches("davide/node03/#", t));
        assert!(!filter_matches("davide/+/temp/#", t));
    }

    #[test]
    fn obs_namespace_is_isolated_from_application_filters() {
        // Self-telemetry lives at davide/obs/self/<metric>: the third
        // level is the literal `self`, never `power`, so the standard
        // application subscriptions cannot match it.
        let obs = "davide/obs/self/ingest_frames_total";
        assert!(validate_topic(obs).is_ok());
        for app_filter in [
            "davide/+/power/#",    // telemetry aggregators
            "davide/+/power/node", // the control plane's node feed
            "davide/node00/#",     // a per-node profiler
            "davide/+/ctl/speed",  // DVFS command watchers
            "davide/+/job/#",      // per-job accounting
        ] {
            assert!(
                !filter_matches(app_filter, obs),
                "{app_filter} must not see {obs}"
            );
        }
        // The reserved filter sees the whole namespace, and nothing but.
        assert!(filter_matches("davide/obs/#", obs));
        assert!(filter_matches("davide/obs/self/+", obs));
        assert!(!filter_matches("davide/obs/#", "davide/node00/power/node"));
        // A cluster-wide `davide/#` firehose does see obs traffic —
        // that is intentional (it asked for everything).
        assert!(filter_matches("davide/#", obs));
    }

    #[test]
    fn shard_of_topic_is_stable_and_in_range() {
        for n in [1usize, 2, 4, 8, 16] {
            for t in [
                "davide/node03/power/gpu1",
                "davide/node03/temp/cpu0",
                "davide/gw07/power/node",
                "a",
                "/leading",
                "$SYS/broker/load",
            ] {
                let s = shard_of_topic(t, n);
                assert!(s < n, "{t} -> {s} out of range for {n}");
                assert_eq!(s, shard_of_topic(t, n), "must be deterministic");
            }
        }
        // Topics sharing a two-level prefix land on the same shard.
        assert_eq!(
            shard_of_topic("davide/node03/power/gpu1", 8),
            shard_of_topic("davide/node03/temp/cpu0", 8)
        );
    }

    #[test]
    fn filter_shards_covers_matching_topics() {
        let topics = [
            "davide/node03/power/gpu1",
            "davide/node04/power/gpu1",
            "davide/node03",
            "davide",
            "a/b/c",
            "a/b",
            "a",
            "/x",
            "$SYS/broker/load",
        ];
        let filters = [
            "#",
            "+/+",
            "davide/#",
            "davide/+/power/#",
            "davide/node03/#",
            "davide/node03/power/+",
            "davide/node03/power/gpu1",
            "a/b/c",
            "a/+",
            "a",
            "$SYS/#",
        ];
        for n in [1usize, 2, 3, 8] {
            for f in filters {
                let set = filter_shards(f, n);
                for t in topics {
                    if filter_matches(f, t) {
                        assert!(
                            set.contains(shard_of_topic(t, n)),
                            "filter {f} matches {t} but shard set {set:?} \
                             misses its shard (n={n})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn two_level_literal_filters_pin_one_shard() {
        // The common case — per-node filters — must not fan out to every
        // shard, or sharding buys nothing.
        assert!(matches!(
            filter_shards("davide/node03/#", 8),
            ShardSet::One(_)
        ));
        assert!(matches!(
            filter_shards("davide/node03/power/+", 8),
            ShardSet::One(_)
        ));
        assert_eq!(filter_shards("davide/+/power/#", 8), ShardSet::All);
        assert_eq!(filter_shards("#", 8), ShardSet::All);
        assert_eq!(filter_shards("davide/#", 8), ShardSet::All);
        // Single shard degenerates to One(0) for everything.
        assert_eq!(filter_shards("#", 1), ShardSet::One(0));
    }

    #[test]
    fn obs_metric_topics_are_single_level_safe() {
        // Sanitised metric names must form exactly one topic level:
        // wildcards and separators are not valid in a topic name, and a
        // `+` at the metric position must not be publishable.
        assert!(validate_topic("davide/obs/self/mqtt_published_total").is_ok());
        assert!(validate_topic("davide/obs/self/metric+name").is_err());
        assert!(validate_topic("davide/obs/self/metric#name").is_err());
    }
}
