//! MQTT topic names and subscription filters (MQTT 3.1.1 §4.7).
//!
//! Topic names are `/`-separated level strings; filters may use the `+`
//! single-level and `#` multi-level wildcards. Topics starting with `$`
//! (broker-internal, e.g. `$SYS/...`) are not matched by filters whose
//! first level is a wildcard.

use std::fmt;

/// Errors from topic/filter validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopicError {
    /// Empty topic or filter string.
    Empty,
    /// A topic name contained a wildcard character.
    WildcardInTopic,
    /// `#` appeared somewhere other than the final level, or was mixed
    /// into a level with other characters.
    BadMultiLevelWildcard,
    /// `+` was mixed into a level with other characters.
    BadSingleLevelWildcard,
    /// Embedded NUL character.
    NulCharacter,
}

impl fmt::Display for TopicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopicError::Empty => write!(f, "topic must not be empty"),
            TopicError::WildcardInTopic => write!(f, "topic names must not contain wildcards"),
            TopicError::BadMultiLevelWildcard => {
                write!(f, "'#' must be the entire final level of a filter")
            }
            TopicError::BadSingleLevelWildcard => {
                write!(f, "'+' must occupy an entire filter level")
            }
            TopicError::NulCharacter => write!(f, "topic must not contain NUL"),
        }
    }
}

impl std::error::Error for TopicError {}

/// Validate a topic *name* (used when publishing).
pub fn validate_topic(topic: &str) -> Result<(), TopicError> {
    if topic.is_empty() {
        return Err(TopicError::Empty);
    }
    if topic.contains('\0') {
        return Err(TopicError::NulCharacter);
    }
    if topic.contains('+') || topic.contains('#') {
        return Err(TopicError::WildcardInTopic);
    }
    Ok(())
}

/// Validate a subscription *filter*.
pub fn validate_filter(filter: &str) -> Result<(), TopicError> {
    if filter.is_empty() {
        return Err(TopicError::Empty);
    }
    if filter.contains('\0') {
        return Err(TopicError::NulCharacter);
    }
    let levels: Vec<&str> = filter.split('/').collect();
    for (i, level) in levels.iter().enumerate() {
        if level.contains('#') && (*level != "#" || i != levels.len() - 1) {
            return Err(TopicError::BadMultiLevelWildcard);
        }
        if level.contains('+') && *level != "+" {
            return Err(TopicError::BadSingleLevelWildcard);
        }
    }
    Ok(())
}

/// Does `filter` match `topic`? Both must already be valid.
///
/// ```
/// use davide_mqtt::topic::filter_matches;
/// assert!(filter_matches("node/+/power", "node/17/power"));
/// assert!(filter_matches("node/#", "node/17/power/cpu0"));
/// assert!(!filter_matches("node/+/power", "node/17/temp"));
/// ```
pub fn filter_matches(filter: &str, topic: &str) -> bool {
    // $-prefixed topics are invisible to leading wildcards.
    if topic.starts_with('$') && (filter.starts_with('+') || filter.starts_with('#')) {
        return false;
    }
    let mut f = filter.split('/');
    let mut t = topic.split('/');
    loop {
        match (f.next(), t.next()) {
            (Some("#"), _) => return true,
            (Some("+"), Some(_)) => {}
            (Some(fl), Some(tl)) if fl == tl => {}
            (None, None) => return true,
            // "sport/tennis/#" also matches "sport/tennis".
            _ => {
                return false;
            }
        }
    }
}

/// Split a topic into its levels.
pub fn levels(topic: &str) -> impl Iterator<Item = &str> {
    topic.split('/')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topic_validation() {
        assert!(validate_topic("node/17/power").is_ok());
        assert!(
            validate_topic("/leading/slash").is_ok(),
            "empty level legal"
        );
        assert_eq!(validate_topic(""), Err(TopicError::Empty));
        assert_eq!(validate_topic("a/+/b"), Err(TopicError::WildcardInTopic));
        assert_eq!(validate_topic("a/#"), Err(TopicError::WildcardInTopic));
        assert_eq!(validate_topic("a\0b"), Err(TopicError::NulCharacter));
    }

    #[test]
    fn filter_validation() {
        assert!(validate_filter("node/+/power").is_ok());
        assert!(validate_filter("#").is_ok());
        assert!(validate_filter("node/#").is_ok());
        assert!(validate_filter("+/+/+").is_ok());
        assert_eq!(validate_filter(""), Err(TopicError::Empty));
        assert_eq!(
            validate_filter("node/#/power"),
            Err(TopicError::BadMultiLevelWildcard)
        );
        assert_eq!(
            validate_filter("node/x#"),
            Err(TopicError::BadMultiLevelWildcard)
        );
        assert_eq!(
            validate_filter("node/x+/power"),
            Err(TopicError::BadSingleLevelWildcard)
        );
    }

    #[test]
    fn exact_matching() {
        assert!(filter_matches("a/b/c", "a/b/c"));
        assert!(!filter_matches("a/b/c", "a/b"));
        assert!(!filter_matches("a/b", "a/b/c"));
        assert!(!filter_matches("a/b/c", "a/b/d"));
    }

    #[test]
    fn single_level_wildcard() {
        assert!(filter_matches("a/+/c", "a/b/c"));
        assert!(filter_matches("+/+/+", "a/b/c"));
        assert!(!filter_matches("a/+", "a/b/c"));
        assert!(filter_matches("a/+", "a/"));
        assert!(!filter_matches("+", "a/b"));
    }

    #[test]
    fn multi_level_wildcard() {
        assert!(filter_matches("#", "a"));
        assert!(filter_matches("#", "a/b/c/d"));
        assert!(filter_matches("a/#", "a/b/c"));
        assert!(filter_matches("a/b/#", "a/b"), "parent matches per spec");
        assert!(!filter_matches("a/#", "b/c"));
        assert!(filter_matches("a/+/#", "a/x/y/z"));
    }

    #[test]
    fn dollar_topics_hidden_from_leading_wildcards() {
        assert!(!filter_matches("#", "$SYS/broker/load"));
        assert!(!filter_matches("+/broker/load", "$SYS/broker/load"));
        assert!(filter_matches("$SYS/#", "$SYS/broker/load"));
        assert!(filter_matches("$SYS/broker/load", "$SYS/broker/load"));
    }

    #[test]
    fn davide_telemetry_topics() {
        // The EG publishes per-node, per-channel topics like these.
        let t = "davide/node03/power/gpu1";
        assert!(validate_topic(t).is_ok());
        assert!(filter_matches("davide/+/power/#", t));
        assert!(filter_matches("davide/node03/#", t));
        assert!(!filter_matches("davide/+/temp/#", t));
    }

    #[test]
    fn obs_namespace_is_isolated_from_application_filters() {
        // Self-telemetry lives at davide/obs/self/<metric>: the third
        // level is the literal `self`, never `power`, so the standard
        // application subscriptions cannot match it.
        let obs = "davide/obs/self/ingest_frames_total";
        assert!(validate_topic(obs).is_ok());
        for app_filter in [
            "davide/+/power/#",    // telemetry aggregators
            "davide/+/power/node", // the control plane's node feed
            "davide/node00/#",     // a per-node profiler
            "davide/+/ctl/speed",  // DVFS command watchers
            "davide/+/job/#",      // per-job accounting
        ] {
            assert!(
                !filter_matches(app_filter, obs),
                "{app_filter} must not see {obs}"
            );
        }
        // The reserved filter sees the whole namespace, and nothing but.
        assert!(filter_matches("davide/obs/#", obs));
        assert!(filter_matches("davide/obs/self/+", obs));
        assert!(!filter_matches("davide/obs/#", "davide/node00/power/node"));
        // A cluster-wide `davide/#` firehose does see obs traffic —
        // that is intentional (it asked for everything).
        assert!(filter_matches("davide/#", obs));
    }

    #[test]
    fn obs_metric_topics_are_single_level_safe() {
        // Sanitised metric names must form exactly one topic level:
        // wildcards and separators are not valid in a topic name, and a
        // `+` at the metric position must not be publishable.
        assert!(validate_topic("davide/obs/self/mqtt_published_total").is_ok());
        assert!(validate_topic("davide/obs/self/metric+name").is_err());
        assert!(validate_topic("davide/obs/self/metric#name").is_err());
    }
}
