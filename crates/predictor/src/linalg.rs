//! Small dense linear algebra for the predictors: symmetric
//! positive-definite solves via Cholesky (all the ridge regression
//! needs — no external numerics dependency).

/// A dense symmetric matrix stored row-major (full storage for clarity).
#[derive(Debug, Clone, PartialEq)]
pub struct SymMatrix {
    /// Dimension.
    pub n: usize,
    /// Row-major entries.
    pub data: Vec<f64>,
}

impl SymMatrix {
    /// Zero matrix.
    pub fn zeros(n: usize) -> Self {
        SymMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// Add `v` to the diagonal (ridge regularisation).
    pub fn add_diagonal(&mut self, v: f64) {
        for i in 0..self.n {
            self.data[i * self.n + i] += v;
        }
    }

    /// Gram matrix `XᵀX` of a row-major design matrix (`rows × cols`).
    pub fn gram(x: &[f64], rows: usize, cols: usize) -> Self {
        assert_eq!(x.len(), rows * cols);
        let mut g = SymMatrix::zeros(cols);
        for r in 0..rows {
            let row = &x[r * cols..(r + 1) * cols];
            for (i, &xi) in row.iter().enumerate() {
                if xi == 0.0 {
                    continue;
                }
                let upper = &mut g.data[i * cols + i..(i + 1) * cols];
                for (gij, &xj) in upper.iter_mut().zip(&row[i..]) {
                    *gij += xi * xj;
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..cols {
            for j in 0..i {
                g.data[i * cols + j] = g.data[j * cols + i];
            }
        }
        g
    }
}

/// Cholesky factorisation `A = L·Lᵀ`; returns the lower factor, or
/// `None` when `A` is not positive-definite.
pub fn cholesky(a: &SymMatrix) -> Option<Vec<f64>> {
    let n = a.n;
    let mut l = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i * n + i] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    Some(l)
}

/// Solve `A x = b` for SPD `A` via Cholesky; `None` if not SPD.
pub fn solve_spd(a: &SymMatrix, b: &[f64]) -> Option<Vec<f64>> {
    let n = a.n;
    assert_eq!(b.len(), n);
    let l = cholesky(a)?;
    // Forward solve L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l[i * n + k] * y[k];
        }
        y[i] = s / l[i * n + i];
    }
    // Back solve Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for k in i + 1..n {
            s -= l[k * n + i] * x[k];
        }
        x[i] = s / l[i * n + i];
    }
    Some(x)
}

/// `Xᵀ y` for a row-major design matrix.
pub fn xty(x: &[f64], rows: usize, cols: usize, y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), rows * cols);
    assert_eq!(y.len(), rows);
    let mut out = vec![0.0; cols];
    for r in 0..rows {
        let row = &x[r * cols..(r + 1) * cols];
        let yr = y[r];
        for (o, &xi) in out.iter_mut().zip(row) {
            *o += xi * yr;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> SymMatrix {
        // A = Mᵀ M + I for M = [[1,2,0],[0,1,1],[1,0,1]] (hand-computed).
        let mut a = SymMatrix::zeros(3);
        let vals = [[3.0, 2.0, 1.0], [2.0, 6.0, 1.0], [1.0, 1.0, 3.0]];
        for (i, row) in vals.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                a.set(i, j, v);
            }
        }
        a
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd3();
        let l = cholesky(&a).expect("SPD");
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += l[i * 3 + k] * l[j * 3 + k];
                }
                assert!((s - a.get(i, j)).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn solve_matches_known_solution() {
        let a = spd3();
        let x_true = [1.0, -2.0, 0.5];
        let mut b = [0.0; 3];
        for (i, bi) in b.iter_mut().enumerate() {
            for (j, &xj) in x_true.iter().enumerate() {
                *bi += a.get(i, j) * xj;
            }
        }
        let x = solve_spd(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn non_spd_detected() {
        let mut a = SymMatrix::zeros(2);
        a.set(0, 0, 1.0);
        a.set(1, 1, -1.0);
        assert!(cholesky(&a).is_none());
        assert!(solve_spd(&a, &[1.0, 1.0]).is_none());
    }

    #[test]
    fn gram_and_xty() {
        // X = [[1,2],[3,4],[5,6]]
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let g = SymMatrix::gram(&x, 3, 2);
        assert_eq!(g.get(0, 0), 35.0);
        assert_eq!(g.get(0, 1), 44.0);
        assert_eq!(g.get(1, 0), 44.0);
        assert_eq!(g.get(1, 1), 56.0);
        let b = xty(&x, 3, 2, &[1.0, 1.0, 1.0]);
        assert_eq!(b, vec![9.0, 12.0]);
    }

    #[test]
    fn ridge_diagonal() {
        let mut a = SymMatrix::zeros(2);
        a.add_diagonal(0.5);
        assert_eq!(a.get(0, 0), 0.5);
        assert_eq!(a.get(1, 1), 0.5);
        assert_eq!(a.get(0, 1), 0.0);
    }
}
