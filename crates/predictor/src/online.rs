//! Online (recursive least squares) power prediction.
//!
//! The management node of Fig. 4 keeps training "job-to-power predictors
//! based on the historical job request and power traces" as accounting
//! data accrues. RLS with a forgetting factor is the natural streaming
//! counterpart of the batch ridge model: each completed job updates the
//! weights in O(d²) without refitting.

use crate::Regressor;
use serde::{Deserialize, Serialize};

/// Recursive least squares with exponential forgetting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RlsPredictor {
    /// Forgetting factor λ ∈ (0, 1]; 1 = infinite memory.
    pub lambda: f64,
    dim: usize,
    /// Weight vector.
    w: Vec<f64>,
    /// Inverse covariance P (row-major d×d).
    p: Vec<f64>,
    updates: u64,
}

impl RlsPredictor {
    /// New predictor of feature dimension `dim`; `delta` sets the
    /// initial covariance `P = δ·I` (large δ = uninformative prior).
    pub fn new(dim: usize, lambda: f64, delta: f64) -> Self {
        assert!(dim >= 1);
        assert!(
            (0.0..=1.0).contains(&lambda) && lambda > 0.5,
            "λ in (0.5, 1]"
        );
        assert!(delta > 0.0);
        let mut p = vec![0.0; dim * dim];
        for i in 0..dim {
            p[i * dim + i] = delta;
        }
        RlsPredictor {
            lambda,
            dim,
            w: vec![0.0; dim],
            p,
            updates: 0,
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Re-initialise to dimension `dim` with prior covariance `P = δ·I`,
    /// discarding weights and the update counter; λ is kept.
    pub fn reset(&mut self, dim: usize, delta: f64) {
        assert!(dim >= 1);
        assert!(delta > 0.0);
        self.dim = dim;
        self.w = vec![0.0; dim];
        self.p = vec![0.0; dim * dim];
        for i in 0..dim {
            self.p[i * dim + i] = delta;
        }
        self.updates = 0;
    }

    /// Number of updates absorbed.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Predict the target for a feature vector.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim);
        self.w.iter().zip(x).map(|(w, x)| w * x).sum()
    }

    /// Absorb one observation `(x, y)`:
    /// `k = P x / (λ + xᵀ P x)`, `w += k (y − wᵀx)`,
    /// `P = (P − k xᵀ P) / λ`.
    pub fn update(&mut self, x: &[f64], y: f64) {
        assert_eq!(x.len(), self.dim);
        let d = self.dim;
        // px = P x
        let mut px = vec![0.0; d];
        for (pxi, row) in px.iter_mut().zip(self.p.chunks_exact(d)) {
            *pxi = row.iter().zip(x).map(|(p, x)| p * x).sum();
        }
        let xpx: f64 = x.iter().zip(&px).map(|(x, p)| x * p).sum();
        let denom = self.lambda + xpx;
        let k: Vec<f64> = px.iter().map(|v| v / denom).collect();
        let err = y - self.predict(x);
        for (w, &ki) in self.w.iter_mut().zip(&k) {
            *w += ki * err;
        }
        // P = (P − k·(xᵀP)) / λ ; xᵀP = pxᵀ because P is symmetric.
        for (row, &ki) in self.p.chunks_exact_mut(d).zip(&k) {
            for (pij, &pxj) in row.iter_mut().zip(&px) {
                *pij = (*pij - ki * pxj) / self.lambda;
            }
        }
        // Re-symmetrise to stop floating-point drift from detuning the
        // gain vector over long streams.
        for i in 0..d {
            for j in (i + 1)..d {
                let m = 0.5 * (self.p[i * d + j] + self.p[j * d + i]);
                self.p[i * d + j] = m;
                self.p[j * d + i] = m;
            }
        }
        self.updates += 1;
    }

    /// Current prediction error on a labelled set (MAPE, %).
    pub fn mape_on(&self, xs: &[Vec<f64>], ys: &[f64]) -> f64 {
        assert_eq!(xs.len(), ys.len());
        let mut acc = 0.0;
        let mut n = 0usize;
        for (x, &y) in xs.iter().zip(ys) {
            if y.abs() > 1e-9 {
                acc += ((self.predict(x) - y) / y).abs();
                n += 1;
            }
        }
        100.0 * acc / n.max(1) as f64
    }
}

impl Regressor for RlsPredictor {
    /// Batch fit = reset to the design-matrix width and absorb the rows
    /// in one streaming pass, so an [`RlsPredictor`] can stand in
    /// wherever a batch model is expected and then keep learning online.
    fn fit(&mut self, x: &[f64], rows: usize, cols: usize, y: &[f64]) {
        assert_eq!(x.len(), rows * cols);
        assert_eq!(y.len(), rows);
        self.reset(cols, 1000.0);
        for (row, &target) in x.chunks_exact(cols).zip(y) {
            self.update(row, target);
        }
    }

    fn predict(&self, features: &[f64]) -> f64 {
        RlsPredictor::predict(self, features)
    }

    fn name(&self) -> &'static str {
        "rls"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use davide_core::rng::Rng;

    #[test]
    fn converges_to_linear_relation() {
        let mut rls = RlsPredictor::new(3, 1.0, 1000.0);
        let mut rng = Rng::seed_from(1);
        for _ in 0..500 {
            let a = rng.uniform_in(-1.0, 1.0);
            let b = rng.uniform_in(-1.0, 1.0);
            let y = 4.0 * a - 2.0 * b + 7.0;
            rls.update(&[a, b, 1.0], y);
        }
        assert!((rls.predict(&[0.5, 0.5, 1.0]) - 8.0).abs() < 1e-3);
        assert_eq!(rls.updates(), 500);
    }

    #[test]
    fn tracks_drift_with_forgetting() {
        // The relation changes halfway; λ<1 adapts, λ=1 averages.
        let mut adaptive = RlsPredictor::new(2, 0.97, 1000.0);
        let mut static_mem = RlsPredictor::new(2, 1.0, 1000.0);
        let mut rng = Rng::seed_from(2);
        for i in 0..1000 {
            let a = rng.uniform_in(0.0, 1.0);
            let slope = if i < 500 { 100.0 } else { 300.0 };
            let y = slope * a;
            adaptive.update(&[a, 1.0], y);
            static_mem.update(&[a, 1.0], y);
        }
        let probe = [1.0, 1.0];
        let err_adaptive = (adaptive.predict(&probe) - 300.0).abs();
        let err_static = (static_mem.predict(&probe) - 300.0).abs();
        assert!(
            err_adaptive < err_static / 3.0,
            "adaptive {err_adaptive} vs static {err_static}"
        );
    }

    #[test]
    fn noisy_convergence_within_tolerance() {
        let mut rls = RlsPredictor::new(2, 0.999, 100.0);
        let mut rng = Rng::seed_from(3);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..2000 {
            let a = rng.uniform_in(0.0, 2.0);
            let y = 1500.0 * a + 200.0 + rng.normal(0.0, 30.0);
            rls.update(&[a, 1.0], y);
            xs.push(vec![a, 1.0]);
            ys.push(y);
        }
        assert!(rls.mape_on(&xs, &ys) < 3.0);
    }

    #[test]
    fn prior_matters_early_then_washes_out() {
        let mut rls = RlsPredictor::new(1, 1.0, 1.0); // tight prior at w=0
        rls.update(&[1.0], 100.0);
        let early = rls.predict(&[1.0]);
        assert!(early < 100.0, "tight prior shrinks: {early}");
        for _ in 0..200 {
            rls.update(&[1.0], 100.0);
        }
        assert!((rls.predict(&[1.0]) - 100.0).abs() < 1.0);
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let mut rls = RlsPredictor::new(3, 1.0, 10.0);
        rls.update(&[1.0], 5.0);
    }
}
