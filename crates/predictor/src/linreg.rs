//! Ridge regression on submission-time features — the workhorse job
//! power predictor ([17] reports linear models already reach ~10 % MAPE
//! on production traces thanks to user/application regularity).

use crate::linalg::{solve_spd, xty, SymMatrix};
use crate::Regressor;
use serde::{Deserialize, Serialize};

/// L2-regularised linear least squares.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RidgeRegression {
    /// Regularisation strength.
    pub lambda: f64,
    /// Learned weights (empty until fitted).
    pub weights: Vec<f64>,
}

impl RidgeRegression {
    /// New model with regularisation `lambda ≥ 0` (a small positive
    /// value also guarantees the normal equations stay SPD).
    pub fn new(lambda: f64) -> Self {
        assert!(lambda >= 0.0);
        RidgeRegression {
            lambda,
            weights: Vec::new(),
        }
    }
}

impl Regressor for RidgeRegression {
    fn fit(&mut self, x: &[f64], rows: usize, cols: usize, y: &[f64]) {
        assert_eq!(x.len(), rows * cols);
        assert_eq!(y.len(), rows);
        let mut a = SymMatrix::gram(x, rows, cols);
        // Always add a floor of regularisation so one-hot columns with
        // few observations keep the system positive-definite.
        a.add_diagonal(self.lambda.max(1e-8));
        let b = xty(x, rows, cols, y);
        self.weights = solve_spd(&a, &b).expect("ridge system is SPD by construction");
    }

    fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.weights.len(), "fit before predict");
        features.iter().zip(&self.weights).map(|(f, w)| f * w).sum()
    }

    fn name(&self) -> &'static str {
        "ridge"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use davide_core::rng::Rng;

    #[test]
    fn recovers_exact_linear_relation() {
        // y = 2·x₀ − 3·x₁ + 0.5 with a bias column.
        let mut rng = Rng::seed_from(1);
        let rows = 200;
        let cols = 3;
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..rows {
            let a = rng.uniform_in(-1.0, 1.0);
            let b = rng.uniform_in(-1.0, 1.0);
            x.extend([a, b, 1.0]);
            y.push(2.0 * a - 3.0 * b + 0.5);
        }
        let mut m = RidgeRegression::new(1e-8);
        m.fit(&x, rows, cols, &y);
        assert!((m.weights[0] - 2.0).abs() < 1e-4);
        assert!((m.weights[1] + 3.0).abs() < 1e-4);
        assert!((m.weights[2] - 0.5).abs() < 1e-4);
        assert!((m.predict(&[1.0, 1.0, 1.0]) - (-0.5)).abs() < 1e-3);
    }

    #[test]
    fn robust_to_noise() {
        let mut rng = Rng::seed_from(2);
        let rows = 2000;
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..rows {
            let a = rng.uniform_in(0.0, 2.0);
            x.extend([a, 1.0]);
            y.push(5.0 * a + 1.0 + rng.normal(0.0, 0.2));
        }
        let mut m = RidgeRegression::new(1e-6);
        m.fit(&x, rows, 2, &y);
        assert!((m.weights[0] - 5.0).abs() < 0.05, "{:?}", m.weights);
        assert!((m.weights[1] - 1.0).abs() < 0.05);
    }

    #[test]
    fn regularisation_shrinks_weights() {
        let mut rng = Rng::seed_from(3);
        let rows = 50;
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..rows {
            let a = rng.uniform_in(-1.0, 1.0);
            x.extend([a, 1.0]);
            y.push(10.0 * a);
        }
        let mut loose = RidgeRegression::new(1e-8);
        let mut tight = RidgeRegression::new(100.0);
        loose.fit(&x, rows, 2, &y);
        tight.fit(&x, rows, 2, &y);
        assert!(tight.weights[0].abs() < loose.weights[0].abs());
    }

    #[test]
    fn handles_collinear_columns_via_ridge() {
        // Two identical columns would make XᵀX singular; ridge fixes it.
        let x = vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0];
        let y = vec![2.0, 4.0, 6.0];
        let mut m = RidgeRegression::new(1e-4);
        m.fit(&x, 3, 2, &y);
        // Weights split the coefficient between the twin columns.
        let pred = m.predict(&[2.0, 2.0]);
        assert!((pred - 4.0).abs() < 0.01, "pred={pred}");
    }
}
