//! Predictor evaluation: error metrics and k-fold cross-validation.

use crate::Regressor;

/// Mean absolute percentage error (the headline metric of [17]).
pub fn mape(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!pred.is_empty());
    let mut acc = 0.0;
    let mut n = 0usize;
    for (p, t) in pred.iter().zip(truth) {
        if t.abs() > 1e-12 {
            acc += ((p - t) / t).abs();
            n += 1;
        }
    }
    100.0 * acc / n.max(1) as f64
}

/// Root-mean-square error.
pub fn rmse(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!pred.is_empty());
    let sse: f64 = pred.iter().zip(truth).map(|(p, t)| (p - t).powi(2)).sum();
    (sse / pred.len() as f64).sqrt()
}

/// Mean absolute error.
pub fn mae(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!pred.is_empty());
    pred.iter()
        .zip(truth)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// Coefficient of determination R².
pub fn r2(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean).powi(2)).sum();
    let ss_res: f64 = pred.iter().zip(truth).map(|(p, t)| (t - p).powi(2)).sum();
    if ss_tot == 0.0 {
        return if ss_res == 0.0 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

/// Cross-validation summary.
#[derive(Debug, Clone, PartialEq)]
pub struct CvReport {
    /// Model name.
    pub model: &'static str,
    /// Mean MAPE over folds, percent.
    pub mape: f64,
    /// Mean RMSE over folds.
    pub rmse: f64,
    /// Mean MAE over folds.
    pub mae: f64,
    /// Mean R² over folds.
    pub r2: f64,
}

/// k-fold cross-validation of a regressor factory over a row-major
/// design matrix. Folds are contiguous blocks (the caller shuffles).
pub fn cross_validate<R: Regressor>(
    mut factory: impl FnMut() -> R,
    x: &[f64],
    rows: usize,
    cols: usize,
    y: &[f64],
    folds: usize,
) -> CvReport {
    assert!(folds >= 2 && rows >= folds);
    let fold_size = rows / folds;
    let mut mapes = Vec::new();
    let mut rmses = Vec::new();
    let mut maes = Vec::new();
    let mut r2s = Vec::new();
    let mut name = "";
    for f in 0..folds {
        let test_start = f * fold_size;
        let test_end = if f == folds - 1 {
            rows
        } else {
            test_start + fold_size
        };
        let mut train_x = Vec::new();
        let mut train_y = Vec::new();
        for r in 0..rows {
            if r < test_start || r >= test_end {
                train_x.extend_from_slice(&x[r * cols..(r + 1) * cols]);
                train_y.push(y[r]);
            }
        }
        let mut model = factory();
        model.fit(&train_x, train_y.len(), cols, &train_y);
        name = model.name();
        let preds: Vec<f64> = (test_start..test_end)
            .map(|r| model.predict(&x[r * cols..(r + 1) * cols]))
            .collect();
        let truth = &y[test_start..test_end];
        mapes.push(mape(&preds, truth));
        rmses.push(rmse(&preds, truth));
        maes.push(mae(&preds, truth));
        r2s.push(r2(&preds, truth));
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    CvReport {
        model: name,
        mape: avg(&mapes),
        rmse: avg(&rmses),
        mae: avg(&maes),
        r2: avg(&r2s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linreg::RidgeRegression;

    #[test]
    fn metric_basics() {
        let truth = [100.0, 200.0];
        let pred = [110.0, 180.0];
        assert!((mape(&pred, &truth) - 10.0).abs() < 1e-12);
        assert!((mae(&pred, &truth) - 15.0).abs() < 1e-12);
        assert!((rmse(&pred, &truth) - (250.0_f64).sqrt()).abs() < 1e-12);
        assert_eq!(r2(&truth, &truth), 1.0);
        assert!(r2(&pred, &truth) < 1.0);
    }

    #[test]
    fn mape_skips_zero_truth() {
        let truth = [0.0, 100.0];
        let pred = [5.0, 110.0];
        assert!((mape(&pred, &truth) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_model_cross_validates_perfectly() {
        // y depends linearly on x; ridge should nail every fold.
        let rows = 100;
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..rows {
            let v = i as f64 / 10.0;
            x.extend([v, 1.0]);
            y.push(3.0 * v + 7.0);
        }
        let report = cross_validate(|| RidgeRegression::new(1e-8), &x, rows, 2, &y, 5);
        assert_eq!(report.model, "ridge");
        assert!(report.mape < 0.1, "mape={}", report.mape);
        assert!(report.r2 > 0.999);
    }

    #[test]
    fn cv_uses_held_out_data() {
        // A model that memorises (1-NN) still shows error on held-out
        // folds when the target has noise — CV must not leak.
        use crate::knn::KnnRegressor;
        use davide_core::rng::Rng;
        let mut rng = Rng::seed_from(5);
        let rows = 200;
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..rows {
            let v = rng.uniform();
            x.push(v);
            y.push(v * 100.0 + rng.normal(0.0, 10.0));
        }
        let report = cross_validate(|| KnnRegressor::new(1), &x, rows, 1, &y, 5);
        assert!(report.rmse > 5.0, "held-out error visible: {}", report.rmse);
    }

    #[test]
    #[should_panic]
    fn cv_requires_enough_rows() {
        cross_validate(|| RidgeRegression::new(1.0), &[1.0], 1, 1, &[1.0], 2);
    }
}
