//! k-nearest-neighbour power prediction: "jobs like the ones this user
//! ran before will draw similar power" — the instance-based alternative
//! studied alongside parametric models in [17].

use crate::Regressor;

/// k-NN regressor over Euclidean feature distance.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnRegressor {
    /// Neighbours consulted.
    pub k: usize,
    cols: usize,
    x: Vec<f64>,
    y: Vec<f64>,
}

impl KnnRegressor {
    /// New model consulting `k ≥ 1` neighbours.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        KnnRegressor {
            k,
            cols: 0,
            x: Vec::new(),
            y: Vec::new(),
        }
    }

    /// Stored training rows.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True before `fit`.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    fn distance_sq(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }
}

impl Regressor for KnnRegressor {
    fn fit(&mut self, x: &[f64], rows: usize, cols: usize, y: &[f64]) {
        assert_eq!(x.len(), rows * cols);
        assert_eq!(y.len(), rows);
        self.cols = cols;
        self.x = x.to_vec();
        self.y = y.to_vec();
    }

    fn predict(&self, features: &[f64]) -> f64 {
        assert!(!self.is_empty(), "fit before predict");
        assert_eq!(features.len(), self.cols);
        let rows = self.y.len();
        // Partial selection of the k smallest distances.
        let mut dists: Vec<(f64, usize)> = (0..rows)
            .map(|r| {
                let row = &self.x[r * self.cols..(r + 1) * self.cols];
                (Self::distance_sq(row, features), r)
            })
            .collect();
        let k = self.k.min(rows);
        dists.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
        let mut sum = 0.0;
        for &(_, r) in dists.iter().take(k) {
            sum += self.y[r];
        }
        sum / k as f64
    }

    fn name(&self) -> &'static str {
        "knn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_nn_memorises_training_points() {
        let x = vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0];
        let y = vec![10.0, 20.0, 30.0];
        let mut m = KnnRegressor::new(1);
        m.fit(&x, 3, 2, &y);
        assert_eq!(m.predict(&[0.0, 0.0]), 10.0);
        assert_eq!(m.predict(&[1.0, 0.0]), 20.0);
        assert_eq!(m.predict(&[0.01, 0.99]), 30.0);
    }

    #[test]
    fn k_averages_neighbours() {
        let x = vec![0.0, 0.1, 0.2, 10.0];
        let y = vec![1.0, 2.0, 3.0, 100.0];
        let mut m = KnnRegressor::new(3);
        m.fit(&x, 4, 1, &y);
        // The three close points average to 2; the outlier is excluded.
        assert!((m.predict(&[0.1]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let x = vec![0.0, 1.0];
        let y = vec![4.0, 6.0];
        let mut m = KnnRegressor::new(10);
        m.fit(&x, 2, 1, &y);
        assert!((m.predict(&[0.5]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn clustered_users_predicted_from_their_own_history() {
        // User A's jobs draw ~1500 W, user B's ~800 W; features are the
        // one-hot user id. k-NN must keep them apart.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            x.extend([1.0, 0.0]);
            y.push(1500.0 + (i % 5) as f64);
            x.extend([0.0, 1.0]);
            y.push(800.0 + (i % 3) as f64);
        }
        let mut m = KnnRegressor::new(5);
        m.fit(&x, 40, 2, &y);
        assert!((m.predict(&[1.0, 0.0]) - 1500.0).abs() < 5.0);
        assert!((m.predict(&[0.0, 1.0]) - 800.0).abs() < 5.0);
    }

    #[test]
    #[should_panic(expected = "fit before predict")]
    fn predict_before_fit_panics() {
        KnnRegressor::new(3).predict(&[1.0]);
    }
}
