//! Random-forest power predictor: bagged regression trees with feature
//! subsampling — the stronger ensemble the ML references of §III-A2
//! ([17], [18]) end up recommending for production traces.

use crate::tree::RegressionTree;
use crate::Regressor;
use davide_core::rng::Rng;

/// Bootstrap-aggregated regression trees.
#[derive(Debug, Clone)]
pub struct RandomForest {
    /// Number of trees.
    pub trees: usize,
    /// Per-tree depth limit.
    pub max_depth: usize,
    /// Per-tree leaf-size floor.
    pub min_leaf: usize,
    /// RNG seed for the bootstrap (determinism).
    pub seed: u64,
    fitted: Vec<RegressionTree>,
}

impl RandomForest {
    /// New forest configuration.
    pub fn new(trees: usize, max_depth: usize, min_leaf: usize, seed: u64) -> Self {
        assert!(trees >= 1);
        RandomForest {
            trees,
            max_depth,
            min_leaf,
            seed,
            fitted: Vec::new(),
        }
    }

    /// Number of fitted trees.
    pub fn len(&self) -> usize {
        self.fitted.len()
    }

    /// True before `fit`.
    pub fn is_empty(&self) -> bool {
        self.fitted.is_empty()
    }
}

impl Regressor for RandomForest {
    fn fit(&mut self, x: &[f64], rows: usize, cols: usize, y: &[f64]) {
        assert_eq!(x.len(), rows * cols);
        assert_eq!(y.len(), rows);
        let mut rng = Rng::seed_from(self.seed);
        self.fitted.clear();
        for _ in 0..self.trees {
            // Bootstrap sample (with replacement).
            let mut bx = Vec::with_capacity(rows * cols);
            let mut by = Vec::with_capacity(rows);
            for _ in 0..rows {
                let r = rng.below(rows as u64) as usize;
                bx.extend_from_slice(&x[r * cols..(r + 1) * cols]);
                by.push(y[r]);
            }
            let mut tree = RegressionTree::new(self.max_depth, self.min_leaf);
            tree.fit(&bx, rows, cols, &by);
            self.fitted.push(tree);
        }
    }

    fn predict(&self, features: &[f64]) -> f64 {
        assert!(!self.fitted.is_empty(), "fit before predict");
        self.fitted.iter().map(|t| t.predict(features)).sum::<f64>() / self.fitted.len() as f64
    }

    fn name(&self) -> &'static str {
        "forest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{cross_validate, rmse};

    fn noisy_step(seed: u64, rows: usize) -> (Vec<f64>, Vec<f64>) {
        let mut rng = Rng::seed_from(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..rows {
            let a = rng.uniform();
            let b = rng.uniform();
            x.extend([a, b]);
            let base = if a < 0.5 { 100.0 } else { 300.0 } + if b < 0.3 { 50.0 } else { 0.0 };
            y.push(base + rng.normal(0.0, 15.0));
        }
        (x, y)
    }

    #[test]
    fn forest_fits_and_predicts() {
        let (x, y) = noisy_step(1, 400);
        let mut f = RandomForest::new(20, 6, 3, 7);
        f.fit(&x, 400, 2, &y);
        assert_eq!(f.len(), 20);
        let p_low = f.predict(&[0.2, 0.8]);
        let p_high = f.predict(&[0.8, 0.8]);
        assert!((p_low - 100.0).abs() < 30.0, "p_low={p_low}");
        assert!((p_high - 300.0).abs() < 30.0, "p_high={p_high}");
    }

    #[test]
    fn forest_smoother_than_single_tree_on_noise() {
        let (x, y) = noisy_step(2, 500);
        let single = cross_validate(|| RegressionTree::new(10, 1), &x, 500, 2, &y, 5);
        let forest = cross_validate(|| RandomForest::new(25, 10, 1, 3), &x, 500, 2, &y, 5);
        assert!(
            forest.rmse < single.rmse,
            "forest {} !< tree {}",
            forest.rmse,
            single.rmse
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = noisy_step(3, 200);
        let mut a = RandomForest::new(10, 5, 2, 42);
        let mut b = RandomForest::new(10, 5, 2, 42);
        a.fit(&x, 200, 2, &y);
        b.fit(&x, 200, 2, &y);
        for probe in [[0.1, 0.1], [0.6, 0.9], [0.5, 0.5]] {
            assert_eq!(a.predict(&probe), b.predict(&probe));
        }
    }

    #[test]
    fn single_tree_forest_equals_bagged_tree_shape() {
        // With one tree the forest is just a (bootstrap) tree; its
        // training error stays in the same ballpark.
        let (x, y) = noisy_step(4, 300);
        let mut f = RandomForest::new(1, 6, 3, 1);
        f.fit(&x, 300, 2, &y);
        let preds: Vec<f64> = (0..300).map(|r| f.predict(&x[r * 2..r * 2 + 2])).collect();
        assert!(rmse(&preds, &y) < 40.0);
    }

    #[test]
    #[should_panic(expected = "fit before predict")]
    fn predict_before_fit_panics() {
        RandomForest::new(5, 4, 2, 1).predict(&[0.0]);
    }
}
