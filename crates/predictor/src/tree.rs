//! Regression-tree power predictor: handles the interaction effects
//! (user × application × geometry) that a linear model misses, the way
//! the ML models of [17]/[18] do.

use crate::Regressor;

/// A binary regression tree node.
#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// CART-style regression tree (variance-reduction splits).
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionTree {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples in a leaf.
    pub min_leaf: usize,
    cols: usize,
    root: Option<Node>,
}

impl RegressionTree {
    /// New tree with the given capacity controls.
    pub fn new(max_depth: usize, min_leaf: usize) -> Self {
        assert!(max_depth >= 1 && min_leaf >= 1);
        RegressionTree {
            max_depth,
            min_leaf,
            cols: 0,
            root: None,
        }
    }

    /// Number of leaves (diagnostics).
    pub fn leaf_count(&self) -> usize {
        fn count(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        self.root.as_ref().map_or(0, count)
    }

    fn build(&self, x: &[f64], y: &[f64], idx: &mut [usize], depth: usize) -> Node {
        let mean = idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len() as f64;
        if depth >= self.max_depth || idx.len() < 2 * self.min_leaf {
            return Node::Leaf { value: mean };
        }
        // Find the best split by variance reduction.
        let total_sse: f64 = idx.iter().map(|&i| (y[i] - mean).powi(2)).sum();
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
        for f in 0..self.cols {
            // Sort indices by this feature.
            let mut order: Vec<usize> = idx.to_vec();
            order.sort_by(|&a, &b| x[a * self.cols + f].total_cmp(&x[b * self.cols + f]));
            // Prefix sums for O(n) split evaluation.
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            let total_sum: f64 = order.iter().map(|&i| y[i]).sum();
            let total_sq: f64 = order.iter().map(|&i| y[i] * y[i]).sum();
            for (k, &i) in order.iter().enumerate().take(order.len() - 1) {
                left_sum += y[i];
                left_sq += y[i] * y[i];
                let nl = (k + 1) as f64;
                let nr = (order.len() - k - 1) as f64;
                if (k + 1) < self.min_leaf || (order.len() - k - 1) < self.min_leaf {
                    continue;
                }
                let xv = x[i * self.cols + f];
                let xnext = x[order[k + 1] * self.cols + f];
                if xv == xnext {
                    continue; // cannot split between equal values
                }
                let right_sum = total_sum - left_sum;
                let right_sq = total_sq - left_sq;
                let sse =
                    (left_sq - left_sum * left_sum / nl) + (right_sq - right_sum * right_sum / nr);
                if best.is_none_or(|(_, _, b)| sse < b) {
                    best = Some((f, 0.5 * (xv + xnext), sse));
                }
            }
        }
        match best {
            Some((feature, threshold, sse)) if sse < total_sse - 1e-12 => {
                let (mut li, mut ri): (Vec<usize>, Vec<usize>) = idx
                    .iter()
                    .partition(|&&i| x[i * self.cols + feature] <= threshold);
                let left = self.build(x, y, &mut li, depth + 1);
                let right = self.build(x, y, &mut ri, depth + 1);
                Node::Split {
                    feature,
                    threshold,
                    left: Box::new(left),
                    right: Box::new(right),
                }
            }
            _ => Node::Leaf { value: mean },
        }
    }
}

impl Regressor for RegressionTree {
    fn fit(&mut self, x: &[f64], rows: usize, cols: usize, y: &[f64]) {
        assert_eq!(x.len(), rows * cols);
        assert_eq!(y.len(), rows);
        assert!(rows >= 1);
        self.cols = cols;
        let mut idx: Vec<usize> = (0..rows).collect();
        self.root = Some(self.build(x, y, &mut idx, 0));
    }

    fn predict(&self, features: &[f64]) -> f64 {
        let mut node = self.root.as_ref().expect("fit before predict");
        loop {
            match node {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if features[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use davide_core::rng::Rng;

    #[test]
    fn learns_step_function() {
        // y = 100 for x < 0.5, 200 otherwise.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            let v = i as f64 / 100.0;
            x.push(v);
            y.push(if v < 0.5 { 100.0 } else { 200.0 });
        }
        let mut t = RegressionTree::new(3, 5);
        t.fit(&x, 100, 1, &y);
        assert!((t.predict(&[0.2]) - 100.0).abs() < 1e-9);
        assert!((t.predict(&[0.8]) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn captures_interaction_linear_model_cannot() {
        // y = 100 + 400·a·b — a multiplicative interaction (user × app in
        // the power-prediction setting) that needs two levels of splits.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for a in [0.0, 1.0] {
            for b in [0.0, 1.0] {
                for _ in 0..10 {
                    x.extend([a, b]);
                    y.push(100.0 + 400.0 * a * b);
                }
            }
        }
        let mut t = RegressionTree::new(4, 2);
        t.fit(&x, 40, 2, &y);
        assert!((t.predict(&[1.0, 1.0]) - 500.0).abs() < 1e-9);
        assert!((t.predict(&[0.0, 1.0]) - 100.0).abs() < 1e-9);
        assert!((t.predict(&[1.0, 0.0]) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn depth_limit_bounds_leaves() {
        let mut rng = Rng::seed_from(1);
        let rows = 200;
        let x: Vec<f64> = (0..rows).map(|_| rng.uniform()).collect();
        let y: Vec<f64> = x.iter().map(|v| v * 100.0).collect();
        let mut shallow = RegressionTree::new(2, 1);
        shallow.fit(&x, rows, 1, &y);
        assert!(shallow.leaf_count() <= 4);
        let mut deep = RegressionTree::new(6, 1);
        deep.fit(&x, rows, 1, &y);
        assert!(deep.leaf_count() > shallow.leaf_count());
    }

    #[test]
    fn constant_target_gives_single_leaf() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = vec![7.0; 4];
        let mut t = RegressionTree::new(5, 1);
        t.fit(&x, 4, 1, &y);
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.predict(&[99.0]), 7.0);
    }

    #[test]
    fn min_leaf_respected() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..10).map(|i| i as f64 * 10.0).collect();
        let mut t = RegressionTree::new(10, 5);
        t.fit(&x, 10, 1, &y);
        // With min_leaf 5 on 10 points there can be at most one split.
        assert!(t.leaf_count() <= 2);
    }
}
