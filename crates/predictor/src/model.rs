//! Runtime model selection.
//!
//! The scheduler and the control plane pick a predictor family from
//! configuration rather than at compile time: [`ModelKind`] names each
//! family with its hyper-parameters and [`ModelKind::build`] returns a
//! boxed [`Regressor`] ready to fit.

use crate::forest::RandomForest;
use crate::knn::KnnRegressor;
use crate::linreg::RidgeRegression;
use crate::online::RlsPredictor;
use crate::Regressor;
use serde::{Deserialize, Serialize};

/// A predictor family plus its hyper-parameters, selectable at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ModelKind {
    /// Ridge regression with L2 penalty `lambda`.
    Linreg {
        /// Regularisation strength λ ≥ 0.
        lambda: f64,
    },
    /// Bagged regression forest.
    Forest {
        /// Number of trees.
        trees: usize,
        /// Maximum tree depth.
        max_depth: usize,
        /// Minimum samples per leaf.
        min_leaf: usize,
        /// Bootstrap seed.
        seed: u64,
    },
    /// k-nearest-neighbour regression.
    Knn {
        /// Neighbourhood size.
        k: usize,
    },
    /// Online recursive least squares with forgetting factor `lambda`
    /// and prior covariance scale `delta`.
    Online {
        /// Forgetting factor λ ∈ (0.5, 1].
        lambda: f64,
        /// Initial covariance `P = δ·I`.
        delta: f64,
    },
}

impl ModelKind {
    /// The four families at their default hyper-parameters, in the
    /// order experiments report them.
    pub const ALL: [ModelKind; 4] = [
        ModelKind::Linreg { lambda: 1.0 },
        ModelKind::Forest {
            trees: 30,
            max_depth: 8,
            min_leaf: 4,
            seed: 11,
        },
        ModelKind::Knn { k: 7 },
        ModelKind::Online {
            lambda: 0.995,
            delta: 1000.0,
        },
    ];

    /// Default ridge model.
    pub fn linreg() -> Self {
        Self::ALL[0]
    }

    /// Default forest model.
    pub fn forest() -> Self {
        Self::ALL[1]
    }

    /// Default k-NN model.
    pub fn knn() -> Self {
        Self::ALL[2]
    }

    /// Default online RLS model.
    pub fn online() -> Self {
        Self::ALL[3]
    }

    /// Short family name, matching [`Regressor::name`] of the built model.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Linreg { .. } => "ridge",
            ModelKind::Forest { .. } => "forest",
            ModelKind::Knn { .. } => "knn",
            ModelKind::Online { .. } => "rls",
        }
    }

    /// Parse a family name (`linreg`/`ridge`, `forest`, `knn`,
    /// `online`/`rls`) at default hyper-parameters.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "linreg" | "ridge" => Some(Self::linreg()),
            "forest" => Some(Self::forest()),
            "knn" => Some(Self::knn()),
            "online" | "rls" => Some(Self::online()),
            _ => None,
        }
    }

    /// Instantiate the model behind an object-safe [`Regressor`].
    pub fn build(&self) -> Box<dyn Regressor> {
        match *self {
            ModelKind::Linreg { lambda } => Box::new(RidgeRegression::new(lambda)),
            ModelKind::Forest {
                trees,
                max_depth,
                min_leaf,
                seed,
            } => Box::new(RandomForest::new(trees, max_depth, min_leaf, seed)),
            ModelKind::Knn { k } => Box::new(KnnRegressor::new(k)),
            ModelKind::Online { lambda, delta } => Box::new(RlsPredictor::new(1, lambda, delta)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Vec<f64>, usize, usize, Vec<f64>) {
        // y = 3a + 2 on a 1-D grid with a bias column.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let a = i as f64 / 10.0;
            x.extend_from_slice(&[a, 1.0]);
            y.push(3.0 * a + 2.0);
        }
        (x, 40, 2, y)
    }

    #[test]
    fn every_kind_builds_fits_and_predicts() {
        let (x, rows, cols, y) = toy();
        for kind in ModelKind::ALL {
            let mut model = kind.build();
            model.fit(&x, rows, cols, &y);
            let pred = model.predict(&[2.0, 1.0]);
            assert!(
                (pred - 8.0).abs() < 1.5,
                "{} predicted {pred}",
                model.name()
            );
            assert_eq!(model.name(), kind.name());
        }
    }

    #[test]
    fn parse_round_trips_names() {
        for kind in ModelKind::ALL {
            assert_eq!(ModelKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(ModelKind::parse("linreg"), Some(ModelKind::linreg()));
        assert_eq!(ModelKind::parse("online"), Some(ModelKind::online()));
        assert_eq!(ModelKind::parse("nope"), None);
    }
}
