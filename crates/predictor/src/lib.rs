//! # davide-predictor
//!
//! Per-job power predictors trained on historical traces (§III-A2 of the
//! paper and its references [17][18]): the machine-learning engine the
//! D.A.V.I.D.E. job scheduler consults before admitting a job under a
//! system power cap.
//!
//! * [`features`] — submission-time feature extraction (user, app,
//!   geometry, walltime, time of day);
//! * [`linalg`] — Cholesky SPD solves for the normal equations;
//! * [`linreg`] — ridge regression; [`knn`] — k-nearest neighbours;
//!   [`tree`] — CART-style regression tree; [`forest`] — bagged trees;
//!   [`online`] — recursive least squares for streaming retraining;
//! * [`eval`] — MAPE/RMSE/MAE/R² and k-fold cross-validation.

#![warn(missing_docs)]

pub mod eval;
pub mod features;
pub mod forest;
pub mod knn;
pub mod linalg;
pub mod linreg;
pub mod model;
pub mod online;
pub mod tree;

/// A trainable power predictor over row-major feature matrices.
pub trait Regressor {
    /// Fit on `rows × cols` design matrix `x` and targets `y`.
    fn fit(&mut self, x: &[f64], rows: usize, cols: usize, y: &[f64]);
    /// Predict the target for one feature vector.
    fn predict(&self, features: &[f64]) -> f64;
    /// Short model name for reports.
    fn name(&self) -> &'static str;
}

pub use eval::{cross_validate, mape, r2, rmse, CvReport};
pub use features::{FeatureEncoder, JobDescriptor};
pub use forest::RandomForest;
pub use knn::KnnRegressor;
pub use linreg::RidgeRegression;
pub use model::ModelKind;
pub use online::RlsPredictor;
pub use tree::RegressionTree;
