//! Feature extraction from job-submission metadata.
//!
//! §III-A2 / [17][18]: "job power consumption can be estimated before job
//! execution, based on user's request and at job submission information".
//! The features available at submission time are: who submits, which
//! application, the requested geometry (nodes, GPUs, cores) and walltime,
//! and when it was submitted.

use serde::{Deserialize, Serialize};

/// Submission-time job description (everything the predictor may see).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobDescriptor {
    /// Submitting user.
    pub user_id: u32,
    /// Application index (e.g. `AppKind as u8`).
    pub app_id: u32,
    /// Nodes requested.
    pub nodes: u32,
    /// GPUs per node requested.
    pub gpus_per_node: u32,
    /// Cores per socket requested.
    pub cores_per_socket: u32,
    /// Requested walltime, seconds.
    pub walltime_s: f64,
    /// Submission hour of day (0–24).
    pub submit_hour: f64,
}

/// One-hot + numeric feature encoder with fixed vocabulary sizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureEncoder {
    /// Number of distinct users one-hot encoded (ids ≥ n_users share a
    /// catch-all slot).
    pub n_users: usize,
    /// Number of distinct applications.
    pub n_apps: usize,
}

impl FeatureEncoder {
    /// Encoder for a site with `n_users` users and `n_apps` applications.
    pub fn new(n_users: usize, n_apps: usize) -> Self {
        assert!(n_users >= 1 && n_apps >= 1);
        FeatureEncoder { n_users, n_apps }
    }

    /// Length of the produced feature vector.
    pub fn dim(&self) -> usize {
        // users + apps + [bias, nodes, gpus, cores, log-walltime, hour-sin, hour-cos]
        self.n_users + 1 + self.n_apps + 1 + 7
    }

    /// Encode a job into a feature vector.
    pub fn encode(&self, job: &JobDescriptor) -> Vec<f64> {
        let mut v = vec![0.0; self.dim()];
        let user_slot = (job.user_id as usize).min(self.n_users);
        v[user_slot] = 1.0;
        let app_slot = self.n_users + 1 + (job.app_id as usize).min(self.n_apps);
        v[app_slot] = 1.0;
        let base = self.n_users + 1 + self.n_apps + 1;
        v[base] = 1.0; // bias
        v[base + 1] = job.nodes as f64 / 45.0;
        v[base + 2] = job.gpus_per_node as f64 / 4.0;
        v[base + 3] = job.cores_per_socket as f64 / 8.0;
        v[base + 4] = (job.walltime_s.max(1.0)).ln() / 12.0;
        let theta = 2.0 * std::f64::consts::PI * job.submit_hour / 24.0;
        v[base + 5] = theta.sin();
        v[base + 6] = theta.cos();
        v
    }

    /// Encode a whole batch into a row-major design matrix.
    pub fn encode_batch(&self, jobs: &[JobDescriptor]) -> Vec<f64> {
        let mut x = Vec::with_capacity(jobs.len() * self.dim());
        for j in jobs {
            x.extend(self.encode(j));
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> JobDescriptor {
        JobDescriptor {
            user_id: 3,
            app_id: 1,
            nodes: 9,
            gpus_per_node: 4,
            cores_per_socket: 8,
            walltime_s: 3600.0,
            submit_hour: 14.5,
        }
    }

    #[test]
    fn dimension_is_consistent() {
        let enc = FeatureEncoder::new(10, 4);
        assert_eq!(enc.encode(&job()).len(), enc.dim());
        assert_eq!(enc.dim(), 10 + 1 + 4 + 1 + 7);
    }

    #[test]
    fn one_hot_slots() {
        let enc = FeatureEncoder::new(10, 4);
        let v = enc.encode(&job());
        assert_eq!(v[3], 1.0, "user 3 one-hot");
        assert_eq!(v.iter().take(11).sum::<f64>(), 1.0, "single user slot");
        assert_eq!(v[11 + 1], 1.0, "app 1 one-hot");
    }

    #[test]
    fn unknown_user_hits_catchall() {
        let enc = FeatureEncoder::new(5, 4);
        let mut j = job();
        j.user_id = 999;
        let v = enc.encode(&j);
        assert_eq!(v[5], 1.0, "catch-all slot");
    }

    #[test]
    fn numeric_features_scaled() {
        let enc = FeatureEncoder::new(5, 4);
        let v = enc.encode(&job());
        let base = 5 + 1 + 4 + 1;
        assert_eq!(v[base], 1.0, "bias");
        assert!((v[base + 1] - 0.2).abs() < 1e-12, "9/45 nodes");
        assert_eq!(v[base + 2], 1.0, "4/4 gpus");
        // Hour encoding is on the unit circle.
        let (s, c) = (v[base + 5], v[base + 6]);
        assert!((s * s + c * c - 1.0).abs() < 1e-12);
    }

    #[test]
    fn batch_is_concatenation() {
        let enc = FeatureEncoder::new(5, 4);
        let jobs = vec![job(), job()];
        let x = enc.encode_batch(&jobs);
        assert_eq!(x.len(), 2 * enc.dim());
        assert_eq!(&x[..enc.dim()], &x[enc.dim()..]);
    }
}
