//! The differential proof of the kernel refactor: the event-driven
//! harness must reproduce the lockstep harness **bit for bit**.
//!
//! The digests below were recorded by running the pre-kernel lockstep
//! harness over the canned scenario set at seed 2026 and pinning each
//! run's `EventLog::digest()`. The kernel rewrite is only allowed to
//! change *how* the schedule is computed, never *what* happens or when:
//! every frame fate, DVFS command, placement, completion and fault
//! transition must land at the same instant with the same float bits,
//! or the digest moves.
//!
//! If a deliberate behaviour change ever invalidates these values,
//! re-pin them in the same PR as the change with an explanation — a
//! silent update here defeats the whole test.

use davide_sim::{canned, run};

/// `(scenario name, lockstep-harness digest)` at seed 2026.
const LOCKSTEP_DIGESTS: &[(&str, u64)] = &[
    ("baseline", 0x7bf0ee6e0d5b3ac1),
    ("gateway_dropout", 0x02088437b737b0cc),
    ("lossy_links", 0x49df9da782d986e1),
    ("reordered_frames", 0x8f0fd11f40ccbf41),
    ("clock_faults", 0x6cf7364dbf1165e0),
    ("broker_restart", 0x8bfc332f5c326cd5),
    ("node_death", 0xedf6aea28930c127),
];

#[test]
fn event_kernel_reproduces_every_lockstep_digest() {
    let scenarios = canned(2026);
    assert_eq!(
        scenarios.len(),
        LOCKSTEP_DIGESTS.len(),
        "a new canned scenario needs its digest pinned here"
    );
    for sc in scenarios {
        let out = run(&sc);
        let (_, want) = LOCKSTEP_DIGESTS
            .iter()
            .find(|(name, _)| *name == sc.name)
            .unwrap_or_else(|| panic!("no pinned digest for scenario {:?}", sc.name));
        assert_eq!(
            out.log.digest(),
            *want,
            "scenario {:?} diverged from the lockstep harness \
             ({} events, got {:#018x}, pinned {:#018x})",
            sc.name,
            out.log.len(),
            out.log.digest(),
            want,
        );
        assert_eq!(
            out.violations,
            Vec::new(),
            "canned scenario {:?} must hold every invariant",
            sc.name
        );
    }
}

#[test]
fn canned_digests_are_seed_sensitive() {
    // The digests above prove equivalence only if they actually pin the
    // run: a different seed must move every one of them.
    for sc in canned(2027) {
        let out = run(&sc);
        let pinned = LOCKSTEP_DIGESTS
            .iter()
            .find(|(name, _)| *name == sc.name)
            .map(|(_, d)| *d)
            .unwrap();
        assert_ne!(
            out.log.digest(),
            pinned,
            "scenario {:?} produced the seed-2026 digest at seed 2027",
            sc.name
        );
    }
}
