//! Property tests over the event kernel and the multi-rack federation.
//!
//! Three families, matching the determinism and conservation claims the
//! harness makes:
//!
//! * the kernel dispatches in strictly increasing `(time, class, seq)`
//!   order and never loses or invents an event, for arbitrary schedules;
//! * a federated run is a pure function of its seed: same scenario →
//!   bit-identical rack logs and federation log (one digest);
//! * the federator's global energy ledger equals the sum of the racks'
//!   ground-truth ledgers — INV-ENERGY composes across the federation.

use davide_core::time::SimTime;
use davide_sim::federation::{run_federated, FedScenario};
use davide_sim::kernel::EventQueue;
use davide_sim::Fault;
use proptest::prelude::*;

/// A federation small enough to run hundreds of times in a test, big
/// enough to exercise bridges, rebalancing and termination.
fn tiny_fed(seed: u64, n_racks: usize) -> FedScenario {
    let mut fs = FedScenario::base("prop_fed", seed, n_racks);
    fs.rack.n_jobs = 3;
    fs.rack.n_history = 120;
    fs.rack.mean_walltime_s = 400.0;
    fs.rack.mean_interarrival_s = 80.0;
    fs
}

proptest! {
    /// Arbitrary schedules dispatch monotonically: every pop's full
    /// `(time, class, seq)` key is strictly greater than the previous
    /// one, same-key-prefix events come out in insertion order, and
    /// nothing is lost.
    #[test]
    fn kernel_never_dispatches_out_of_timestamp_order(
        raw in proptest::collection::vec(0u64..10_000, 1..300),
    ) {
        let mut q: EventQueue<usize> = EventQueue::new();
        for (i, &x) in raw.iter().enumerate() {
            // Low bits pick the phase class, the rest the instant, so
            // collisions in both time and class are common.
            q.schedule(SimTime(x / 8), (x % 8) as u8, i);
        }
        let mut popped: Vec<(SimTime, u8, usize)> = Vec::new();
        let mut prev_key = None;
        while let Some(ev) = q.pop() {
            let key = q.last_key().expect("set by pop");
            if let Some(p) = prev_key {
                prop_assert!(key > p, "dispatch went backwards: {key:?} after {p:?}");
            }
            prev_key = Some(key);
            popped.push(ev);
        }
        prop_assert_eq!(popped.len(), raw.len(), "no event lost or invented");
        prop_assert_eq!(q.dispatched(), raw.len() as u64);
        // Stability: among events sharing (time, class), payload order
        // is insertion order.
        for w in popped.windows(2) {
            if w[0].0 == w[1].0 && w[0].1 == w[1].1 {
                prop_assert!(w[0].2 < w[1].2, "tie broken against insertion order");
            }
        }
    }

    /// A federated run is a pure function of its seed, and the site
    /// energy ledger conserves against the racks' ground truth.
    #[test]
    fn federation_is_seed_stable_and_conserves_energy(
        seed in 1u64..100_000,
        n_racks in 2usize..4,
    ) {
        let fs = tiny_fed(seed, n_racks);
        let a = run_federated(&fs);
        let b = run_federated(&fs);
        prop_assert_eq!(a.digest(), b.digest(), "seed {seed}: rerun diverged");
        prop_assert_eq!(a.fed_log.events(), b.fed_log.events());
        for (ra, rb) in a.racks.iter().zip(&b.racks) {
            prop_assert_eq!(ra.log.events(), rb.log.events());
        }

        // Global INV-ENERGY: the federator integrates the same draw the
        // racks integrate, so the ledgers agree to float roundoff.
        let racks_j = a.racks_energy_j();
        prop_assert!(
            (a.global_energy_j - racks_j).abs() <= 1e-9 * racks_j.abs() + 1e-6,
            "seed {seed}: site ledger {} J vs Σ racks {racks_j} J",
            a.global_energy_j
        );
        prop_assert!(
            !a.all_violations().iter().any(|(_, v)| v.invariant == "fed-energy"),
            "seed {seed}: fed-energy violation on a healthy run"
        );
    }
}

proptest! {
    /// Sabotaged federation: disarm the stale-telemetry fallback and
    /// drop every gateway out mid-run, so INV-STALE reliably fires and
    /// the flight recorder dumps its ring. The dump is part of the
    /// determinism contract: two same-seed runs must produce
    /// byte-identical snapshots, rack by rack.
    #[test]
    fn tripped_flight_dumps_are_bit_identical(seed in 1u64..50_000) {
        let mut fs = tiny_fed(seed, 2);
        fs.name = "prop_fed_trip".to_string();
        fs.rack.disable_stale_fallback = true;
        fs.rack.faults = (0..fs.rack.n_nodes)
            .map(|node| Fault::Dropout { node, from_s: 30.0, until_s: 1e9 })
            .collect();
        let a = run_federated(&fs);
        let b = run_federated(&fs);
        prop_assert!(
            a.racks.iter().any(|r| r.flight_dump.is_some()),
            "seed {seed}: sabotage tripped no rack's recorder"
        );
        for (ra, rb) in a.racks.iter().zip(&b.racks) {
            prop_assert_eq!(
                &ra.flight_dump, &rb.flight_dump,
                "seed {seed}: flight dumps diverged"
            );
        }
    }
}

#[test]
fn different_seeds_diverge() {
    let a = run_federated(&tiny_fed(7, 2));
    let b = run_federated(&tiny_fed(8, 2));
    assert_ne!(a.digest(), b.digest(), "reseeding must move the digest");
}
