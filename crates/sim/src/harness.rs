//! The harness: a fault-injecting synthetic plant around the real loop.
//!
//! One [`run`] builds the full production stack — in-process MQTT
//! broker, [`ControlPlane`] with its ingest/store/predictor/actuators —
//! and drives it from a virtual clock: gateways render noisy per-node
//! power frames from plant ground truth, the scenario's fault script
//! mangles them (loss, duplication, reordering, clock faults, broker
//! restart, node death), DVFS commands flow back and reshape the plant.
//! The [`InvariantChecker`] audits every control period against ground
//! truth the loop cannot see, and every externally meaningful action
//! lands in the [`EventLog`], which is bit-identical across reruns of
//! one seed.

use std::collections::HashMap;
use std::sync::Arc;

use davide_core::rng::Rng;
use davide_mqtt::{Broker, BrokerObs, PublishFate, QoS};
use davide_obs::ObsHub;
use davide_predictor::ModelKind;
use davide_sched::{
    CapSchedule, ControlPlane, ControlPlaneConfig, ControlPlaneObs, ControlPlaneReport, JobId,
    OnlinePowerPredictor, PowerPredictor, WorkloadConfig, WorkloadGenerator,
};
use davide_telemetry::gateway::{power_topic, SampleFrame, FRAME_MAGIC};
use davide_telemetry::{TsDb, TsDbConfig};
use parking_lot::Mutex;

use crate::clock::VirtualClock;
use crate::invariants::{
    CheckerConfig, FinalTruth, InvariantChecker, JobTruth, StoreModel, TickTruth, Violation,
};
use crate::log::{Event, EventLog, FrameFate};
use crate::scenario::{Fault, Scenario};

/// Ground-truth accounting a run hands back (the plant's view, which
/// the control plane never sees).
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Facility energy, joules.
    pub total_energy_j: f64,
    /// Energy drawn by nodes with no job, joules.
    pub idle_energy_j: f64,
    /// Per-node energy, joules.
    pub per_node_energy_j: Vec<f64>,
    /// True time above the cap, seconds.
    pub overcap_s: f64,
    /// True energy above the cap, joules.
    pub overcap_energy_j: f64,
    /// Per-job truth ledgers, in placement order.
    pub jobs: Vec<JobTruth>,
    /// Jobs killed by node deaths.
    pub aborted_jobs: u64,
    /// Gateway frames that reached the broker (duplicates once).
    pub frames_delivered: u64,
    /// Gateway frames suppressed or lost by the fault script.
    pub frames_suppressed: u64,
    /// Final virtual time, seconds.
    pub makespan_s: f64,
}

/// Everything one harness run produces.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Scenario name, echoed for reports.
    pub scenario: String,
    /// The loop's own end-of-run report.
    pub report: ControlPlaneReport,
    /// The deterministic event log.
    pub log: EventLog,
    /// Every invariant violation the checker found (empty on a healthy
    /// run).
    pub violations: Vec<Violation>,
    /// Plant ground truth.
    pub truth: GroundTruth,
    /// The run's self-observability hub: every broker / ingest /
    /// control-loop instrument, stamped off the virtual clock. Not part
    /// of the event log, so the digest contract is untouched — but the
    /// rendered exposition is itself bit-identical across reruns of one
    /// seed.
    pub obs: ObsHub,
}

/// A frame-loss/duplication rule compiled for the broker fault hook.
#[derive(Debug, Clone, Copy)]
struct LossRule {
    node: Option<u32>,
    p_drop: f64,
    p_dup: f64,
    from_s: f64,
    until_s: f64,
}

/// State shared with the broker's fault hook. The hook runs inside
/// `publish`; the harness sets `t_s` each tick and takes the fate the
/// hook recorded right after each gateway publish.
struct HookState {
    rng: Rng,
    t_s: f64,
    rules: Vec<LossRule>,
    last: Option<PublishFate>,
}

/// A reordered frame waiting in the injector's delay line.
struct DelayedFrame {
    due_s: f64,
    node: u32,
    frame: SampleFrame,
    /// True end of the window the frame measured (freshness truth).
    true_end_s: f64,
}

/// A job on the plant: ground truth the control plane cannot see.
struct PlantJob {
    id: JobId,
    nodes: Vec<u32>,
    /// True mean per-node power at full speed, after drift.
    node_w: f64,
    /// Work left, in nominal-speed seconds.
    remaining_s: f64,
}

fn window_active(from_s: f64, until_s: f64, t: f64) -> bool {
    from_s <= t && t < until_s
}

/// Standard normal via Box–Muller on the plant RNG (same recipe as the
/// E22 replay plant, so plants are comparable across harnesses).
fn gauss(rng: &mut Rng) -> f64 {
    let u1 = rng.uniform().max(1e-12);
    let u2 = rng.uniform();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Node id from `davide/node{NN}/power/{channel}` topics; `None`
/// otherwise (the hook must leave control traffic alone).
fn parse_power_node(topic: &str) -> Option<u32> {
    let mut parts = topic.split('/');
    if parts.next() != Some("davide") {
        return None;
    }
    let node = parts.next()?.strip_prefix("node")?;
    if parts.next() != Some("power") {
        return None;
    }
    node.parse().ok()
}

/// Execute one scenario to completion and return the outcome. Pure in
/// the seed: no wall clock, no global state — two calls with an equal
/// [`Scenario`] return bit-identical event logs.
pub fn run(sc: &Scenario) -> RunOutcome {
    run_with_db_config(sc, TsDbConfig::default())
}

/// [`run`] with an explicit telemetry-store configuration for the
/// control plane — the hook the tiered-storage proof uses to show the
/// event-log digest of every canned scenario is unchanged when the
/// store seals, compresses and demotes under the loop.
pub fn run_with_db_config(sc: &Scenario, db_cfg: TsDbConfig) -> RunOutcome {
    assert!(sc.n_nodes >= 1 && sc.tick_s > 0.0 && sc.sample_dt_s > 0.0);
    let n = sc.n_nodes as usize;
    let tick = sc.tick_s;

    // ── Trace and predictor, exactly as the E22 replay builds them. ──
    let workload = WorkloadConfig {
        users: 12,
        mean_interarrival_s: sc.mean_interarrival_s,
        max_nodes: sc.max_job_nodes.min(sc.n_nodes),
        mean_walltime_s: sc.mean_walltime_s,
        ..WorkloadConfig::default()
    };
    let mut gen = WorkloadGenerator::new(workload.clone(), sc.seed);
    let history = gen.trace(sc.n_history);
    let mut trace = gen.trace(sc.n_jobs);
    let t_base = trace.first().map(|j| j.submit_s).unwrap_or(0.0);
    for j in &mut trace {
        j.submit_s -= t_base;
    }
    let base = PowerPredictor::from_kind(ModelKind::linreg(), &history, workload.users as usize);
    let predictor = OnlinePowerPredictor::new(base, 0.995, 1000.0);

    // ── The real stack under test. ──
    let mut cfg = ControlPlaneConfig::davide(sc.mode, sc.n_nodes, CapSchedule::constant(sc.cap_w));
    if sc.disable_stale_fallback {
        // Regression knob: the loop stops noticing staleness while the
        // checker keeps auditing against the nominal deadline.
        cfg.telemetry_deadline_s = 1e18;
    } else {
        cfg.telemetry_deadline_s = sc.deadline_s;
    }
    let band_w = cfg.band_w;
    let sustain_s = cfg.sustain_s;
    let idle_w = cfg.idle_node_power_w;
    let broker = Broker::new(1 << 16);
    let db = TsDb::with_config(db_cfg).expect("telemetry store (disk tier open)");
    let mut cp =
        ControlPlane::with_db(&broker, cfg, predictor, db).expect("subscribe on fresh broker");
    // Self-instrumentation is always armed: every stamp reads the
    // virtual clock, and nothing here draws RNG or touches the event
    // log, so per-seed digests are exactly what they were without it.
    let (hub, obs_clock) = ObsHub::manual();
    broker.set_obs(Some(BrokerObs::new(&hub, Some(&FRAME_MAGIC.to_le_bytes()))));
    cp.set_obs(ControlPlaneObs::new(&hub));
    let mut ctl_watch = broker.connect("plant-gateways");
    ctl_watch
        .subscribe("davide/+/ctl/speed", QoS::AtMostOnce)
        .expect("subscribe ctl");
    let gateway = broker.connect("plant-publisher");

    // ── Fault hook: loss and duplication on the gateway→broker hop. ──
    let rules: Vec<LossRule> = sc
        .faults
        .iter()
        .filter_map(|f| match *f {
            Fault::FrameLoss {
                node,
                p,
                from_s,
                until_s,
            } => Some(LossRule {
                node,
                p_drop: p,
                p_dup: 0.0,
                from_s,
                until_s,
            }),
            Fault::Duplicate {
                node,
                p,
                from_s,
                until_s,
            } => Some(LossRule {
                node,
                p_drop: 0.0,
                p_dup: p,
                from_s,
                until_s,
            }),
            _ => None,
        })
        .collect();
    let hook_state = Arc::new(Mutex::new(HookState {
        rng: Rng::seed_from(sc.seed ^ 0xd1b5_4a32_d192_ed03),
        t_s: 0.0,
        rules,
        last: None,
    }));
    {
        let state = Arc::clone(&hook_state);
        broker.set_fault_hook(Some(Box::new(move |topic: &str| {
            let mut st = state.lock();
            let Some(node) = parse_power_node(topic) else {
                return PublishFate::Deliver;
            };
            let t = st.t_s;
            let mut fate = PublishFate::Deliver;
            for k in 0..st.rules.len() {
                let r = st.rules[k];
                if !window_active(r.from_s, r.until_s, t) || r.node.is_some_and(|rn| rn != node) {
                    continue;
                }
                if r.p_drop > 0.0 && st.rng.chance(r.p_drop) {
                    fate = PublishFate::Drop;
                }
                if r.p_dup > 0.0 && st.rng.chance(r.p_dup) && fate == PublishFate::Deliver {
                    fate = PublishFate::Duplicate;
                }
            }
            st.last = Some(fate);
            fate
        })));
    }

    // ── Plant state. ──
    let mut clock = VirtualClock::new(tick);
    let mut plant_rng = Rng::seed_from(sc.seed ^ 0x9e37_79b9);
    let mut inject_rng = Rng::seed_from(sc.seed ^ 0xa076_1d64_78bd_642f);
    let mut speeds = vec![1.0f64; n];
    let mut node_draw_w = vec![idle_w; n];
    let mut dead = vec![false; n];
    let mut clock_offset = vec![0.0f64; n];
    let mut clock_faulted = vec![false; n];
    let mut delivered_until = vec![f64::NEG_INFINITY; n];
    let mut dirty: Vec<Vec<(f64, f64)>> = vec![Vec::new(); n];
    let mut per_node_energy = vec![0.0f64; n];
    let mut step_fired = vec![false; sc.faults.len()];
    let mut plant: Vec<PlantJob> = Vec::new();
    let mut delay_buf: Vec<DelayedFrame> = Vec::new();
    let mut jobs: Vec<JobTruth> = Vec::new();
    let mut job_index: HashMap<JobId, usize> = HashMap::new();
    let by_id: HashMap<JobId, davide_sched::Job> =
        trace.iter().map(|j| (j.id, j.clone())).collect();
    let drift = |job: &davide_sched::Job| sc.app_drift[job.app as usize];

    let mut model = StoreModel::new(n);
    let mut checker = InvariantChecker::new(CheckerConfig {
        n_nodes: sc.n_nodes,
        cap_w: sc.cap_w,
        band_w,
        sustain_s,
        deadline_s: sc.deadline_s,
        cap_grace_s: sc.cap_grace_s,
        tick_s: tick,
        noise: sc.noise,
        sample_dt_s: sc.sample_dt_s,
    });
    let mut log = EventLog::new();

    let mut broker_down = false;
    let mut next_submit = 0usize;
    let mut total_energy_j = 0.0;
    let mut idle_energy_j = 0.0;
    let mut overcap_s = 0.0;
    let mut overcap_energy_j = 0.0;
    let mut frames_delivered = 0u64;
    let mut frames_suppressed = 0u64;
    let samples = (tick / sc.sample_dt_s).round().max(1.0) as usize;

    // Deliver one frame through the broker, attribute its fate, and
    // mirror what the store is entitled to absorb.
    let publish_frame = |t: f64,
                         node: u32,
                         frame: &SampleFrame,
                         true_end_s: f64,
                         late: bool,
                         log: &mut EventLog,
                         model: &mut StoreModel,
                         delivered_until: &mut [f64],
                         dirty: &mut [Vec<(f64, f64)>],
                         frames_delivered: &mut u64,
                         frames_suppressed: &mut u64| {
        hook_state.lock().t_s = t;
        let _ = gateway.publish(
            &power_topic(node, "node"),
            frame.encode(),
            QoS::AtMostOnce,
            false,
        );
        let fate = hook_state
            .lock()
            .last
            .take()
            .expect("hook sees every power publish");
        let logged = match fate {
            PublishFate::Drop => FrameFate::Lost,
            PublishFate::Duplicate => FrameFate::Duplicated,
            PublishFate::Deliver if late => FrameFate::DeliveredLate,
            PublishFate::Deliver => FrameFate::Delivered,
        };
        let deliveries = match fate {
            PublishFate::Drop => 0,
            PublishFate::Deliver => 1,
            PublishFate::Duplicate => 2,
        };
        for _ in 0..deliveries {
            model.deliver(node as usize, frame.t0_s, frame.dt_s, &frame.watts);
        }
        if deliveries > 0 {
            let i = node as usize;
            delivered_until[i] = delivered_until[i].max(true_end_s);
            *frames_delivered += 1;
        } else {
            *frames_suppressed += 1;
        }
        if logged != FrameFate::Delivered {
            let span = frame.dt_s * frame.watts.len() as f64;
            dirty[node as usize].push((true_end_s - span - tick, t + tick));
        }
        log.push(Event::Frame {
            t_ns: (t * 1e9).round() as u64,
            node,
            t0_bits: frame.t0_s.to_bits(),
            n: frame.watts.len() as u32,
            fate: logged,
        });
    };

    loop {
        let t = clock.now_s();
        let t_ns = clock.now_ns();
        obs_clock.set(t);
        let mut reconnect_tick = false;

        // ── Fault lifecycle at t: broker, nodes, clocks. ──
        let broker_down_now = sc.faults.iter().any(|f| {
            matches!(*f, Fault::BrokerRestart { from_s, until_s } if window_active(from_s, until_s, t))
        });
        if broker_down_now && !broker_down {
            broker_down = true;
            log.push(Event::BrokerDown { t_ns });
            // Node-agent sessions drop; agents fail safe to nominal
            // speed until the retained replay restores the limits.
            ctl_watch.disconnect();
            for s in speeds.iter_mut() {
                *s = 1.0;
            }
        } else if !broker_down_now && broker_down {
            broker_down = false;
            reconnect_tick = true;
            ctl_watch = broker.connect("plant-gateways");
            ctl_watch
                .subscribe("davide/+/ctl/speed", QoS::AtMostOnce)
                .expect("resubscribe ctl");
            log.push(Event::BrokerUp {
                t_ns,
                replayed: ctl_watch.pending() as u32,
            });
        }
        if broker_down {
            for d in dirty.iter_mut() {
                d.push((t - tick, t + tick));
            }
        }

        for node in 0..n {
            let was_dead = dead[node];
            let dead_now = sc.faults.iter().any(|f| {
                matches!(*f, Fault::NodeDeath { node: dn, at_s, revive_s }
                    if dn as usize == node && window_active(at_s, revive_s, t))
            });
            dead[node] = dead_now;
            if dead_now && !was_dead {
                log.push(Event::NodeDown {
                    t_ns,
                    node: node as u32,
                });
            } else if !dead_now && was_dead {
                log.push(Event::NodeUp {
                    t_ns,
                    node: node as u32,
                });
            }
            if dead_now {
                dirty[node].push((t - tick, t + tick));
            }
        }

        for (fi, f) in sc.faults.iter().enumerate() {
            match *f {
                Fault::ClockSkew {
                    node,
                    ppm,
                    from_s,
                    until_s,
                } if window_active(from_s, until_s, t) => {
                    let i = node as usize;
                    clock_offset[i] += ppm * 1e-6 * tick;
                    clock_faulted[i] = true;
                }
                Fault::ClockStep {
                    node,
                    offset_s,
                    at_s,
                } if t >= at_s && !step_fired[fi] => {
                    step_fired[fi] = true;
                    let i = node as usize;
                    clock_offset[i] += offset_s;
                    clock_faulted[i] = true;
                    log.push(Event::ClockStep {
                        t_ns,
                        node,
                        offset_bits: offset_s.to_bits(),
                    });
                }
                _ => {}
            }
        }
        for node in 0..n {
            let skewing = sc.faults.iter().any(|f| {
                matches!(*f, Fault::ClockSkew { node: sn, from_s, until_s, .. }
                    if sn as usize == node && window_active(from_s, until_s, t))
            });
            if !skewing && clock_offset[node] != 0.0 {
                // PTP servo pulls the clock back after the fault clears.
                clock_offset[node] *= 0.5;
                if clock_offset[node].abs() < 1e-3 {
                    clock_offset[node] = 0.0;
                }
            }
            if clock_offset[node] != 0.0 {
                dirty[node].push((t - tick, t + tick));
            }
        }

        // ── Gateways publish the window [t − tick, t). ──
        if t > 0.0 {
            let t0 = t - tick;
            for node in 0..sc.n_nodes {
                let i = node as usize;
                let suppressed = if dead[i] {
                    Some(FrameFate::Dead)
                } else if broker_down {
                    Some(FrameFate::BrokerDown)
                } else if sc.faults.iter().any(|f| {
                    matches!(*f, Fault::Dropout { node: dn, from_s, until_s }
                        if dn == node && window_active(from_s, until_s, t))
                }) {
                    Some(FrameFate::Dropout)
                } else {
                    None
                };
                if let Some(fate) = suppressed {
                    frames_suppressed += 1;
                    dirty[i].push((t0 - tick, t + tick));
                    log.push(Event::Frame {
                        t_ns,
                        node,
                        t0_bits: (t0 + clock_offset[i]).to_bits(),
                        n: 0,
                        fate,
                    });
                    continue;
                }
                let w = node_draw_w[i];
                let watts: Vec<f32> = (0..samples)
                    .map(|_| {
                        let nz = 1.0 + sc.noise * gauss(&mut plant_rng);
                        (w * nz).max(0.0) as f32
                    })
                    .collect();
                let frame = SampleFrame {
                    t0_s: t0 + clock_offset[i],
                    dt_s: sc.sample_dt_s,
                    watts,
                };
                let delayed = sc.faults.iter().any(|f| {
                    matches!(*f, Fault::Reorder { node: rn, from_s, until_s, .. }
                        if rn == node && window_active(from_s, until_s, t))
                }) && {
                    let p = sc
                        .faults
                        .iter()
                        .find_map(|f| match *f {
                            Fault::Reorder {
                                node: rn,
                                p,
                                from_s,
                                until_s,
                                ..
                            } if rn == node && window_active(from_s, until_s, t) => Some(p),
                            _ => None,
                        })
                        .unwrap_or(0.0);
                    inject_rng.chance(p)
                };
                if delayed {
                    let delay_ticks = sc
                        .faults
                        .iter()
                        .find_map(|f| match *f {
                            Fault::Reorder {
                                node: rn,
                                delay_ticks,
                                from_s,
                                until_s,
                                ..
                            } if rn == node && window_active(from_s, until_s, t) => {
                                Some(delay_ticks)
                            }
                            _ => None,
                        })
                        .unwrap_or(1);
                    log.push(Event::Frame {
                        t_ns,
                        node,
                        t0_bits: frame.t0_s.to_bits(),
                        n: frame.watts.len() as u32,
                        fate: FrameFate::Delayed,
                    });
                    dirty[i].push((t0 - tick, t + (delay_ticks as f64 + 1.0) * tick));
                    delay_buf.push(DelayedFrame {
                        due_s: t + delay_ticks as f64 * tick,
                        node,
                        frame,
                        true_end_s: t,
                    });
                    continue;
                }
                publish_frame(
                    t,
                    node,
                    &frame,
                    t,
                    false,
                    &mut log,
                    &mut model,
                    &mut delivered_until,
                    &mut dirty,
                    &mut frames_delivered,
                    &mut frames_suppressed,
                );
            }
        }
        // Due delayed frames land now, out of order (unless the broker
        // is down, in which case they stay queued at the gateway).
        if !broker_down {
            let due: Vec<DelayedFrame> = {
                let mut held = Vec::new();
                let mut landing = Vec::new();
                for df in delay_buf.drain(..) {
                    if df.due_s <= t && !dead[df.node as usize] {
                        landing.push(df);
                    } else {
                        held.push(df);
                    }
                }
                delay_buf = held;
                landing
            };
            for df in due {
                publish_frame(
                    t,
                    df.node,
                    &df.frame,
                    df.true_end_s,
                    true,
                    &mut log,
                    &mut model,
                    &mut delivered_until,
                    &mut dirty,
                    &mut frames_delivered,
                    &mut frames_suppressed,
                );
            }
        }

        // ── Arrivals. ──
        while next_submit < trace.len() && trace[next_submit].submit_s <= t {
            cp.submit(trace[next_submit].clone());
            next_submit += 1;
        }

        // ── Plant completions and death aborts. ──
        let mut completions: Vec<(JobId, f64)> = Vec::new();
        plant.retain(|pj| {
            let killer = pj.nodes.iter().find(|&&nd| dead[nd as usize]);
            if let Some(&killer) = killer {
                completions.push((pj.id, t));
                let rec = &mut jobs[job_index[&pj.id]];
                rec.end_s = t;
                rec.aborted = true;
                for &nd in &pj.nodes {
                    speeds[nd as usize] = 1.0;
                }
                log.push(Event::Abort {
                    t_ns,
                    job: pj.id,
                    node: killer,
                });
                return false;
            }
            if pj.remaining_s <= 1e-9 {
                completions.push((pj.id, t));
                let rec = &mut jobs[job_index[&pj.id]];
                rec.end_s = t;
                for &nd in &pj.nodes {
                    speeds[nd as usize] = 1.0;
                }
                log.push(Event::Complete { t_ns, job: pj.id });
                return false;
            }
            true
        });

        // ── One control period of the real loop. ──
        let placements = cp.tick(t, &completions);
        for p in &placements {
            let job = &by_id[&p.job];
            job_index.insert(p.job, jobs.len());
            jobs.push(JobTruth {
                id: p.job,
                start_s: t,
                end_s: f64::NAN,
                nodes: p.nodes.clone(),
                energy_j: 0.0,
                clean: true,
                aborted: false,
            });
            log.push(Event::Place {
                t_ns,
                job: p.job,
                nodes: p.nodes.clone(),
            });
            plant.push(PlantJob {
                id: p.job,
                nodes: p.nodes.clone(),
                node_w: job.true_power_w * drift(job),
                remaining_s: job.true_runtime_s,
            });
        }

        // ── Apply DVFS commands (live, or retained replay on
        //    reconnect). ──
        for msg in ctl_watch.drain() {
            let node = {
                let mut parts = msg.topic.split('/');
                parts.next();
                parts
                    .next()
                    .and_then(|s| s.strip_prefix("node"))
                    .and_then(|s| s.parse::<u32>().ok())
            };
            if let (Some(node), Ok(speed)) = (
                node,
                std::str::from_utf8(&msg.payload)
                    .unwrap_or("")
                    .parse::<f64>(),
            ) {
                if node < sc.n_nodes {
                    let applied = speed.clamp(0.1, 1.0);
                    speeds[node as usize] = applied;
                    checker.on_speed(t, node, reconnect_tick);
                    log.push(Event::Speed {
                        t_ns,
                        node,
                        speed_bits: applied.to_bits(),
                        replayed: reconnect_tick,
                    });
                }
            }
        }

        if next_submit >= trace.len()
            && plant.is_empty()
            && cp.queue_len() == 0
            && delay_buf.is_empty()
        {
            break;
        }

        // ── Advance the plant over [t, t + tick). ──
        for (i, w) in node_draw_w.iter_mut().enumerate() {
            *w = if dead[i] { 0.0 } else { idle_w };
        }
        for pj in plant.iter_mut() {
            let speed = pj
                .nodes
                .iter()
                .map(|&nd| speeds[nd as usize])
                .fold(1.0, f64::min);
            for &nd in &pj.nodes {
                if !dead[nd as usize] {
                    node_draw_w[nd as usize] = idle_w + speed * (pj.node_w - idle_w).max(0.0);
                }
            }
            pj.remaining_s -= tick * speed;
        }
        let sys_w: f64 = node_draw_w.iter().sum();
        total_energy_j += sys_w * tick;
        let mut busy_nodes = vec![false; n];
        for pj in &plant {
            let job_e: f64 = pj
                .nodes
                .iter()
                .map(|&nd| {
                    busy_nodes[nd as usize] = true;
                    node_draw_w[nd as usize] * tick
                })
                .sum();
            jobs[job_index[&pj.id]].energy_j += job_e;
        }
        for i in 0..n {
            per_node_energy[i] += node_draw_w[i] * tick;
            if !busy_nodes[i] {
                idle_energy_j += node_draw_w[i] * tick;
            }
        }
        if sys_w > sc.cap_w {
            overcap_s += tick;
            overcap_energy_j += (sys_w - sc.cap_w) * tick;
        }

        // ── Audit the period. ──
        checker.on_tick(
            t,
            tick,
            &cp,
            &TickTruth {
                sys_w,
                broker_down,
                delivered_until: &delivered_until,
                dead: &dead,
                clock_faulted: &clock_faulted,
            },
        );

        clock.advance();
        assert!(
            clock.now_s() < 30.0 * 86_400.0,
            "scenario {:?} failed to converge: queue={} plant={}",
            sc.name,
            cp.queue_len(),
            plant.len()
        );
    }

    let t_end = clock.now_s();
    // Classify jobs: clean means no fault activity touched any of its
    // nodes for its whole (slightly widened) window.
    for j in jobs.iter_mut() {
        if j.end_s.is_nan() {
            j.end_s = t_end;
        }
        let (a, b) = (j.start_s - tick, j.end_s + tick);
        let touched = j.nodes.iter().any(|&nd| {
            dirty[nd as usize]
                .iter()
                .any(|&(from, until)| from < b && a < until)
        });
        j.clean = !touched && !j.aborted;
    }

    let mut report = cp.report();
    report.total_energy_j = total_energy_j;
    report.overcap_energy_j = overcap_energy_j;
    report.overcap_s = overcap_s;

    let truth = GroundTruth {
        total_energy_j,
        idle_energy_j,
        per_node_energy_j: per_node_energy,
        overcap_s,
        overcap_energy_j,
        aborted_jobs: jobs.iter().filter(|j| j.aborted).count() as u64,
        frames_delivered,
        frames_suppressed,
        makespan_s: t_end,
        jobs,
    };
    let violations = checker.finish(
        &cp,
        &broker,
        &report,
        &model,
        &FinalTruth {
            total_energy_j: truth.total_energy_j,
            per_node_energy_j: &truth.per_node_energy_j,
            idle_energy_j: truth.idle_energy_j,
            jobs: &truth.jobs,
            t_s: t_end,
        },
    );
    // Detach the hook so the broker (shared handles) cannot call into
    // freed harness state.
    broker.set_fault_hook(None);
    // Anything still resident in the tracer never completed the loop:
    // account it as lost at whatever stage it last reached.
    hub.tracer.flush();

    RunOutcome {
        scenario: sc.name.clone(),
        report,
        log,
        violations,
        truth,
        obs: hub,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn baseline_scenario_is_clean_and_deterministic() {
        let sc = Scenario::base("unit_baseline", 11);
        let a = run(&sc);
        assert_eq!(
            a.violations,
            Vec::new(),
            "baseline must hold every invariant"
        );
        assert_eq!(a.report.jobs_completed as usize, sc.n_jobs);
        assert!(a.truth.total_energy_j > 0.0);
        let b = run(&sc);
        assert_eq!(a.log, b.log, "same seed, same scenario → same event log");
        assert_eq!(a.log.digest(), b.log.digest());
    }

    #[test]
    fn obs_latency_probe_measures_latency_and_is_bit_identical() {
        let sc = crate::scenario::obs_latency_probe(11);
        let a = run(&sc);
        let b = run(&sc);
        assert_eq!(a.violations, Vec::new(), "probe holds every invariant");
        assert_eq!(a.log.digest(), b.log.digest());
        assert_eq!(
            a.obs.registry.render_text(),
            b.obs.registry.render_text(),
            "same seed ⇒ bit-identical metrics exposition"
        );

        // Control-loop latency (frame age at actuation) is a measured,
        // non-degenerate distribution: ordinary frames are one control
        // period old, reordered ones several.
        let age = a
            .obs
            .registry
            .find_histogram("ctl_frame_age_ns")
            .unwrap()
            .snapshot();
        assert!(age.count > 0, "latency histogram must not be empty");
        let tick_ns = (sc.tick_s * 1e9) as u64;
        assert!(
            age.max >= 2 * tick_ns,
            "reordered frames must show up as multi-tick latency (max {} ns)",
            age.max
        );

        // The causal chains complete, and the injected frame loss is
        // visible as traces that never progressed past broker publish.
        let counter = |n: &str| a.obs.registry.find_counter(n).unwrap().get();
        assert!(counter("obs_trace_completed_total") > 0);
        assert!(
            counter("obs_trace_lost_total{last=\"broker_publish\"}") > 0,
            "frame loss surfaces as per-stage trace loss"
        );
    }
}
