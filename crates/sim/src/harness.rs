//! The harness: a fault-injecting synthetic plant around the real loop.
//!
//! One [`run`] builds the full production stack — in-process MQTT
//! broker, [`ControlPlane`] with its ingest/store/predictor/actuators —
//! and drives it from the discrete-event kernel in [`crate::kernel`]:
//! every cause in the simulated world (a fault window taking effect, a
//! gateway rendering the elapsed window's frames, a held-back frame
//! landing, a job arriving, one control period of the loop, the plant
//! integrating, the checker auditing) is an [`EventQueue`] entry
//! dispatched in `(time, phase class, insertion seq)` order. Gateways
//! render noisy per-node power frames from plant ground truth, the
//! scenario's fault script mangles them (loss, duplication, reordering,
//! clock faults, broker restart, node death), DVFS commands flow back
//! and reshape the plant. The [`InvariantChecker`] audits every control
//! period against ground truth the loop cannot see, and every
//! externally meaningful action lands in the [`EventLog`], which is
//! bit-identical across reruns of one seed — including bit-identical
//! to the logs the original lockstep harness produced, a property the
//! differential test in `tests/fault_injection.rs` pins against the
//! recorded digests.
//!
//! Two scheduling decisions carry the equivalence proof:
//!
//! * **Phase classes** reproduce the lockstep intra-tick order (faults →
//!   gateways → late frames → arrivals → control → plant → audit), and
//!   the stable seq tie-break reproduces iteration order within each
//!   phase.
//! * **Fault windows stay per-tick probes.** Window membership, skew
//!   accumulation and transition logging are evaluated once per control
//!   period inside the `Faults` event — not expanded into individual
//!   open/close events — because the pinned digests encode exactly that
//!   tick-granular semantics (overlapping windows dedup through one
//!   `any()` per tick, skew offsets accumulate once per tick). Frame
//!   delays, arrivals and the control period itself are genuine events.
//!
//! A rack is one [`RackSim`]; multi-rack federation (N racks bridged
//! into a site broker with a global power budget) lives in
//! [`crate::federation`] and drives the same per-rack state machine
//! through the same kernel.

use std::collections::HashMap;
use std::sync::Arc;

use davide_core::rng::Rng;
use davide_core::time::{SimDuration, SimTime};
use davide_mqtt::{Broker, BrokerObs, Client, PublishFate, QoS};
use davide_obs::{flight, GrantStage, ManualClock, ObsHub};
use davide_predictor::ModelKind;
use davide_sched::{
    CapSchedule, ControlPlane, ControlPlaneConfig, ControlPlaneObs, ControlPlaneReport, JobId,
    OnlinePowerPredictor, PowerPredictor, WorkloadConfig, WorkloadGenerator,
};
use davide_telemetry::gateway::{power_topic, SampleFrame, FRAME_MAGIC};
use davide_telemetry::{TsDb, TsDbConfig};
use parking_lot::Mutex;

use crate::invariants::{
    CheckerConfig, FinalTruth, InvariantChecker, JobTruth, StoreModel, TickTruth, Violation,
};
use crate::kernel::{self, phase, EventHandler, EventQueue};
use crate::log::{Event, EventLog, FrameFate};
use crate::scenario::{Fault, Scenario};

/// Ground-truth accounting a run hands back (the plant's view, which
/// the control plane never sees).
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Facility energy, joules.
    pub total_energy_j: f64,
    /// Energy drawn by nodes with no job, joules.
    pub idle_energy_j: f64,
    /// Per-node energy, joules.
    pub per_node_energy_j: Vec<f64>,
    /// True time above the cap, seconds.
    pub overcap_s: f64,
    /// True energy above the cap, joules.
    pub overcap_energy_j: f64,
    /// Per-job truth ledgers, in placement order.
    pub jobs: Vec<JobTruth>,
    /// Jobs killed by node deaths.
    pub aborted_jobs: u64,
    /// Gateway frames that reached the broker (duplicates once).
    pub frames_delivered: u64,
    /// Gateway frames suppressed or lost by the fault script.
    pub frames_suppressed: u64,
    /// Final virtual time, seconds.
    pub makespan_s: f64,
}

/// Everything one harness run produces.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Scenario name, echoed for reports.
    pub scenario: String,
    /// The loop's own end-of-run report.
    pub report: ControlPlaneReport,
    /// The deterministic event log.
    pub log: EventLog,
    /// Every invariant violation the checker found (empty on a healthy
    /// run).
    pub violations: Vec<Violation>,
    /// Plant ground truth.
    pub truth: GroundTruth,
    /// The run's self-observability hub: every broker / ingest /
    /// control-loop instrument, stamped off the virtual clock. Not part
    /// of the event log, so the digest contract is untouched — but the
    /// rendered exposition is itself bit-identical across reruns of one
    /// seed.
    pub obs: ObsHub,
    /// The flight-recorder dump captured the instant the invariant
    /// checker first fired (`None` on a healthy run). Deterministic:
    /// two same-seed runs produce byte-identical dumps.
    pub flight_dump: Option<String>,
}

/// The kernel event alphabet: everything that happens in a run, stamped
/// with the rack it happens to. Phase classes (see [`phase`]) order the
/// variants within one instant.
#[derive(Debug, Clone, Copy)]
pub(crate) enum SimEvent {
    /// Fault lifecycle for one rack: per-tick window probe.
    Faults { rack: usize },
    /// One rack's gateways render and publish the elapsed window.
    Gateways { rack: usize },
    /// A reorder-delayed frame comes due (slot into the delay slab).
    LateFrame { rack: usize, slot: usize },
    /// One trace job reaches its submit time.
    Arrival { rack: usize, idx: usize },
    /// One control period of a rack's real loop.
    Control { rack: usize },
    /// The federator pumps bridges and rebalances the global budget.
    Federate,
    /// The federator audits the period globally (after every plant).
    FedAudit,
    /// A rack's plant integrates draw over the period just decided.
    Plant { rack: usize },
    /// A rack's checker audits the period.
    Audit { rack: usize },
}

/// The handler the kernel drives: all racks plus the optional
/// federator. Single-rack [`run`] is the `fed: None` special case.
pub(crate) struct World {
    pub(crate) racks: Vec<RackSim>,
    pub(crate) fed: Option<crate::federation::Federator>,
    /// Racks still running; the run halts when it reaches zero.
    pub(crate) active: usize,
}

impl EventHandler<SimEvent> for World {
    fn handle(&mut self, q: &mut EventQueue<SimEvent>, t: SimTime, _class: u8, ev: SimEvent) {
        match ev {
            SimEvent::Faults { rack } => self.racks[rack].fault_phase(q, t),
            SimEvent::Gateways { rack } => self.racks[rack].gateway_phase(q, t),
            SimEvent::LateFrame { rack, slot } => self.racks[rack].late_frame(q, t, slot),
            SimEvent::Arrival { rack, idx } => self.racks[rack].arrival(idx),
            SimEvent::Control { rack } => {
                if self.racks[rack].control_phase(q, t) {
                    self.active -= 1;
                    if self.active == 0 {
                        q.halt();
                    }
                }
            }
            SimEvent::Federate => {
                if let Some(fed) = self.fed.as_mut() {
                    fed.federate(q, t, &mut self.racks);
                }
            }
            SimEvent::FedAudit => {
                if let Some(fed) = self.fed.as_mut() {
                    fed.audit(t, &self.racks);
                }
            }
            SimEvent::Plant { rack } => self.racks[rack].plant_phase(t),
            SimEvent::Audit { rack } => self.racks[rack].audit_phase(t),
        }
    }
}

/// A frame-loss/duplication rule compiled for the broker fault hook.
#[derive(Debug, Clone, Copy)]
struct LossRule {
    node: Option<u32>,
    p_drop: f64,
    p_dup: f64,
    from_s: f64,
    until_s: f64,
}

/// State shared with the broker's fault hook. The hook runs inside
/// `publish`; the harness sets `t_s` before each gateway publish and
/// takes the fate the hook recorded right after.
struct HookState {
    rng: Rng,
    t_s: f64,
    rules: Vec<LossRule>,
    last: Option<PublishFate>,
}

/// A reordered frame parked in the delay slab; its landing instant is
/// the kernel event, its insertion seq keeps the delay line FIFO.
struct DelayedFrame {
    node: u32,
    frame: SampleFrame,
    /// True end of the window the frame measured (freshness truth).
    true_end_s: f64,
    /// Kernel insertion seq — reused on requeue so a frame held back
    /// further (broker down, node dead) keeps its original order.
    seq: u64,
}

/// A job on the plant: ground truth the control plane cannot see.
struct PlantJob {
    id: JobId,
    nodes: Vec<u32>,
    /// True mean per-node power at full speed, after drift.
    node_w: f64,
    /// Work left, in nominal-speed seconds.
    remaining_s: f64,
}

fn window_active(from_s: f64, until_s: f64, t: f64) -> bool {
    from_s <= t && t < until_s
}

/// Standard normal via Box–Muller on the plant RNG (same recipe as the
/// E22 replay plant, so plants are comparable across harnesses).
fn gauss(rng: &mut Rng) -> f64 {
    let u1 = rng.uniform().max(1e-12);
    let u2 = rng.uniform();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Node id from `davide/node{NN}/power/{channel}` topics; `None`
/// otherwise (the hook must leave control traffic alone).
fn parse_power_node(topic: &str) -> Option<u32> {
    let mut parts = topic.split('/');
    if parts.next() != Some("davide") {
        return None;
    }
    let node = parts.next()?.strip_prefix("node")?;
    if parts.next() != Some("power") {
        return None;
    }
    node.parse().ok()
}

/// One rack's complete simulation state: the real stack under test
/// (broker, control plane, observability) plus the synthetic plant,
/// fault injector, ground-truth ledgers and invariant checker. The
/// kernel dispatches its phase methods; [`finish`](Self::finish) turns
/// it into a [`RunOutcome`].
pub(crate) struct RackSim {
    rack: usize,
    sc: Scenario,
    tick: f64,
    tick_dur: SimDuration,
    samples: usize,
    idle_w: f64,

    pub(crate) broker: Broker,
    cp: ControlPlane,
    ctl_watch: Client,
    gateway: Client,
    /// Federated runs only: subscribed to `fed/+/cap` on the rack
    /// broker; cap grants bridged down from the site are applied at the
    /// head of the control phase. `None` in single-rack runs — zero
    /// behavioural difference from the lockstep harness.
    cap_watch: Option<Client>,
    hook_state: Arc<Mutex<HookState>>,
    pub(crate) hub: ObsHub,
    obs_clock: Arc<ManualClock>,
    /// Applied-but-not-yet-actuated grants, `(seq, cap_w)`: the span
    /// closes when observed system power first measures at or under the
    /// granted cap. A newer applied grant supersedes the list.
    pending_grants: Vec<(u64, f64)>,
    /// Checker violations already copied into the flight recorder.
    seen_violations: usize,
    /// Snapshot taken the first time the checker fired.
    flight_dump: Option<String>,

    plant_rng: Rng,
    inject_rng: Rng,
    speeds: Vec<f64>,
    node_draw_w: Vec<f64>,
    dead: Vec<bool>,
    clock_offset: Vec<f64>,
    clock_faulted: Vec<bool>,
    delivered_until: Vec<f64>,
    dirty: Vec<Vec<(f64, f64)>>,
    per_node_energy: Vec<f64>,
    step_fired: Vec<bool>,
    plant: Vec<PlantJob>,
    delay_slab: Vec<Option<DelayedFrame>>,
    delayed_outstanding: usize,
    jobs: Vec<JobTruth>,
    job_index: HashMap<JobId, usize>,
    by_id: HashMap<JobId, davide_sched::Job>,
    trace: Vec<davide_sched::Job>,
    arrivals_pending: usize,

    model: StoreModel,
    checker: InvariantChecker,
    log: EventLog,

    pub(crate) broker_down: bool,
    reconnect_tick: bool,
    /// The cap currently in force (scenario cap, or the latest applied
    /// federated grant).
    cap_now_w: f64,
    total_energy_j: f64,
    idle_energy_j: f64,
    overcap_s: f64,
    overcap_energy_j: f64,
    frames_delivered: u64,
    frames_suppressed: u64,

    /// True aggregate draw over the last advanced period, watts.
    pub(crate) last_sys_w: f64,
    /// Busy nodes over the last advanced period.
    pub(crate) last_busy: usize,
    /// Instant of the last plant advance — the federator only counts a
    /// rack's draw for periods the rack actually integrated.
    pub(crate) advanced_at: Option<SimTime>,
    done: bool,
    done_at: Option<f64>,
}

impl RackSim {
    /// Build one rack's full stack for `sc`, exactly as the original
    /// single-rack harness did (same client names, same RNG stream
    /// seeds, same config plumbing — the digest contract depends on
    /// it).
    pub(crate) fn new(rack: usize, sc: &Scenario, db_cfg: TsDbConfig) -> RackSim {
        assert!(sc.n_nodes >= 1 && sc.tick_s > 0.0 && sc.sample_dt_s > 0.0);
        let n = sc.n_nodes as usize;
        let tick = sc.tick_s;

        // ── Trace and predictor, exactly as the E22 replay builds them. ──
        let workload = WorkloadConfig {
            users: 12,
            mean_interarrival_s: sc.mean_interarrival_s,
            max_nodes: sc.max_job_nodes.min(sc.n_nodes),
            mean_walltime_s: sc.mean_walltime_s,
            ..WorkloadConfig::default()
        };
        let mut gen = WorkloadGenerator::new(workload.clone(), sc.seed);
        let history = gen.trace(sc.n_history);
        let mut trace = gen.trace(sc.n_jobs);
        let t_base = trace.first().map(|j| j.submit_s).unwrap_or(0.0);
        for j in &mut trace {
            j.submit_s -= t_base;
        }
        let base =
            PowerPredictor::from_kind(ModelKind::linreg(), &history, workload.users as usize);
        let predictor = OnlinePowerPredictor::new(base, 0.995, 1000.0);

        // ── The real stack under test. ──
        let mut cfg =
            ControlPlaneConfig::davide(sc.mode, sc.n_nodes, CapSchedule::constant(sc.cap_w));
        if sc.disable_stale_fallback {
            // Regression knob: the loop stops noticing staleness while
            // the checker keeps auditing against the nominal deadline.
            cfg.telemetry_deadline_s = 1e18;
        } else {
            cfg.telemetry_deadline_s = sc.deadline_s;
        }
        let band_w = cfg.band_w;
        let sustain_s = cfg.sustain_s;
        let idle_w = cfg.idle_node_power_w;
        let broker = match sc.broker_shards {
            Some(n) => Broker::with_shards(1 << 16, n),
            None => Broker::new(1 << 16),
        };
        let db = TsDb::with_config(db_cfg).expect("telemetry store (disk tier open)");
        let mut cp =
            ControlPlane::with_db(&broker, cfg, predictor, db).expect("subscribe on fresh broker");
        // Self-instrumentation is always armed: every stamp reads the
        // virtual clock, and nothing here draws RNG or touches the event
        // log, so per-seed digests are exactly what they were without it.
        let (hub, obs_clock) = ObsHub::manual();
        broker.set_obs(Some(BrokerObs::new(&hub, Some(&FRAME_MAGIC.to_le_bytes()))));
        cp.set_obs(ControlPlaneObs::new(&hub));
        let mut ctl_watch = broker.connect("plant-gateways");
        ctl_watch
            .subscribe("davide/+/ctl/speed", QoS::AtMostOnce)
            .expect("subscribe ctl");
        let gateway = broker.connect("plant-publisher");

        // ── Fault hook: loss and duplication on the gateway→broker hop. ──
        let rules: Vec<LossRule> = sc
            .faults
            .iter()
            .filter_map(|f| match *f {
                Fault::FrameLoss {
                    node,
                    p,
                    from_s,
                    until_s,
                } => Some(LossRule {
                    node,
                    p_drop: p,
                    p_dup: 0.0,
                    from_s,
                    until_s,
                }),
                Fault::Duplicate {
                    node,
                    p,
                    from_s,
                    until_s,
                } => Some(LossRule {
                    node,
                    p_drop: 0.0,
                    p_dup: p,
                    from_s,
                    until_s,
                }),
                _ => None,
            })
            .collect();
        let hook_state = Arc::new(Mutex::new(HookState {
            rng: Rng::seed_from(sc.seed ^ 0xd1b5_4a32_d192_ed03),
            t_s: 0.0,
            rules,
            last: None,
        }));
        {
            let state = Arc::clone(&hook_state);
            broker.set_fault_hook(Some(Box::new(move |topic: &str| {
                let mut st = state.lock();
                let Some(node) = parse_power_node(topic) else {
                    return PublishFate::Deliver;
                };
                let t = st.t_s;
                let mut fate = PublishFate::Deliver;
                for k in 0..st.rules.len() {
                    let r = st.rules[k];
                    if !window_active(r.from_s, r.until_s, t) || r.node.is_some_and(|rn| rn != node)
                    {
                        continue;
                    }
                    if r.p_drop > 0.0 && st.rng.chance(r.p_drop) {
                        fate = PublishFate::Drop;
                    }
                    if r.p_dup > 0.0 && st.rng.chance(r.p_dup) && fate == PublishFate::Deliver {
                        fate = PublishFate::Duplicate;
                    }
                }
                st.last = Some(fate);
                fate
            })));
        }

        let model = StoreModel::new(n);
        let checker = InvariantChecker::new(CheckerConfig {
            n_nodes: sc.n_nodes,
            cap_w: sc.cap_w,
            band_w,
            sustain_s,
            deadline_s: sc.deadline_s,
            cap_grace_s: sc.cap_grace_s,
            tick_s: tick,
            noise: sc.noise,
            sample_dt_s: sc.sample_dt_s,
        });

        let by_id: HashMap<JobId, davide_sched::Job> =
            trace.iter().map(|j| (j.id, j.clone())).collect();
        let samples = (tick / sc.sample_dt_s).round().max(1.0) as usize;
        let arrivals_pending = trace.len();
        let step_fired = vec![false; sc.faults.len()];

        RackSim {
            rack,
            sc: sc.clone(),
            tick,
            tick_dur: SimDuration::from_secs_f64(tick),
            samples,
            idle_w,
            broker,
            cp,
            ctl_watch,
            gateway,
            cap_watch: None,
            hook_state,
            hub,
            obs_clock,
            pending_grants: Vec::new(),
            seen_violations: 0,
            flight_dump: None,
            plant_rng: Rng::seed_from(sc.seed ^ 0x9e37_79b9),
            inject_rng: Rng::seed_from(sc.seed ^ 0xa076_1d64_78bd_642f),
            speeds: vec![1.0; n],
            node_draw_w: vec![idle_w; n],
            dead: vec![false; n],
            clock_offset: vec![0.0; n],
            clock_faulted: vec![false; n],
            delivered_until: vec![f64::NEG_INFINITY; n],
            dirty: vec![Vec::new(); n],
            per_node_energy: vec![0.0; n],
            step_fired,
            plant: Vec::new(),
            delay_slab: Vec::new(),
            delayed_outstanding: 0,
            jobs: Vec::new(),
            job_index: HashMap::new(),
            by_id,
            trace,
            arrivals_pending,
            model,
            checker,
            log: EventLog::new(),
            broker_down: false,
            reconnect_tick: false,
            cap_now_w: sc.cap_w,
            total_energy_j: 0.0,
            idle_energy_j: 0.0,
            overcap_s: 0.0,
            overcap_energy_j: 0.0,
            frames_delivered: 0,
            frames_suppressed: 0,
            last_sys_w: 0.0,
            last_busy: 0,
            advanced_at: None,
            done: false,
            done_at: None,
        }
    }

    /// Arm the federated-cap path: subscribe a rack-broker client to
    /// the bridged `fed/+/cap` grants. Must run before
    /// [`bootstrap`](Self::bootstrap).
    pub(crate) fn enable_federation(&mut self) {
        let mut cw = self.broker.connect("fed-cap-watch");
        cw.subscribe("fed/+/cap", QoS::AtMostOnce)
            .expect("subscribe fed caps");
        self.cap_watch = Some(cw);
    }

    /// Seed the kernel with this rack's recurring phase events and its
    /// whole arrival schedule.
    pub(crate) fn bootstrap(&self, q: &mut EventQueue<SimEvent>) {
        let rack = self.rack;
        q.schedule(SimTime::ZERO, phase::FAULTS, SimEvent::Faults { rack });
        q.schedule(SimTime::ZERO, phase::GATEWAYS, SimEvent::Gateways { rack });
        for (idx, j) in self.trace.iter().enumerate() {
            q.schedule(
                SimTime::from_secs_f64(j.submit_s),
                phase::ARRIVAL,
                SimEvent::Arrival { rack, idx },
            );
        }
        q.schedule(SimTime::ZERO, phase::CONTROL, SimEvent::Control { rack });
    }

    /// Fault lifecycle at `t`: broker, nodes, clocks — one per-tick
    /// window probe, semantics identical to the lockstep sweep.
    fn fault_phase(&mut self, q: &mut EventQueue<SimEvent>, t: SimTime) {
        if self.done {
            return;
        }
        let t_s = t.as_secs_f64();
        let t_ns = t.0;
        self.obs_clock.set(t_s);
        self.reconnect_tick = false;
        let n = self.sc.n_nodes as usize;

        let broker_down_now = self.sc.faults.iter().any(|f| {
            matches!(*f, Fault::BrokerRestart { from_s, until_s } if window_active(from_s, until_s, t_s))
        });
        if broker_down_now && !self.broker_down {
            self.broker_down = true;
            self.log.push(Event::BrokerDown { t_ns });
            // Node-agent sessions drop; agents fail safe to nominal
            // speed until the retained replay restores the limits.
            self.ctl_watch.disconnect();
            if let Some(cw) = self.cap_watch.as_mut() {
                cw.disconnect();
            }
            for s in self.speeds.iter_mut() {
                *s = 1.0;
            }
        } else if !broker_down_now && self.broker_down {
            self.broker_down = false;
            self.reconnect_tick = true;
            self.ctl_watch = self.broker.connect("plant-gateways");
            self.ctl_watch
                .subscribe("davide/+/ctl/speed", QoS::AtMostOnce)
                .expect("resubscribe ctl");
            self.log.push(Event::BrokerUp {
                t_ns,
                replayed: self.ctl_watch.pending() as u32,
            });
            if self.cap_watch.is_some() {
                // The cap watcher resubscribes too; the retained grant
                // replays and is re-applied (idempotently) next control
                // phase.
                let mut cw = self.broker.connect("fed-cap-watch");
                cw.subscribe("fed/+/cap", QoS::AtMostOnce)
                    .expect("resubscribe fed caps");
                self.cap_watch = Some(cw);
            }
        }
        if self.broker_down {
            for d in self.dirty.iter_mut() {
                d.push((t_s - self.tick, t_s + self.tick));
            }
        }

        for node in 0..n {
            let was_dead = self.dead[node];
            let dead_now = self.sc.faults.iter().any(|f| {
                matches!(*f, Fault::NodeDeath { node: dn, at_s, revive_s }
                    if dn as usize == node && window_active(at_s, revive_s, t_s))
            });
            self.dead[node] = dead_now;
            if dead_now && !was_dead {
                self.log.push(Event::NodeDown {
                    t_ns,
                    node: node as u32,
                });
            } else if !dead_now && was_dead {
                self.log.push(Event::NodeUp {
                    t_ns,
                    node: node as u32,
                });
            }
            if dead_now {
                self.dirty[node].push((t_s - self.tick, t_s + self.tick));
            }
        }

        for fi in 0..self.sc.faults.len() {
            match self.sc.faults[fi] {
                Fault::ClockSkew {
                    node,
                    ppm,
                    from_s,
                    until_s,
                } if window_active(from_s, until_s, t_s) => {
                    let i = node as usize;
                    self.clock_offset[i] += ppm * 1e-6 * self.tick;
                    self.clock_faulted[i] = true;
                }
                Fault::ClockStep {
                    node,
                    offset_s,
                    at_s,
                } if t_s >= at_s && !self.step_fired[fi] => {
                    self.step_fired[fi] = true;
                    let i = node as usize;
                    self.clock_offset[i] += offset_s;
                    self.clock_faulted[i] = true;
                    self.log.push(Event::ClockStep {
                        t_ns,
                        node,
                        offset_bits: offset_s.to_bits(),
                    });
                }
                _ => {}
            }
        }
        for node in 0..n {
            let skewing = self.sc.faults.iter().any(|f| {
                matches!(*f, Fault::ClockSkew { node: sn, from_s, until_s, .. }
                    if sn as usize == node && window_active(from_s, until_s, t_s))
            });
            if !skewing && self.clock_offset[node] != 0.0 {
                // PTP servo pulls the clock back after the fault clears.
                self.clock_offset[node] *= 0.5;
                if self.clock_offset[node].abs() < 1e-3 {
                    self.clock_offset[node] = 0.0;
                }
            }
            if self.clock_offset[node] != 0.0 {
                self.dirty[node].push((t_s - self.tick, t_s + self.tick));
            }
        }

        q.schedule(
            t + self.tick_dur,
            phase::FAULTS,
            SimEvent::Faults { rack: self.rack },
        );
    }

    /// Deliver one frame through the broker, attribute its fate, and
    /// mirror what the store is entitled to absorb.
    fn publish_frame(
        &mut self,
        t: f64,
        node: u32,
        frame: &SampleFrame,
        true_end_s: f64,
        late: bool,
    ) {
        self.hook_state.lock().t_s = t;
        let _ = self.gateway.publish(
            &power_topic(node, "node"),
            frame.encode(),
            QoS::AtMostOnce,
            false,
        );
        let fate = self
            .hook_state
            .lock()
            .last
            .take()
            .expect("hook sees every power publish");
        let logged = match fate {
            PublishFate::Drop => FrameFate::Lost,
            PublishFate::Duplicate => FrameFate::Duplicated,
            PublishFate::Deliver if late => FrameFate::DeliveredLate,
            PublishFate::Deliver => FrameFate::Delivered,
        };
        let deliveries = match fate {
            PublishFate::Drop => 0,
            PublishFate::Deliver => 1,
            PublishFate::Duplicate => 2,
        };
        for _ in 0..deliveries {
            self.model
                .deliver(node as usize, frame.t0_s, frame.dt_s, &frame.watts);
        }
        if deliveries > 0 {
            let i = node as usize;
            self.delivered_until[i] = self.delivered_until[i].max(true_end_s);
            self.frames_delivered += 1;
        } else {
            self.frames_suppressed += 1;
        }
        if logged != FrameFate::Delivered {
            let span = frame.dt_s * frame.watts.len() as f64;
            self.dirty[node as usize].push((true_end_s - span - self.tick, t + self.tick));
        }
        self.log.push(Event::Frame {
            t_ns: (t * 1e9).round() as u64,
            node,
            t0_bits: frame.t0_s.to_bits(),
            n: frame.watts.len() as u32,
            fate: logged,
        });
    }

    /// Gateways publish the window `[t − tick, t)`; reorder-delayed
    /// frames become [`SimEvent::LateFrame`] entries.
    fn gateway_phase(&mut self, q: &mut EventQueue<SimEvent>, t: SimTime) {
        if self.done {
            return;
        }
        let t_s = t.as_secs_f64();
        let t_ns = t.0;
        if t_s > 0.0 {
            let t0 = t_s - self.tick;
            for node in 0..self.sc.n_nodes {
                let i = node as usize;
                let suppressed = if self.dead[i] {
                    Some(FrameFate::Dead)
                } else if self.broker_down {
                    Some(FrameFate::BrokerDown)
                } else if self.sc.faults.iter().any(|f| {
                    matches!(*f, Fault::Dropout { node: dn, from_s, until_s }
                        if dn == node && window_active(from_s, until_s, t_s))
                }) {
                    Some(FrameFate::Dropout)
                } else {
                    None
                };
                if let Some(fate) = suppressed {
                    self.frames_suppressed += 1;
                    self.dirty[i].push((t0 - self.tick, t_s + self.tick));
                    self.log.push(Event::Frame {
                        t_ns,
                        node,
                        t0_bits: (t0 + self.clock_offset[i]).to_bits(),
                        n: 0,
                        fate,
                    });
                    continue;
                }
                let w = self.node_draw_w[i];
                let noise = self.sc.noise;
                let samples = self.samples;
                let rng = &mut self.plant_rng;
                let watts: Vec<f32> = (0..samples)
                    .map(|_| {
                        let nz = 1.0 + noise * gauss(rng);
                        (w * nz).max(0.0) as f32
                    })
                    .collect();
                let frame = SampleFrame {
                    t0_s: t0 + self.clock_offset[i],
                    dt_s: self.sc.sample_dt_s,
                    watts,
                };
                let delayed = self.sc.faults.iter().any(|f| {
                    matches!(*f, Fault::Reorder { node: rn, from_s, until_s, .. }
                        if rn == node && window_active(from_s, until_s, t_s))
                }) && {
                    let p = self
                        .sc
                        .faults
                        .iter()
                        .find_map(|f| match *f {
                            Fault::Reorder {
                                node: rn,
                                p,
                                from_s,
                                until_s,
                                ..
                            } if rn == node && window_active(from_s, until_s, t_s) => Some(p),
                            _ => None,
                        })
                        .unwrap_or(0.0);
                    self.inject_rng.chance(p)
                };
                if delayed {
                    let delay_ticks = self
                        .sc
                        .faults
                        .iter()
                        .find_map(|f| match *f {
                            Fault::Reorder {
                                node: rn,
                                delay_ticks,
                                from_s,
                                until_s,
                                ..
                            } if rn == node && window_active(from_s, until_s, t_s) => {
                                Some(delay_ticks)
                            }
                            _ => None,
                        })
                        .unwrap_or(1);
                    self.log.push(Event::Frame {
                        t_ns,
                        node,
                        t0_bits: frame.t0_s.to_bits(),
                        n: frame.watts.len() as u32,
                        fate: FrameFate::Delayed,
                    });
                    self.dirty[i]
                        .push((t0 - self.tick, t_s + (delay_ticks as f64 + 1.0) * self.tick));
                    let due = t + SimDuration(self.tick_dur.0 * delay_ticks as u64);
                    let slot = self.delay_slab.len();
                    let seq = q.schedule(
                        due,
                        phase::LATE_FRAME,
                        SimEvent::LateFrame {
                            rack: self.rack,
                            slot,
                        },
                    );
                    self.delay_slab.push(Some(DelayedFrame {
                        node,
                        frame,
                        true_end_s: t_s,
                        seq,
                    }));
                    self.delayed_outstanding += 1;
                    continue;
                }
                self.publish_frame(t_s, node, &frame, t_s, false);
            }
        }
        q.schedule(
            t + self.tick_dur,
            phase::GATEWAYS,
            SimEvent::Gateways { rack: self.rack },
        );
    }

    /// A delayed frame comes due. If the broker is down or the node is
    /// dead it stays queued at the gateway: the event hops one tick
    /// forward *keeping its insertion seq*, so the delay line lands in
    /// FIFO order exactly like the lockstep hold-back buffer.
    fn late_frame(&mut self, q: &mut EventQueue<SimEvent>, t: SimTime, slot: usize) {
        let t_s = t.as_secs_f64();
        let held = {
            let df = self.delay_slab[slot].as_ref().expect("live delay slot");
            self.broker_down || self.dead[df.node as usize]
        };
        if held {
            let seq = self.delay_slab[slot].as_ref().expect("live delay slot").seq;
            q.requeue(
                t + self.tick_dur,
                phase::LATE_FRAME,
                seq,
                SimEvent::LateFrame {
                    rack: self.rack,
                    slot,
                },
            );
            return;
        }
        let df = self.delay_slab[slot].take().expect("live delay slot");
        self.delayed_outstanding -= 1;
        self.publish_frame(t_s, df.node, &df.frame, df.true_end_s, true);
    }

    /// One trace job reaches its submit time and enters the queue.
    fn arrival(&mut self, idx: usize) {
        self.cp.submit(self.trace[idx].clone());
        self.arrivals_pending -= 1;
    }

    /// Apply a federated cap grant: swap the control plane's schedule,
    /// retune the checker's envelope, log the change. Idempotent for
    /// repeated grants of the same value (retained replays); returns
    /// whether the grant actually took effect.
    fn apply_cap(&mut self, t_ns: u64, w: f64) -> bool {
        if !w.is_finite() || w <= 0.0 || (w - self.cap_now_w).abs() < 1e-9 {
            return false;
        }
        self.cap_now_w = w;
        self.cp.set_cap_schedule(CapSchedule::constant(w));
        self.checker.set_cap_w(w);
        self.log.push(Event::CapApplied {
            t_ns,
            cap_bits: w.to_bits(),
        });
        true
    }

    /// Arm or disarm grant-span tracing and flight recording (the A/B
    /// knob overhead experiments flip; enabled by default). Digests and
    /// the event log are identical either way.
    pub(crate) fn set_tracing(&self, on: bool) {
        self.hub.set_tracing_enabled(on);
    }

    /// One control period: apply bridged cap grants, collect plant
    /// completions and death aborts, run the real loop's tick, apply
    /// DVFS commands, then either finish the rack or schedule the
    /// plant/audit phases and the next period. Returns `true` when the
    /// rack just finished.
    fn control_phase(&mut self, q: &mut EventQueue<SimEvent>, t: SimTime) -> bool {
        if self.done {
            return false;
        }
        let t_s = t.as_secs_f64();
        let t_ns = t.0;

        // ── Federated cap grants land first: the control period runs
        //    under the budget that was in force when it started. The
        //    payload is `"<watts> <seq>"`; the first token carries the
        //    exact bits the federator formatted (so `CapApplied` and
        //    every digest are unchanged by the seq suffix), the second
        //    stitches the grant's causal span across racks. ──
        if self.cap_watch.is_some() {
            let msgs = self.cap_watch.as_mut().expect("federated").drain();
            for m in msgs {
                let text = std::str::from_utf8(&m.payload).unwrap_or("");
                let mut tokens = text.split_whitespace();
                let Some(w) = tokens.next().and_then(|v| v.parse::<f64>().ok()) else {
                    continue;
                };
                let seq = tokens.next().and_then(|v| v.parse::<u64>().ok());
                if let Some(seq) = seq {
                    self.hub.span.stamp(seq, GrantStage::RackReceive, t_s);
                    self.hub
                        .flight
                        .push(t_ns, flight::kind::RACK_RECEIVE, "", seq, w.to_bits());
                }
                if self.apply_cap(t_ns, w) {
                    if let Some(seq) = seq {
                        self.hub.span.stamp(seq, GrantStage::CapCommand, t_s);
                        self.hub
                            .flight
                            .push(t_ns, flight::kind::CAP_COMMAND, "", seq, w.to_bits());
                        // A newly-commanded grant supersedes anything
                        // still waiting to actuate: the old spans stay
                        // resident and flush as lost-at-cap-command.
                        self.pending_grants.clear();
                        self.pending_grants.push((seq, w));
                    }
                }
            }
        }

        // ── Plant completions and death aborts. ──
        let mut completions: Vec<(JobId, f64)> = Vec::new();
        let mut plant = std::mem::take(&mut self.plant);
        plant.retain(|pj| {
            let killer = pj.nodes.iter().find(|&&nd| self.dead[nd as usize]);
            if let Some(&killer) = killer {
                completions.push((pj.id, t_s));
                let rec = &mut self.jobs[self.job_index[&pj.id]];
                rec.end_s = t_s;
                rec.aborted = true;
                for &nd in &pj.nodes {
                    self.speeds[nd as usize] = 1.0;
                }
                self.log.push(Event::Abort {
                    t_ns,
                    job: pj.id,
                    node: killer,
                });
                return false;
            }
            if pj.remaining_s <= 1e-9 {
                completions.push((pj.id, t_s));
                let rec = &mut self.jobs[self.job_index[&pj.id]];
                rec.end_s = t_s;
                for &nd in &pj.nodes {
                    self.speeds[nd as usize] = 1.0;
                }
                self.log.push(Event::Complete { t_ns, job: pj.id });
                return false;
            }
            true
        });
        self.plant = plant;

        // ── One control period of the real loop. ──
        let placements = self.cp.tick(t_s, &completions);
        for p in &placements {
            let job = &self.by_id[&p.job];
            self.job_index.insert(p.job, self.jobs.len());
            self.jobs.push(JobTruth {
                id: p.job,
                start_s: t_s,
                end_s: f64::NAN,
                nodes: p.nodes.clone(),
                energy_j: 0.0,
                clean: true,
                aborted: false,
            });
            self.log.push(Event::Place {
                t_ns,
                job: p.job,
                nodes: p.nodes.clone(),
            });
            self.plant.push(PlantJob {
                id: p.job,
                nodes: p.nodes.clone(),
                node_w: job.true_power_w * self.sc.app_drift[job.app as usize],
                remaining_s: job.true_runtime_s,
            });
        }

        // ── Apply DVFS commands (live, or retained replay on
        //    reconnect). ──
        for msg in self.ctl_watch.drain() {
            let node = {
                let mut parts = msg.topic.split('/');
                parts.next();
                parts
                    .next()
                    .and_then(|s| s.strip_prefix("node"))
                    .and_then(|s| s.parse::<u32>().ok())
            };
            if let (Some(node), Ok(speed)) = (
                node,
                std::str::from_utf8(&msg.payload)
                    .unwrap_or("")
                    .parse::<f64>(),
            ) {
                if node < self.sc.n_nodes {
                    let applied = speed.clamp(0.1, 1.0);
                    self.speeds[node as usize] = applied;
                    self.checker.on_speed(t_s, node, self.reconnect_tick);
                    self.log.push(Event::Speed {
                        t_ns,
                        node,
                        speed_bits: applied.to_bits(),
                        replayed: self.reconnect_tick,
                    });
                }
            }
        }

        if self.arrivals_pending == 0
            && self.plant.is_empty()
            && self.cp.queue_len() == 0
            && self.delayed_outstanding == 0
        {
            self.done = true;
            self.done_at = Some(t_s);
            return true;
        }

        q.schedule(t, phase::PLANT, SimEvent::Plant { rack: self.rack });
        q.schedule(t, phase::AUDIT, SimEvent::Audit { rack: self.rack });
        let next = t + self.tick_dur;
        assert!(
            next.as_secs_f64() < 30.0 * 86_400.0,
            "scenario {:?} failed to converge: queue={} plant={}",
            self.sc.name,
            self.cp.queue_len(),
            self.plant.len()
        );
        q.schedule(next, phase::CONTROL, SimEvent::Control { rack: self.rack });
        false
    }

    /// Advance the plant over `[t, t + tick)`: integrate draw, charge
    /// the energy ledgers, shrink remaining work.
    fn plant_phase(&mut self, t: SimTime) {
        let n = self.sc.n_nodes as usize;
        for (i, w) in self.node_draw_w.iter_mut().enumerate() {
            *w = if self.dead[i] { 0.0 } else { self.idle_w };
        }
        for pj in self.plant.iter_mut() {
            let speed = pj
                .nodes
                .iter()
                .map(|&nd| self.speeds[nd as usize])
                .fold(1.0, f64::min);
            for &nd in &pj.nodes {
                if !self.dead[nd as usize] {
                    self.node_draw_w[nd as usize] =
                        self.idle_w + speed * (pj.node_w - self.idle_w).max(0.0);
                }
            }
            pj.remaining_s -= self.tick * speed;
        }
        let sys_w: f64 = self.node_draw_w.iter().sum();
        self.total_energy_j += sys_w * self.tick;
        let mut busy_nodes = vec![false; n];
        for pj in &self.plant {
            let job_e: f64 = pj
                .nodes
                .iter()
                .map(|&nd| {
                    busy_nodes[nd as usize] = true;
                    self.node_draw_w[nd as usize] * self.tick
                })
                .sum();
            self.jobs[self.job_index[&pj.id]].energy_j += job_e;
        }
        for (i, &busy) in busy_nodes.iter().enumerate() {
            self.per_node_energy[i] += self.node_draw_w[i] * self.tick;
            if !busy {
                self.idle_energy_j += self.node_draw_w[i] * self.tick;
            }
        }
        if sys_w > self.cap_now_w {
            self.overcap_s += self.tick;
            self.overcap_energy_j += (sys_w - self.cap_now_w) * self.tick;
        }
        self.last_sys_w = sys_w;
        self.last_busy = busy_nodes.iter().filter(|&&b| b).count();
        self.advanced_at = Some(t);

        // ── Grant actuation: the first period whose observed draw sits
        //    at or under a commanded grant closes that grant's span —
        //    the causal chain's terminal hop. ──
        if !self.pending_grants.is_empty() {
            let t_s = t.as_secs_f64();
            let t_ns = t.0;
            let hub = &self.hub;
            self.pending_grants.retain(|&(seq, cap_w)| {
                if sys_w <= cap_w {
                    hub.span.stamp(seq, GrantStage::PowerCrossing, t_s);
                    hub.span.close(seq);
                    hub.flight
                        .push(t_ns, flight::kind::POWER_CROSSING, "", seq, cap_w.to_bits());
                    false
                } else {
                    true
                }
            });
        }
    }

    /// Audit the period just advanced against ground truth. New checker
    /// violations land in the flight recorder, and the *first* one
    /// snapshots the ring: the dump captures the causal window leading
    /// up to the trip.
    fn audit_phase(&mut self, t: SimTime) {
        let t_s = t.as_secs_f64();
        self.checker.on_tick(
            t_s,
            self.tick,
            &self.cp,
            &TickTruth {
                sys_w: self.last_sys_w,
                broker_down: self.broker_down,
                delivered_until: &self.delivered_until,
                dead: &self.dead,
                clock_faulted: &self.clock_faulted,
            },
        );
        self.record_new_violations(t.0);
    }

    /// Copy checker violations found since the last call into the
    /// flight ring and capture the one-shot dump on the first trip.
    fn record_new_violations(&mut self, t_ns: u64) {
        let violations = self.checker.violations();
        if violations.len() > self.seen_violations {
            for v in &violations[self.seen_violations..] {
                self.hub.flight.push(
                    t_ns,
                    flight::kind::VIOLATION,
                    v.invariant,
                    0,
                    v.t_s.to_bits(),
                );
            }
            self.seen_violations = violations.len();
            if self.flight_dump.is_none() && self.hub.flight.enabled() {
                self.flight_dump = Some(self.hub.flight.dump());
            }
        }
    }

    /// Close out the rack: classify clean jobs, fix up the report, run
    /// the end-of-run invariant checks, detach the fault hook.
    /// `fallback_end_s` is the run's final instant for racks that never
    /// reached their own termination (federated early halt).
    pub(crate) fn finish(mut self, fallback_end_s: f64) -> RunOutcome {
        let t_end = self.done_at.unwrap_or(fallback_end_s);
        // Classify jobs: clean means no fault activity touched any of
        // its nodes for its whole (slightly widened) window.
        for j in self.jobs.iter_mut() {
            if j.end_s.is_nan() {
                j.end_s = t_end;
            }
            let (a, b) = (j.start_s - self.tick, j.end_s + self.tick);
            let touched = j.nodes.iter().any(|&nd| {
                self.dirty[nd as usize]
                    .iter()
                    .any(|&(from, until)| from < b && a < until)
            });
            j.clean = !touched && !j.aborted;
        }

        let mut report = self.cp.report();
        report.total_energy_j = self.total_energy_j;
        report.overcap_energy_j = self.overcap_energy_j;
        report.overcap_s = self.overcap_s;

        // Mid-run violations the audit phase has not seen yet (e.g. a
        // converge-spacing trip on the final control period) still
        // reach the flight recorder before the end-of-run dump.
        self.record_new_violations((t_end * 1e9).round() as u64);

        let truth = GroundTruth {
            total_energy_j: self.total_energy_j,
            idle_energy_j: self.idle_energy_j,
            per_node_energy_j: self.per_node_energy,
            overcap_s: self.overcap_s,
            overcap_energy_j: self.overcap_energy_j,
            aborted_jobs: self.jobs.iter().filter(|j| j.aborted).count() as u64,
            frames_delivered: self.frames_delivered,
            frames_suppressed: self.frames_suppressed,
            makespan_s: t_end,
            jobs: self.jobs,
        };
        let violations = self.checker.finish(
            &self.cp,
            &self.broker,
            &report,
            &self.model,
            &FinalTruth {
                total_energy_j: truth.total_energy_j,
                per_node_energy_j: &truth.per_node_energy_j,
                idle_energy_j: truth.idle_energy_j,
                jobs: &truth.jobs,
                t_s: t_end,
            },
        );
        // Violations the end-of-run sweep itself uncovered (energy
        // ledgers, stale accounting) still trigger a dump: the ring
        // holds the whole run's tail either way.
        if violations.len() > self.seen_violations {
            let t_ns = (t_end * 1e9).round() as u64;
            for v in &violations[self.seen_violations..] {
                self.hub.flight.push(
                    t_ns,
                    flight::kind::VIOLATION,
                    v.invariant,
                    0,
                    v.t_s.to_bits(),
                );
            }
            if self.flight_dump.is_none() && self.hub.flight.enabled() {
                self.flight_dump = Some(self.hub.flight.dump());
            }
        }
        // Detach the hook so the broker (shared handles) cannot call
        // into freed harness state.
        self.broker.set_fault_hook(None);
        // Anything still resident in the tracers never completed its
        // loop: account it as lost at whatever stage it last reached.
        self.hub.tracer.flush();
        self.hub.span.flush();

        RunOutcome {
            scenario: self.sc.name.clone(),
            report,
            log: self.log,
            violations,
            truth,
            obs: self.hub,
            flight_dump: self.flight_dump,
        }
    }
}

/// Execute one scenario to completion and return the outcome. Pure in
/// the seed: no wall clock, no global state — two calls with an equal
/// [`Scenario`] return bit-identical event logs.
pub fn run(sc: &Scenario) -> RunOutcome {
    run_with_db_config(sc, TsDbConfig::default())
}

/// [`run`] with an explicit telemetry-store configuration for the
/// control plane — the hook the tiered-storage proof uses to show the
/// event-log digest of every canned scenario is unchanged when the
/// store seals, compresses and demotes under the loop.
pub fn run_with_db_config(sc: &Scenario, db_cfg: TsDbConfig) -> RunOutcome {
    let mut q = EventQueue::new();
    let rack = RackSim::new(0, sc, db_cfg);
    rack.bootstrap(&mut q);
    let mut world = World {
        racks: vec![rack],
        fed: None,
        active: 1,
    };
    kernel::drive(&mut q, &mut world);
    let t_end = q.now_s();
    let rack = world.racks.pop().expect("one rack");
    rack.finish(t_end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn baseline_scenario_is_clean_and_deterministic() {
        let sc = Scenario::base("unit_baseline", 11);
        let a = run(&sc);
        assert_eq!(
            a.violations,
            Vec::new(),
            "baseline must hold every invariant"
        );
        assert_eq!(a.report.jobs_completed as usize, sc.n_jobs);
        assert!(a.truth.total_energy_j > 0.0);
        let b = run(&sc);
        assert_eq!(a.log, b.log, "same seed, same scenario → same event log");
        assert_eq!(a.log.digest(), b.log.digest());
    }

    #[test]
    fn obs_latency_probe_measures_latency_and_is_bit_identical() {
        let sc = crate::scenario::obs_latency_probe(11);
        let a = run(&sc);
        let b = run(&sc);
        assert_eq!(a.violations, Vec::new(), "probe holds every invariant");
        assert_eq!(a.log.digest(), b.log.digest());
        assert_eq!(
            a.obs.registry.render_text(),
            b.obs.registry.render_text(),
            "same seed ⇒ bit-identical metrics exposition"
        );

        // Control-loop latency (frame age at actuation) is a measured,
        // non-degenerate distribution: ordinary frames are one control
        // period old, reordered ones several.
        let age = a
            .obs
            .registry
            .find_histogram("ctl_frame_age_ns")
            .unwrap()
            .snapshot();
        assert!(age.count > 0, "latency histogram must not be empty");
        let tick_ns = (sc.tick_s * 1e9) as u64;
        assert!(
            age.max >= 2 * tick_ns,
            "reordered frames must show up as multi-tick latency (max {} ns)",
            age.max
        );

        // The causal chains complete, and the injected frame loss is
        // visible as traces that never progressed past broker publish.
        let counter = |n: &str| a.obs.registry.find_counter(n).unwrap().get();
        assert!(counter("obs_trace_completed_total") > 0);
        assert!(
            counter("obs_trace_lost_total{last=\"broker_publish\"}") > 0,
            "frame loss surfaces as per-stage trace loss"
        );
    }
}
