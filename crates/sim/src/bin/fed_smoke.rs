//! CI federation smoke: a small multi-rack run with a hostile fault
//! mix, asserting the federation-level determinism and invariant
//! contracts that `fault_smoke` asserts per rack.
//!
//! * three racks under one global budget, one rack taking a broker
//!   restart mid-run (bridge sessions drop and reconnect, retained cap
//!   grants replay exactly once) and one losing a node;
//! * every per-rack and federation-level invariant must hold;
//! * the digest over all rack logs plus the federation log must be
//!   bit-identical across a re-run, and must move when reseeded.
//!
//! Exit code 0 only when all of the above hold.

use davide_sim::federation::{run_federated, FedScenario};
use davide_sim::Fault;

fn scenario(seed: u64) -> FedScenario {
    let mut fs = FedScenario::base("fed_smoke", seed, 3);
    // Rack-specific fault scripts: a healthy rack, a broker restart,
    // a node death — the federated analogues of the canned set.
    fs.per_rack_faults = vec![
        vec![],
        vec![Fault::BrokerRestart {
            from_s: 300.0,
            until_s: 360.0,
        }],
        vec![Fault::NodeDeath {
            node: 2,
            at_s: 420.0,
            revive_s: 900.0,
        }],
    ];
    fs
}

fn main() {
    let seed = 2026;
    let mut failed = false;

    let a = run_federated(&scenario(seed));
    println!("── federated racks ──");
    println!(
        "{:<22} {:>5} {:>9} {:>9} {:>8} {:>6}",
        "rack", "jobs", "frames", "suppr", "ovcap_s", "viol"
    );
    for r in &a.racks {
        println!(
            "{:<22} {:>5} {:>9} {:>9} {:>8.0} {:>6}",
            r.scenario,
            r.report.jobs_completed,
            r.truth.frames_delivered,
            r.truth.frames_suppressed,
            r.truth.overcap_s,
            r.violations.len(),
        );
    }
    println!(
        "site: {:.3} MWh vs Σ racks {:.3} MWh, {} rebalances, {} grants, {} fed violations",
        a.global_energy_j / 3.6e9,
        a.racks_energy_j() / 3.6e9,
        a.rebalances,
        a.fed_log.len(),
        a.violations.len(),
    );
    let violations = a.all_violations();
    for (scope, v) in &violations {
        println!("    VIOLATION [{scope}] {v}");
    }
    failed |= !violations.is_empty();
    failed |= a.rebalances == 0;

    println!("── determinism ──");
    let b = run_federated(&scenario(seed));
    let rerun_ok = a.digest() == b.digest();
    println!(
        "same seed rerun: {} (digest {:#018x})",
        if rerun_ok {
            "bit-identical"
        } else {
            "DIVERGED"
        },
        a.digest()
    );
    let c = run_federated(&scenario(seed + 1));
    let diverge_ok = c.digest() != a.digest();
    println!(
        "seed+1: {}",
        if diverge_ok {
            "diverges (as it must)"
        } else {
            "IDENTICAL (suspicious)"
        }
    );
    failed |= !rerun_ok || !diverge_ok;

    // Energy conservation across the hierarchy.
    let racks_j = a.racks_energy_j();
    let energy_ok = (a.global_energy_j - racks_j).abs() <= 1e-9 * racks_j + 1e-6;
    println!(
        "── energy ──\nsite ledger vs Σ rack ledgers: {}",
        if energy_ok { "conserved" } else { "LEAKED" }
    );
    failed |= !energy_ok;

    if failed {
        println!("fed-smoke: FAIL");
        std::process::exit(1);
    }
    println!("fed-smoke: OK");
}
