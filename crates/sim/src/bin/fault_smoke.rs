//! CI fault-injection smoke: run the canned scenario set, assert zero
//! invariant violations, prove determinism (same seed → same digest,
//! different seed → different digest), prove the checker has teeth
//! by running the two seeded-regression demos that MUST violate, and
//! prove the self-instrumentation stack measures control-loop latency
//! without perturbing determinism (bit-identical exposition per seed).
//!
//! Exit code 0 only when all of the above hold.

use davide_sim::scenario::{
    canned, obs_latency_probe, open_loop_overcap_demo, stale_fallback_regression_demo,
};
use davide_sim::{run, Scenario};

fn main() {
    let seed = 2026;
    let mut failed = false;

    println!("── canned scenarios (must hold every invariant) ──");
    println!(
        "{:<24} {:>5} {:>9} {:>9} {:>7} {:>7} {:>6} {:>10}",
        "scenario", "jobs", "frames", "suppr", "stale_s", "ovcap_s", "viol", "digest"
    );
    for sc in canned(seed) {
        let out = run(&sc);
        let ok = out.violations.is_empty();
        failed |= !ok;
        println!(
            "{:<24} {:>5} {:>9} {:>9} {:>7.0} {:>7.0} {:>6} {:>#10x}",
            out.scenario,
            out.report.jobs_completed,
            out.truth.frames_delivered,
            out.truth.frames_suppressed,
            out.report.stale_node_s,
            out.truth.overcap_s,
            out.violations.len(),
            out.log.digest() & 0xffff_ffff,
        );
        for v in &out.violations {
            println!("    VIOLATION {v}");
        }
    }

    println!("── determinism ──");
    let sc = canned(seed).remove(1);
    let (a, b) = (run(&sc), run(&sc));
    let rerun_ok = a.log == b.log && a.log.digest() == b.log.digest();
    let mut reseeded = sc.clone();
    reseeded.seed = seed + 1;
    let c = run(&reseeded);
    let diverge_ok = c.log.digest() != a.log.digest();
    println!(
        "same seed rerun: {} ({} events, digest {:#x})",
        if rerun_ok {
            "bit-identical"
        } else {
            "DIVERGED"
        },
        a.log.len(),
        a.log.digest()
    );
    println!(
        "seed+1: {}",
        if diverge_ok {
            "diverges (as it must)"
        } else {
            "IDENTICAL (suspicious)"
        }
    );
    failed |= !rerun_ok || !diverge_ok;

    println!("── seeded regressions (checker must catch) ──");
    failed |= !expect_violation(open_loop_overcap_demo(seed), "cap");
    failed |= !expect_violation(stale_fallback_regression_demo(seed), "stale-fallback");

    println!("── observability (latency measured, digest-neutral) ──");
    let probe = obs_latency_probe(seed);
    let (oa, ob) = (run(&probe), run(&probe));
    let obs_ok = oa.violations.is_empty()
        && oa.log.digest() == ob.log.digest()
        && oa.obs.registry.render_text() == ob.obs.registry.render_text();
    failed |= !obs_ok;
    let age = oa
        .obs
        .registry
        .find_histogram("ctl_frame_age_ns")
        .expect("ctl_frame_age_ns registered")
        .snapshot();
    failed |= age.count == 0;
    let counter = |n: &str| {
        oa.obs
            .registry
            .find_counter(n)
            .map(|c| c.get())
            .unwrap_or(0)
    };
    println!(
        "frame age: n={} p50={:.1}s p99={:.1}s max={:.1}s | traces completed={} lost@publish={}",
        age.count,
        age.quantile(0.5) as f64 / 1e9,
        age.quantile(0.99) as f64 / 1e9,
        age.max as f64 / 1e9,
        counter("obs_trace_completed_total"),
        counter("obs_trace_lost_total{last=\"broker_publish\"}"),
    );
    println!(
        "exposition: {} ({} bytes)",
        if obs_ok {
            "bit-identical across reruns"
        } else {
            "DIVERGED (or probe violated invariants)"
        },
        oa.obs.registry.render_text().len()
    );

    if failed {
        println!("fault-smoke: FAIL");
        std::process::exit(1);
    }
    println!("fault-smoke: OK");
}

fn expect_violation(sc: Scenario, invariant: &str) -> bool {
    let out = run(&sc);
    let hits = out
        .violations
        .iter()
        .filter(|v| v.invariant == invariant)
        .count();
    println!(
        "{:<36} {} `{invariant}` violations ({})",
        out.scenario,
        hits,
        if hits > 0 { "caught" } else { "MISSED" }
    );
    if let Some(v) = out.violations.iter().find(|v| v.invariant == invariant) {
        println!("    first: {v}");
    }
    hits > 0
}
