//! The discrete-event simulation kernel.
//!
//! A run is a priority queue of timestamped events, not a lockstep
//! sweep: every cause in the simulated world — a fault window opening,
//! a gateway rendering a frame, a delayed frame landing, a job
//! arriving, one control period of the loop — is an [`EventQueue`]
//! entry dispatched in deterministic order. The ordering key is
//!
//! ```text
//! (time, phase class, insertion sequence)
//! ```
//!
//! so simultaneous events resolve by *phase* (fault lifecycle before
//! gateway publishes before late frames before the control step, see
//! [`phase`]) and, within one phase, by the order they were scheduled.
//! The sequence tie-break makes the kernel *stable*: two runs that
//! schedule the same events in the same order dispatch them in the
//! same order, which is what turns the event log into a bit-identical
//! per-seed artifact.
//!
//! The kernel enforces its own core invariant — dispatch keys never go
//! backwards — and [`EventQueue::dispatched`]/[`EventQueue::last_key`]
//! expose enough state for property tests to audit it from outside
//! (see `tests/federation.rs`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use davide_core::time::SimTime;

/// Phase classes: the deterministic intra-instant dispatch order.
///
/// All events stamped with one instant resolve in this class order;
/// the classes mirror the causal structure of one control period of
/// the plant (faults act on the world before gateways observe it,
/// gateways publish before held-back frames land behind them, the
/// control plane acts on everything delivered, the federator rebalances
/// on what the control planes did, then the plant integrates and the
/// checker audits).
pub mod phase {
    /// Fault lifecycle: broker outages, node death/revival, clock
    /// faults take effect.
    pub const FAULTS: u8 = 0;
    /// Gateways render and publish the elapsed window's frames.
    pub const GATEWAYS: u8 = 1;
    /// Previously delayed frames land, out of order, behind this
    /// instant's fresh frames.
    pub const LATE_FRAME: u8 = 2;
    /// Job arrivals enter the control plane's queue.
    pub const ARRIVAL: u8 = 3;
    /// One control period: completions, scheduler tick, DVFS commands
    /// applied.
    pub const CONTROL: u8 = 4;
    /// The federator pumps the rack bridges and (on rebalance
    /// boundaries) re-splits the global power budget.
    pub const FEDERATE: u8 = 5;
    /// The plant integrates draw over the period just decided.
    pub const PLANT: u8 = 6;
    /// The invariant checker audits the period against ground truth.
    pub const AUDIT: u8 = 7;
}

/// A scheduled entry: the full ordering key plus its payload.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    t: SimTime,
    class: u8,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

impl<E> Scheduled<E> {
    fn key(&self) -> (SimTime, u8, u64) {
        (self.t, self.class, self.seq)
    }
}

/// The deterministic event queue at the heart of every simulation run.
///
/// Events are `(time, phase class, payload)`; [`pop`](Self::pop)
/// returns them in `(time, class, insertion seq)` order and asserts the
/// order never regresses. Scheduling into the past — or into an
/// already-dispatched position of the current instant — panics: a
/// simulation that does that is broken, not unlucky.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    seq: u64,
    now: SimTime,
    dispatched: u64,
    last_key: Option<(SimTime, u8, u64)>,
    halted: bool,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at `t = 0`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            dispatched: 0,
            last_key: None,
            halted: false,
        }
    }

    /// Current simulated instant (the timestamp of the last dispatched
    /// event; `t = 0` before the first).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Current simulated time, seconds.
    pub fn now_s(&self) -> f64 {
        self.now.as_secs_f64()
    }

    /// Events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Ordering key of the most recently dispatched event, if any —
    /// the probe property tests audit monotonicity with.
    pub fn last_key(&self) -> Option<(SimTime, u8, u64)> {
        self.last_key
    }

    /// Events still pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` at `(t, class)`. Returns the insertion
    /// sequence number (the stable tie-break within the instant), which
    /// [`requeue`](Self::requeue) can later reuse to keep a deferred
    /// event's position in its original order.
    ///
    /// Panics if `(t, class)` sorts before the event currently being
    /// dispatched — the kernel refuses to schedule into the past.
    pub fn schedule(&mut self, t: SimTime, class: u8, payload: E) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        self.insert(t, class, seq, payload);
        seq
    }

    /// Re-schedule a deferred event at a later `(t, class)` keeping its
    /// original insertion sequence. This is how an in-order delay line
    /// is built on a heap: frames that cannot land yet (broker down,
    /// node dead) hop forward in time but keep their relative order, so
    /// the eventual landing order is insertion order — exactly what a
    /// FIFO hold-back buffer would produce.
    pub fn requeue(&mut self, t: SimTime, class: u8, seq: u64, payload: E) {
        self.insert(t, class, seq, payload);
    }

    fn insert(&mut self, t: SimTime, class: u8, seq: u64, payload: E) {
        let key = (t, class, seq);
        if let Some(last) = self.last_key {
            assert!(
                key > last,
                "kernel: scheduling into the past ({key:?} ≤ dispatched {last:?})"
            );
        }
        self.heap.push(Reverse(Scheduled {
            t,
            class,
            seq,
            payload,
        }));
    }

    /// Dispatch the next event: advance `now` and return `(t, class,
    /// payload)`. Returns `None` when the queue is empty or
    /// [`halt`](Self::halt) was called. Asserts that dispatch keys are
    /// strictly increasing — the kernel's own out-of-order guard.
    pub fn pop(&mut self) -> Option<(SimTime, u8, E)> {
        if self.halted {
            return None;
        }
        let Reverse(ev) = self.heap.pop()?;
        let key = ev.key();
        if let Some(last) = self.last_key {
            assert!(
                key > last,
                "kernel dispatched out of order: {key:?} after {last:?}"
            );
        }
        self.last_key = Some(key);
        self.now = ev.t;
        self.dispatched += 1;
        Some((ev.t, ev.class, ev.payload))
    }

    /// Stop the run: every pending event is discarded and further
    /// [`pop`](Self::pop)s return `None`. Used by the termination
    /// check (trace drained, plant idle) to cut the recurring phase
    /// events that are already scheduled for the next period.
    pub fn halt(&mut self) {
        self.halted = true;
        self.heap.clear();
    }

    /// True once [`halt`](Self::halt) was called.
    pub fn is_halted(&self) -> bool {
        self.halted
    }
}

/// A component that consumes dispatched events and schedules follow-on
/// ones. The driver loop ([`drive`]) owns the queue; handlers get it
/// back on every dispatch so they can schedule freely.
pub trait EventHandler<E> {
    /// React to one dispatched event.
    fn handle(&mut self, q: &mut EventQueue<E>, t: SimTime, class: u8, event: E);
}

/// Run the queue dry: dispatch every event in deterministic order
/// through `handler` until the queue is empty or halted. Returns the
/// number of events dispatched.
pub fn drive<E, H: EventHandler<E>>(q: &mut EventQueue<E>, handler: &mut H) -> u64 {
    let before = q.dispatched();
    while let Some((t, class, ev)) = q.pop() {
        handler.handle(q, t, class, ev);
    }
    q.dispatched() - before
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_class_then_seq() {
        let mut q: EventQueue<&'static str> = EventQueue::new();
        q.schedule(SimTime::from_secs(5), phase::CONTROL, "late-control");
        q.schedule(SimTime::from_secs(1), phase::GATEWAYS, "gw-b");
        q.schedule(SimTime::from_secs(1), phase::FAULTS, "faults");
        q.schedule(SimTime::from_secs(1), phase::GATEWAYS, "gw-after-b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, _, e)| e).collect();
        assert_eq!(order, vec!["faults", "gw-b", "gw-after-b", "late-control"]);
    }

    #[test]
    fn same_instant_same_class_preserves_insertion_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_secs(3), phase::LATE_FRAME, i);
        }
        let got: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, _, e)| e).collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn requeue_preserves_original_order_across_a_hop() {
        // Frame A scheduled first, frame B second, both for t=2. A is
        // deferred to t=4; C is scheduled fresh at t=4 *before* A's
        // requeue happens. The delay-line contract: at t=4, A (older
        // seq) still lands before C.
        let mut q: EventQueue<&'static str> = EventQueue::new();
        let seq_a = q.schedule(SimTime::from_secs(2), phase::LATE_FRAME, "A");
        q.schedule(SimTime::from_secs(2), phase::LATE_FRAME, "B");
        q.schedule(SimTime::from_secs(4), phase::LATE_FRAME, "C");
        let (_, _, a) = q.pop().unwrap();
        assert_eq!(a, "A");
        q.requeue(SimTime::from_secs(4), phase::LATE_FRAME, seq_a, "A");
        let rest: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, _, e)| e).collect();
        assert_eq!(rest, vec!["B", "A", "C"], "A keeps its pre-C position");
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.schedule(SimTime::from_secs(10), phase::CONTROL, 0);
        q.pop();
        q.schedule(SimTime::from_secs(5), phase::CONTROL, 1);
    }

    #[test]
    fn halt_discards_pending_events() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.schedule(SimTime::from_secs(1), phase::CONTROL, 0);
        q.schedule(SimTime::from_secs(2), phase::CONTROL, 1);
        assert!(q.pop().is_some());
        q.halt();
        assert!(q.pop().is_none());
        assert!(q.is_empty() && q.is_halted());
    }

    #[test]
    fn drive_runs_a_cascading_handler_to_completion() {
        struct Chain {
            fired: Vec<u64>,
        }
        impl EventHandler<u64> for Chain {
            fn handle(&mut self, q: &mut EventQueue<u64>, t: SimTime, _class: u8, ev: u64) {
                self.fired.push(ev);
                if ev < 5 {
                    q.schedule(t + davide_core::time::SimDuration::from_secs(1), 0, ev + 1);
                }
            }
        }
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 0, 0u64);
        let mut h = Chain { fired: Vec::new() };
        let n = drive(&mut q, &mut h);
        assert_eq!(n, 6);
        assert_eq!(h.fired, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(q.now(), SimTime::from_secs(5));
    }
}
