//! The structured event log — the determinism artifact.
//!
//! Every externally meaningful thing the harness does (frame fates,
//! applied speed commands, placements, completions, fault lifecycle)
//! is appended as an [`Event`] with its virtual-time nanosecond stamp.
//! Floats are logged by their IEEE-754 bit patterns, so `EventLog`
//! equality is *bit* equality and a 64-bit FNV-1a [`digest`] of the
//! `Debug` rendering summarises a whole run in one number: same seed →
//! same digest, different seed → (overwhelmingly) different digest.
//!
//! [`digest`]: EventLog::digest

/// What happened to one published (or suppressed) gateway frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFate {
    /// Delivered on time through the broker.
    Delivered,
    /// Dropped in transit by a [`FrameLoss`](crate::Fault::FrameLoss)
    /// coin flip.
    Lost,
    /// Delivered twice by a [`Duplicate`](crate::Fault::Duplicate) coin
    /// flip.
    Duplicated,
    /// Held back by a [`Reorder`](crate::Fault::Reorder) coin flip; a
    /// `DeliveredLate` event follows when it lands.
    Delayed,
    /// A previously delayed frame delivered out of order.
    DeliveredLate,
    /// Suppressed: the gateway is inside a
    /// [`Dropout`](crate::Fault::Dropout) window.
    Dropout,
    /// Suppressed: the node is dead.
    Dead,
    /// Suppressed: the broker is down and the gateway's session with it
    /// is gone.
    BrokerDown,
}

/// One log record. Timestamps are virtual nanoseconds; floats are
/// carried as `to_bits()` so equality is exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A gateway frame was (or would have been) published.
    Frame {
        /// Virtual time, ns.
        t_ns: u64,
        /// Publishing gateway.
        node: u32,
        /// Reported frame start time, `f64::to_bits`.
        t0_bits: u64,
        /// Samples in the frame.
        n: u32,
        /// What the fault layer did with it.
        fate: FrameFate,
    },
    /// The plant applied a DVFS speed command.
    Speed {
        /// Virtual time, ns.
        t_ns: u64,
        /// Target node.
        node: u32,
        /// Applied speed factor, `f64::to_bits`.
        speed_bits: u64,
        /// True when applied from the retained replay on reconnect
        /// rather than a live controller action.
        replayed: bool,
    },
    /// The dispatcher started a job.
    Place {
        /// Virtual time, ns.
        t_ns: u64,
        /// Job id.
        job: u64,
        /// Allocated nodes.
        nodes: Vec<u32>,
    },
    /// A job ran to normal completion on the plant.
    Complete {
        /// Virtual time, ns.
        t_ns: u64,
        /// Job id.
        job: u64,
    },
    /// A job was aborted because a node under it died.
    Abort {
        /// Virtual time, ns.
        t_ns: u64,
        /// Job id.
        job: u64,
        /// The dead node that killed it.
        node: u32,
    },
    /// A node died.
    NodeDown {
        /// Virtual time, ns.
        t_ns: u64,
        /// Node id.
        node: u32,
    },
    /// A dead node rejoined.
    NodeUp {
        /// Virtual time, ns.
        t_ns: u64,
        /// Node id.
        node: u32,
    },
    /// The broker went down; node-agent sessions dropped.
    BrokerDown {
        /// Virtual time, ns.
        t_ns: u64,
    },
    /// The broker came back; agents resubscribed and received the
    /// retained replay.
    BrokerUp {
        /// Virtual time, ns.
        t_ns: u64,
        /// Retained messages replayed into the reconnecting session.
        replayed: u32,
    },
    /// A gateway clock stepped.
    ClockStep {
        /// Virtual time, ns.
        t_ns: u64,
        /// Affected gateway.
        node: u32,
        /// Step size, `f64::to_bits`.
        offset_bits: u64,
    },
    /// A federated power-budget grant reached this rack's control plane
    /// and was applied as its new cap. Only federated runs emit this;
    /// single-rack logs (and their pinned digests) never contain it.
    CapApplied {
        /// Virtual time, ns.
        t_ns: u64,
        /// Applied cap, watts, `f64::to_bits`.
        cap_bits: u64,
    },
    /// The federator re-split the global budget and granted one rack a
    /// new cap. Appears in the federation log, not in rack logs.
    FedRebalance {
        /// Virtual time, ns.
        t_ns: u64,
        /// Granted rack.
        rack: u32,
        /// Granted cap, watts, `f64::to_bits`.
        cap_bits: u64,
    },
}

/// Append-only run log with a content digest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventLog {
    events: Vec<Event>,
}

impl EventLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one record.
    pub fn push(&mut self, e: Event) {
        self.events.push(e);
    }

    /// Records so far, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Record count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// 64-bit FNV-1a over the `Debug` rendering of every record. Two
    /// runs of the same scenario must produce equal digests; this is
    /// the one number CI compares.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for e in &self.events {
            for b in format!("{e:?}\n").bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let a = Event::Frame {
            t_ns: 5_000_000_000,
            node: 1,
            t0_bits: 0.0f64.to_bits(),
            n: 5,
            fate: FrameFate::Delivered,
        };
        let b = Event::Complete {
            t_ns: 10_000_000_000,
            job: 7,
        };
        let mut l1 = EventLog::new();
        l1.push(a.clone());
        l1.push(b.clone());
        let mut l2 = EventLog::new();
        l2.push(a.clone());
        l2.push(b.clone());
        assert_eq!(l1, l2);
        assert_eq!(l1.digest(), l2.digest());

        let mut swapped = EventLog::new();
        swapped.push(b);
        swapped.push(a);
        assert_ne!(l1.digest(), swapped.digest(), "order matters");
        assert_ne!(l1, swapped);
        assert_ne!(EventLog::new().digest(), l1.digest());
        assert!(EventLog::new().is_empty());
        assert_eq!(l1.len(), 2);
    }
}
