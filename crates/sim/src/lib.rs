//! # davide-sim
//!
//! Deterministic fault-injection harness for the full telemetry →
//! control-plane loop: energy-gateway frames over the real in-process
//! MQTT broker, `telemetry::ingest` into the management store, and the
//! `sched::controlplane` actuators — driven through scripted fault
//! scenarios on a discrete-event kernel with the workspace's seeded
//! RNG, so a scenario re-run with the same seed produces a
//! **bit-identical event log**.
//!
//! * [`kernel`] — the discrete-event core: a stable priority queue of
//!   `(time, phase class, insertion seq)` events, the dispatch-order
//!   invariant, and the `drive` loop every run sits on.
//! * [`scenario`] — the fault-script DSL: per-gateway sample loss and
//!   dropout windows, duplicated/reordered frames, PTP clock skew and
//!   step, broker restart with retained-message replay, node death
//!   mid-job; plus the canned scenario set CI smokes.
//! * [`log`] — the structured event log and its FNV-64 digest, the
//!   artifact two runs of one seed must reproduce bit for bit.
//! * [`invariants`] — the checker layer: envelope compliance within the
//!   controller's overshoot budget, per-job energy conservation, the
//!   stale-telemetry fallback, and retained DVFS command convergence.
//! * [`harness`] — the plant + fault injector that wires it together
//!   and returns a [`harness::RunOutcome`].
//! * [`federation`] — multi-rack runs: N complete racks bridged into a
//!   site broker, a federator splitting one global power budget into
//!   per-rack cap grants, and global invariants on top of the per-rack
//!   ones.

#![warn(missing_docs)]

pub mod federation;
pub mod harness;
pub mod invariants;
pub mod kernel;
pub mod log;
pub mod scenario;

pub use federation::{
    run_federated, run_federated_traced, run_federated_with_db_config, FedOutcome, FedScenario,
};
pub use harness::{run, run_with_db_config, GroundTruth, RunOutcome};
pub use invariants::Violation;
pub use kernel::{EventHandler, EventQueue};
pub use log::{Event, EventLog, FrameFate};
pub use scenario::{canned, obs_latency_probe, Fault, Scenario};
