//! The harness's virtual clock.
//!
//! All loop time is integer nanoseconds ([`SimTime`]) advanced in fixed
//! control periods; `f64` seconds handed to the control plane are
//! derived from the integer state, so tick boundaries are exact and two
//! runs can never diverge by float accumulation. No wall-clock source
//! exists anywhere in the harness.

use davide_core::time::{SimDuration, SimTime};

/// Fixed-period virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtualClock {
    now: SimTime,
    tick: SimDuration,
}

impl VirtualClock {
    /// A clock at `t = 0` advancing by `tick_s` seconds per
    /// [`advance`](Self::advance).
    pub fn new(tick_s: f64) -> Self {
        assert!(tick_s > 0.0, "tick must be positive");
        VirtualClock {
            now: SimTime::ZERO,
            tick: SimDuration::from_secs_f64(tick_s),
        }
    }

    /// Current virtual instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Current virtual time, seconds (exact: derived from integer ns).
    pub fn now_s(&self) -> f64 {
        self.now.as_secs_f64()
    }

    /// Current virtual time, integer nanoseconds (event-log timestamps).
    pub fn now_ns(&self) -> u64 {
        self.now.0
    }

    /// The configured control period, seconds.
    pub fn tick_s(&self) -> f64 {
        self.tick.as_secs_f64()
    }

    /// Step one control period; returns the new instant.
    pub fn advance(&mut self) -> SimTime {
        self.now += self.tick;
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_tick_boundaries() {
        let mut c = VirtualClock::new(5.0);
        assert_eq!(c.now_s(), 0.0);
        for k in 1..=1_000_000u64 {
            c.advance();
            assert_eq!(c.now_ns(), k * 5_000_000_000, "integer time never drifts");
        }
        assert_eq!(c.now_s(), 5_000_000.0);
    }
}
