//! The lockstep-era tick clock — **deprecated** in favour of the
//! event kernel.
//!
//! Until the kernel refactor, every harness run advanced a
//! [`VirtualClock`] in fixed control periods and swept all phases each
//! tick. Time now lives in [`crate::kernel::EventQueue`]: the queue's
//! `now()` *is* the virtual clock, advanced by event dispatch rather
//! than by a blanket `advance()`, with the same integer-nanosecond
//! exactness ([`SimTime`] throughout, no wall-clock source anywhere).
//!
//! # Migrating
//!
//! A lockstep loop over `VirtualClock` becomes a recurring event that
//! reschedules itself one period ahead; the queue replaces both the
//! clock and the loop:
//!
//! ```
//! use davide_core::time::{SimDuration, SimTime};
//! use davide_sim::kernel::{drive, phase, EventHandler, EventQueue};
//!
//! // Before (deprecated):
//! //     let mut clock = VirtualClock::new(5.0);
//! //     loop {
//! //         let t = clock.now_s();
//! //         step(t);
//! //         if done { break; }
//! //         clock.advance();
//! //     }
//!
//! // After: the step is an event; the queue carries the time.
//! struct Loop {
//!     tick: SimDuration,
//!     steps: u32,
//! }
//! impl EventHandler<()> for Loop {
//!     fn handle(&mut self, q: &mut EventQueue<()>, t: SimTime, _class: u8, _ev: ()) {
//!         self.steps += 1; // step(t.as_secs_f64());
//!         if self.steps < 3 {
//!             q.schedule(t + self.tick, phase::CONTROL, ());
//!         }
//!     }
//! }
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::ZERO, phase::CONTROL, ());
//! let mut looper = Loop { tick: SimDuration::from_secs_f64(5.0), steps: 0 };
//! drive(&mut q, &mut looper);
//! assert_eq!(looper.steps, 3);
//! assert_eq!(q.now(), SimTime::from_secs(10)); // exact tick boundaries, as before
//! ```
//!
//! Tick boundaries stay exact under the kernel: `t + tick` is integer
//! nanosecond addition, identical to `VirtualClock::advance`, so
//! timestamps (and therefore event-log digests) are unchanged by the
//! migration — the differential test in `tests/fault_injection.rs`
//! pins exactly that.

use davide_core::time::{SimDuration, SimTime};

/// Fixed-period virtual clock.
#[deprecated(
    since = "0.8.0",
    note = "time lives in `kernel::EventQueue` now: schedule a recurring \
            event instead of advancing a clock (see the module docs for \
            the migration recipe)"
)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtualClock {
    now: SimTime,
    tick: SimDuration,
}

#[allow(deprecated)]
impl VirtualClock {
    /// A clock at `t = 0` advancing by `tick_s` seconds per
    /// [`advance`](Self::advance).
    pub fn new(tick_s: f64) -> Self {
        assert!(tick_s > 0.0, "tick must be positive");
        VirtualClock {
            now: SimTime::ZERO,
            tick: SimDuration::from_secs_f64(tick_s),
        }
    }

    /// Current virtual instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Current virtual time, seconds (exact: derived from integer ns).
    pub fn now_s(&self) -> f64 {
        self.now.as_secs_f64()
    }

    /// Current virtual time, integer nanoseconds (event-log timestamps).
    pub fn now_ns(&self) -> u64 {
        self.now.0
    }

    /// The configured control period, seconds.
    pub fn tick_s(&self) -> f64 {
        self.tick.as_secs_f64()
    }

    /// Step one control period; returns the new instant.
    pub fn advance(&mut self) -> SimTime {
        self.now += self.tick;
        self.now
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn exact_tick_boundaries() {
        let mut c = VirtualClock::new(5.0);
        assert_eq!(c.now_s(), 0.0);
        for k in 1..=1_000_000u64 {
            c.advance();
            assert_eq!(c.now_ns(), k * 5_000_000_000, "integer time never drifts");
        }
        assert_eq!(c.now_s(), 5_000_000.0);
    }

    #[test]
    fn kernel_reproduces_virtual_clock_boundaries() {
        // The migration contract: a self-rescheduling kernel event
        // visits exactly the instants VirtualClock::advance produced.
        use crate::kernel::{drive, phase, EventHandler, EventQueue};
        struct Ticks(Vec<u64>);
        impl EventHandler<()> for Ticks {
            fn handle(&mut self, q: &mut EventQueue<()>, t: SimTime, _c: u8, _e: ()) {
                self.0.push(t.0);
                if self.0.len() < 1000 {
                    q.schedule(t + SimDuration::from_secs_f64(5.0), phase::CONTROL, ());
                }
            }
        }
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, phase::CONTROL, ());
        let mut h = Ticks(Vec::new());
        drive(&mut q, &mut h);

        let mut c = VirtualClock::new(5.0);
        for &t_ns in &h.0 {
            assert_eq!(t_ns, c.now_ns());
            c.advance();
        }
    }
}
