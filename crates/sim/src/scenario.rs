//! Fault-scenario scripts.
//!
//! A [`Scenario`] is a declarative description of one harness run: the
//! cluster shape, the trace, and a list of [`Fault`]s with explicit
//! activation windows. Everything the run does — workload, plant noise,
//! fault coin flips — derives from `seed`, so the same scenario is
//! bit-identical across reruns.

use davide_sched::ControlMode;

/// One scripted fault. Windows are half-open `[from_s, until_s)` in
/// virtual time; probabilities are per published frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Each matching power frame is independently lost in transit with
    /// probability `p` (`node: None` matches every gateway).
    FrameLoss {
        /// Affected gateway, or all when `None`.
        node: Option<u32>,
        /// Loss probability per frame.
        p: f64,
        /// Window start, seconds.
        from_s: f64,
        /// Window end, seconds.
        until_s: f64,
    },
    /// A gateway publishes nothing at all for the whole window (sensor
    /// or link dead, node itself still computing).
    Dropout {
        /// Affected gateway.
        node: u32,
        /// Window start, seconds.
        from_s: f64,
        /// Window end, seconds.
        until_s: f64,
    },
    /// Each matching frame is independently delivered twice with
    /// probability `p` (QoS 1 style duplication in the transport).
    Duplicate {
        /// Affected gateway, or all when `None`.
        node: Option<u32>,
        /// Duplication probability per frame.
        p: f64,
        /// Window start, seconds.
        from_s: f64,
        /// Window end, seconds.
        until_s: f64,
    },
    /// Each matching frame is independently held back `delay_ticks`
    /// control periods with probability `p`, then delivered late (and
    /// therefore behind newer frames).
    Reorder {
        /// Affected gateway.
        node: u32,
        /// Delay probability per frame.
        p: f64,
        /// Hold-back, in control periods.
        delay_ticks: u32,
        /// Window start, seconds.
        from_s: f64,
        /// Window end, seconds.
        until_s: f64,
    },
    /// The gateway's PTP clock drifts at `ppm` parts-per-million for the
    /// window; reported frame timestamps accumulate the offset, which
    /// then servoes back to zero after the window.
    ClockSkew {
        /// Affected gateway.
        node: u32,
        /// Drift rate, parts per million.
        ppm: f64,
        /// Window start, seconds.
        from_s: f64,
        /// Window end, seconds.
        until_s: f64,
    },
    /// A one-shot PTP step: reported timestamps jump by `offset_s` at
    /// `at_s` (negative = into the past, making frames look stale), then
    /// servo back to zero.
    ClockStep {
        /// Affected gateway.
        node: u32,
        /// Step size, seconds.
        offset_s: f64,
        /// Step instant, seconds.
        at_s: f64,
    },
    /// The broker restarts: every node-agent session drops (gateways
    /// stop publishing, applied speed limits reset to nominal) until
    /// `until_s`, when agents reconnect and receive the retained-message
    /// replay. The retained store itself persists, as on a
    /// spec-compliant broker with persistence.
    BrokerRestart {
        /// Outage start, seconds.
        from_s: f64,
        /// Reconnect instant, seconds.
        until_s: f64,
    },
    /// A node dies mid-job at `at_s` (draw drops to zero, its jobs
    /// abort) and rejoins at `revive_s`.
    NodeDeath {
        /// Affected node.
        node: u32,
        /// Death instant, seconds.
        at_s: f64,
        /// Rejoin instant, seconds.
        revive_s: f64,
    },
}

/// One complete harness run script.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name, for reports.
    pub name: String,
    /// Master seed; every random stream in the run forks from it.
    pub seed: u64,
    /// Control-plane mode under test.
    pub mode: ControlMode,
    /// Compute nodes.
    pub n_nodes: u32,
    /// Constant facility cap, watts.
    pub cap_w: f64,
    /// Jobs in the replayed trace.
    pub n_jobs: usize,
    /// Completed jobs used to batch-train the predictor first.
    pub n_history: usize,
    /// Control period, seconds.
    pub tick_s: f64,
    /// Gateway sample spacing inside a frame, seconds.
    pub sample_dt_s: f64,
    /// Multiplicative telemetry noise (1σ, relative).
    pub noise: f64,
    /// Mean requested walltime of the trace, seconds.
    pub mean_walltime_s: f64,
    /// Mean interarrival of the trace, seconds.
    pub mean_interarrival_s: f64,
    /// Largest node count a job may request.
    pub max_job_nodes: u32,
    /// Per-app plant drift the batch predictor has not seen.
    pub app_drift: [f64; 4],
    /// The fault script.
    pub faults: Vec<Fault>,
    /// Telemetry-staleness deadline the *checker* reasons with (the
    /// control plane's own deadline, unless sabotaged below), seconds.
    pub deadline_s: f64,
    /// How long aggregate truth power may continuously exceed
    /// `cap + busy · band` before INV-CAP flags it, seconds. Sized to
    /// the ladder: depth × sustain plus actuation latency.
    pub cap_grace_s: f64,
    /// Sabotage knob for regression tests: disarm the control plane's
    /// stale-telemetry fallback (its deadline becomes effectively
    /// infinite) while the checker still audits against `deadline_s`.
    /// A healthy loop never sets this.
    pub disable_stale_fallback: bool,
    /// Broker shard count override; `None` uses the broker default.
    /// Digests are shard-invariant, so this only exists to let tests
    /// pin both extremes and prove it.
    pub broker_shards: Option<usize>,
}

impl Scenario {
    /// A small-cluster baseline with no faults; canned scenarios start
    /// here and add their script.
    pub fn base(name: &str, seed: u64) -> Self {
        Scenario {
            name: name.to_string(),
            seed,
            mode: ControlMode::ClosedLoop,
            n_nodes: 6,
            cap_w: 9_000.0,
            n_jobs: 12,
            n_history: 400,
            tick_s: 5.0,
            sample_dt_s: 1.0,
            noise: 0.02,
            mean_walltime_s: 1_500.0,
            mean_interarrival_s: 120.0,
            max_job_nodes: 2,
            app_drift: [1.05, 0.95, 1.08, 0.92],
            faults: Vec::new(),
            deadline_s: 30.0,
            cap_grace_s: 240.0,
            disable_stale_fallback: false,
            broker_shards: None,
        }
    }

    /// Largest fault-window end in the script, seconds (0 when clean).
    pub fn last_fault_end_s(&self) -> f64 {
        self.faults
            .iter()
            .map(|f| match *f {
                Fault::FrameLoss { until_s, .. }
                | Fault::Dropout { until_s, .. }
                | Fault::Duplicate { until_s, .. }
                | Fault::Reorder { until_s, .. }
                | Fault::ClockSkew { until_s, .. }
                | Fault::BrokerRestart { until_s, .. } => until_s,
                Fault::ClockStep { at_s, .. } => at_s,
                Fault::NodeDeath { revive_s, .. } => revive_s,
            })
            .fold(0.0, f64::max)
    }
}

/// The canned scenario set: one script per fault family, all expected
/// to complete their trace with **zero** invariant violations. These are
/// the tier-1 integration fixtures and the CI fault-smoke set.
pub fn canned(seed: u64) -> Vec<Scenario> {
    let mut set = Vec::new();

    set.push(Scenario::base("baseline", seed));

    let mut s = Scenario::base("gateway_dropout", seed);
    s.faults = vec![
        Fault::Dropout {
            node: 1,
            from_s: 200.0,
            until_s: 500.0,
        },
        Fault::Dropout {
            node: 3,
            from_s: 350.0,
            until_s: 700.0,
        },
    ];
    set.push(s);

    let mut s = Scenario::base("lossy_links", seed);
    s.faults = vec![
        Fault::FrameLoss {
            node: None,
            p: 0.35,
            from_s: 100.0,
            until_s: 700.0,
        },
        Fault::Duplicate {
            node: None,
            p: 0.15,
            from_s: 100.0,
            until_s: 700.0,
        },
    ];
    set.push(s);

    let mut s = Scenario::base("reordered_frames", seed);
    s.faults = vec![
        Fault::Reorder {
            node: 0,
            p: 0.5,
            delay_ticks: 3,
            from_s: 100.0,
            until_s: 600.0,
        },
        Fault::Duplicate {
            node: Some(2),
            p: 0.3,
            from_s: 100.0,
            until_s: 600.0,
        },
    ];
    set.push(s);

    let mut s = Scenario::base("clock_faults", seed);
    s.faults = vec![
        Fault::ClockSkew {
            node: 1,
            ppm: 2_000.0,
            from_s: 100.0,
            until_s: 600.0,
        },
        Fault::ClockStep {
            node: 2,
            offset_s: -20.0,
            at_s: 300.0,
        },
        Fault::ClockStep {
            node: 0,
            offset_s: 15.0,
            at_s: 250.0,
        },
    ];
    set.push(s);

    let mut s = Scenario::base("broker_restart", seed);
    // A tight cap forces DVFS commands out *before* the outage so the
    // retained replay has something to restore.
    s.cap_w = 6_500.0;
    s.faults = vec![Fault::BrokerRestart {
        from_s: 400.0,
        until_s: 460.0,
    }];
    set.push(s);

    let mut s = Scenario::base("node_death", seed);
    s.faults = vec![Fault::NodeDeath {
        node: 2,
        at_s: 250.0,
        revive_s: 600.0,
    }];
    set.push(s);

    set
}

/// The self-observability probe: a reorder-heavy script so the
/// control-loop latency distribution (frame age at actuation, plus the
/// per-stage trace lags) has real spread — most frames arrive one
/// control period old, delayed ones several. The instrumentation stack
/// runs off the harness's virtual clock, so the rendered metrics
/// exposition of this scenario must be **bit-identical** across reruns
/// of one seed, and the latency histogram must be non-empty.
pub fn obs_latency_probe(seed: u64) -> Scenario {
    let mut s = Scenario::base("obs_latency_probe", seed);
    s.faults = vec![
        Fault::Reorder {
            node: 0,
            p: 0.6,
            delay_ticks: 4,
            from_s: 50.0,
            until_s: 900.0,
        },
        Fault::Reorder {
            node: 3,
            p: 0.4,
            delay_ticks: 2,
            from_s: 50.0,
            until_s: 900.0,
        },
        Fault::FrameLoss {
            node: None,
            p: 0.1,
            from_s: 50.0,
            until_s: 900.0,
        },
    ];
    s
}

/// The seeded-regression demo INV-CAP must catch: an open loop (no
/// reactive ladder) admitting against predictions that the plant then
/// overshoots by 30 % under a cap with no slack. A correct closed loop
/// survives the same plant; the open loop must trip the checker.
pub fn open_loop_overcap_demo(seed: u64) -> Scenario {
    let mut s = Scenario::base("open_loop_overcap_demo", seed);
    s.mode = ControlMode::OpenLoop;
    s.cap_w = 7_000.0;
    s.app_drift = [1.30, 1.30, 1.30, 1.30];
    s.mean_walltime_s = 2_400.0;
    s
}

/// The seeded-regression demo INV-STALE must catch: a long gateway
/// dropout with the loop's stale-telemetry fallback disarmed. The
/// checker still audits against the nominal deadline and must flag both
/// the frozen estimates and the missing stale accounting.
pub fn stale_fallback_regression_demo(seed: u64) -> Scenario {
    let mut s = Scenario::base("stale_fallback_regression_demo", seed);
    s.faults = vec![Fault::Dropout {
        node: 1,
        from_s: 150.0,
        until_s: 900.0,
    }];
    s.disable_stale_fallback = true;
    s
}
