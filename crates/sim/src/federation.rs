//! Multi-rack federation: N racks under one global power budget.
//!
//! Each rack is a complete single-rack stack — its own broker, gateway
//! fleet, control plane, fault script and invariant checker (a
//! [`RackSim`]) — and a *federator* stitches them into one site:
//!
//! * per-rack **uplink** bridges ([`davide_mqtt::Bridge`]) forward
//!   `davide/+/power/node` frames onto the site broker under a
//!   `rackNN/` prefix, where the federator's watch client measures
//!   per-rack demand;
//! * on a rebalance boundary the federator splits the global budget
//!   with [`davide_core::budget::split_budget`] and publishes each
//!   rack's grant as a **retained** `fed/rackNN/cap` message on the
//!   site broker;
//! * per-rack **downlink** bridges forward the grants back onto the
//!   rack brokers, where the rack's control plane applies them as its
//!   new cap ([`Event::CapApplied`] in the rack log,
//!   [`Event::FedRebalance`] in the federation log).
//!
//! Everything runs on the same [`crate::kernel`] event queue as the
//! racks themselves: the `Federate` phase sorts after every rack's
//! control step and before any plant integrates, and a `FedAudit`
//! phase event audits the global envelope after every per-rack audit
//! of the same instant. Rack broker restarts tear the rack's uplink
//! session down with it; the bridge's retained-replay deduplication
//! guarantees a reconnect never double-delivers a cap grant.
//!
//! Determinism carries over wholesale: a [`FedScenario`] re-run with
//! the same seed produces bit-identical rack logs *and* a bit-identical
//! federation log, summarised in one [`FedOutcome::digest`].

use bytes::Bytes;
use davide_core::budget::{split_budget, SharingPolicy};
use davide_core::rng::Rng;
use davide_core::time::{SimDuration, SimTime};
use davide_core::Watts;
use davide_mqtt::{Bridge, Broker, Client, QoS};
use davide_obs::{flight, GrantStage};
use davide_sched::{CapSchedule, ControlPlaneConfig};
use davide_telemetry::gateway::SampleFrame;
use davide_telemetry::TsDbConfig;

use crate::harness::{RackSim, RunOutcome, SimEvent, World};
use crate::invariants::Violation;
use crate::kernel::{self, phase, EventQueue};
use crate::log::{Event, EventLog};
use crate::scenario::{Fault, Scenario};

/// A federated scenario: one rack template stamped out `n_racks` times
/// (each with its own derived seed and, optionally, its own fault
/// script), plus the site-level budget policy.
#[derive(Debug, Clone)]
pub struct FedScenario {
    /// Scenario name, for reports.
    pub name: String,
    /// Master seed; per-rack seeds and every federation decision derive
    /// from it.
    pub seed: u64,
    /// Number of racks.
    pub n_racks: usize,
    /// The rack template: every rack runs this scenario (name, seed and
    /// cap are overridden per rack).
    pub rack: Scenario,
    /// Per-rack fault scripts. Empty → every rack runs the template's
    /// script; otherwise rack `i` runs entry `i % len`.
    pub per_rack_faults: Vec<Vec<Fault>>,
    /// Global facility budget, watts, split across racks.
    pub global_budget_w: f64,
    /// Per-rack grant floor, watts. Must clear a rack's idle draw or
    /// the split starves an idle rack below feasibility.
    pub floor_w: f64,
    /// Rebalance period, seconds. Must be a whole multiple of the rack
    /// control period.
    pub rebalance_s: f64,
    /// How the budget is split.
    pub policy: SharingPolicy,
}

impl FedScenario {
    /// A small federation built on [`Scenario::base`]: `n_racks` 6-node
    /// racks under a global budget ~10 % tighter than the sum of the
    /// racks' standalone caps, so rebalancing has real work to do.
    pub fn base(name: &str, seed: u64, n_racks: usize) -> FedScenario {
        FedScenario {
            name: name.to_string(),
            seed,
            n_racks,
            rack: Scenario::base(name, seed),
            per_rack_faults: Vec::new(),
            global_budget_w: 8_100.0 * n_racks as f64,
            floor_w: 2_500.0,
            rebalance_s: 60.0,
            policy: SharingPolicy::DemandProportional,
        }
    }

    /// The E28 shape: `n_racks` racks of `nodes_per_rack` nodes running
    /// `jobs_per_rack` jobs each at a 30 s control period — the
    /// petaflops-class sizing is 23 racks × 45 nodes ≥ 1000 nodes and
    /// ≥ 50 000 jobs over a simulated day.
    pub fn sized(
        name: &str,
        seed: u64,
        n_racks: usize,
        nodes_per_rack: u32,
        jobs_per_rack: usize,
    ) -> FedScenario {
        let mut rack = Scenario::base(name, seed);
        rack.n_nodes = nodes_per_rack;
        rack.n_jobs = jobs_per_rack;
        rack.tick_s = 30.0;
        rack.sample_dt_s = 5.0;
        rack.mean_walltime_s = 900.0;
        rack.mean_interarrival_s = 45.0;
        rack.max_job_nodes = 4;
        rack.deadline_s = 90.0;
        rack.cap_grace_s = 600.0;
        rack.cap_w = 1_350.0 * nodes_per_rack as f64;
        FedScenario {
            name: name.to_string(),
            seed,
            n_racks,
            rack,
            per_rack_faults: Vec::new(),
            global_budget_w: 1_200.0 * (nodes_per_rack as f64) * n_racks as f64,
            floor_w: 400.0 * nodes_per_rack as f64,
            rebalance_s: 120.0,
            policy: SharingPolicy::DemandProportional,
        }
    }

    /// Rack `i`'s concrete scenario: the template with a derived name,
    /// an independently mixed seed, an even share of the budget as its
    /// starting cap, and its own fault script when one is configured.
    pub fn rack_scenario(&self, i: usize) -> Scenario {
        let mut sc = self.rack.clone();
        sc.name = format!("{}/rack{i:02}", self.name);
        // Independent per-rack randomness: mix the rack index through
        // the workspace RNG so rack streams never collide or correlate.
        let mut mix =
            Rng::seed_from(self.seed ^ (i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        sc.seed = mix.next_u64();
        sc.cap_w = self.global_budget_w / self.n_racks as f64;
        if !self.per_rack_faults.is_empty() {
            sc.faults = self.per_rack_faults[i % self.per_rack_faults.len()].clone();
        }
        sc
    }
}

/// Everything a federated run produces: every rack's full
/// [`RunOutcome`] plus the federation-level log, checks and energy
/// ledger.
#[derive(Debug)]
pub struct FedOutcome {
    /// Federated scenario name.
    pub scenario: String,
    /// Per-rack outcomes, rack order.
    pub racks: Vec<RunOutcome>,
    /// The federator's own event log ([`Event::FedRebalance`] entries).
    pub fed_log: EventLog,
    /// Federation-level violations (`"fed-split"`, `"fed-cap"`,
    /// `"fed-energy"`).
    pub violations: Vec<Violation>,
    /// Site energy as the federator accounted it, joules.
    pub global_energy_j: f64,
    /// The global budget the run held, watts.
    pub global_budget_w: f64,
    /// Budget rebalances performed.
    pub rebalances: u64,
}

impl FedOutcome {
    /// One number summarising the whole federated run: FNV-1a over
    /// every rack's log digest (rack order) and the federation log's
    /// digest. Same seed → same digest, across the racks *and* the
    /// federator's decisions.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let digests = self
            .racks
            .iter()
            .map(|r| r.log.digest())
            .chain(std::iter::once(self.fed_log.digest()));
        for d in digests {
            for b in d.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        }
        h
    }

    /// Every violation in the run: federation-level ones first, then
    /// each rack's, tagged with the rack scenario name.
    pub fn all_violations(&self) -> Vec<(String, Violation)> {
        let mut out: Vec<(String, Violation)> = self
            .violations
            .iter()
            .map(|v| (self.scenario.clone(), v.clone()))
            .collect();
        for r in &self.racks {
            out.extend(r.violations.iter().map(|v| (r.scenario.clone(), v.clone())));
        }
        out
    }

    /// Sum of the racks' ground-truth energy ledgers, joules.
    pub fn racks_energy_j(&self) -> f64 {
        self.racks.iter().map(|r| r.truth.total_energy_j).sum()
    }
}

/// The site-level component: owns the site broker, the rack bridges,
/// the demand ledger and the budget splitter. Driven by the kernel's
/// `Federate`/`FedAudit` phase events.
pub(crate) struct Federator {
    uplinks: Vec<Bridge>,
    downlinks: Vec<Bridge>,
    /// Site-side subscriber to every rack's bridged power frames.
    watch: Client,
    /// Site-side publisher of retained cap grants.
    grant: Client,
    /// Last delivered mean draw per node per rack, watts (idle draw
    /// until first telemetry).
    node_demand_w: Vec<Vec<f64>>,
    /// Grants currently in force, per rack.
    caps_w: Vec<f64>,
    /// Next grant sequence number per rack: stamped into the grant
    /// payload so the rack-side span tracer can stitch the causal
    /// chain. Increments only on actual publishes, so it is as
    /// deterministic as the rebalance decisions themselves.
    grant_seq: Vec<u64>,
    tick_s: f64,
    tick_dur: SimDuration,
    rebalance_ns: u64,
    budget_w: f64,
    floor_w: f64,
    policy: SharingPolicy,
    /// Per-node ladder hysteresis band of the rack controllers — the
    /// same slack the per-rack envelope check grants.
    band_w: f64,
    grace_s: f64,
    log: EventLog,
    violations: Vec<Violation>,
    energy_j: f64,
    overcap_streak_s: f64,
    rebalances: u64,
}

impl Federator {
    /// Wire the site: bridges onto every rack broker, watch + grant
    /// clients on the site broker.
    fn new(fs: &FedScenario, site: &Broker, racks: &[RackSim]) -> Federator {
        let cfg = ControlPlaneConfig::davide(
            fs.rack.mode,
            fs.rack.n_nodes,
            CapSchedule::constant(fs.rack.cap_w),
        );
        assert!(
            fs.floor_w > cfg.idle_node_power_w * fs.rack.n_nodes as f64,
            "floor {} W must clear a rack's idle draw",
            fs.floor_w
        );
        let tick_dur = SimDuration::from_secs_f64(fs.rack.tick_s);
        let rebalance_ns = SimDuration::from_secs_f64(fs.rebalance_s).0;
        assert!(
            rebalance_ns > 0 && rebalance_ns.is_multiple_of(tick_dur.0),
            "rebalance period must be a whole multiple of the control period"
        );
        let mut uplinks = Vec::with_capacity(racks.len());
        let mut downlinks = Vec::with_capacity(racks.len());
        for (i, rack) in racks.iter().enumerate() {
            uplinks.push(
                Bridge::connect(
                    &rack.broker,
                    site,
                    &format!("rack{i:02}-up"),
                    &["davide/+/power/node"],
                    Some(&format!("rack{i:02}")),
                )
                .expect("uplink filters are static"),
            );
            let mut downlink = Bridge::connect(
                site,
                &rack.broker,
                &format!("rack{i:02}-down"),
                &[&format!("fed/rack{i:02}/cap")],
                None,
            )
            .expect("downlink filters are static");
            // Span stage 1 (BridgeDeliver): observe each deduplicated
            // grant forward on its way down to the rack broker. Stamps
            // go to the *rack's* tracer — the span belongs to the rack
            // the grant is for — on the rack's manual clock, so traced
            // and untraced runs stay bit-identical.
            let span = rack.hub.span.clone();
            let flight_rec = rack.hub.flight.clone();
            let clock = rack.hub.clock.clone();
            downlink.set_forward_hook(Some(Box::new(move |_topic, payload, _retain| {
                let text = std::str::from_utf8(payload).unwrap_or("");
                let mut tokens = text.split_whitespace();
                let Some(w) = tokens.next().and_then(|v| v.parse::<f64>().ok()) else {
                    return;
                };
                let Some(seq) = tokens.next().and_then(|v| v.parse::<u64>().ok()) else {
                    return;
                };
                let t_s = clock.now_s();
                span.stamp(seq, GrantStage::BridgeDeliver, t_s);
                flight_rec.push(
                    (t_s * 1e9).round() as u64,
                    flight::kind::BRIDGE_DELIVER,
                    "",
                    seq,
                    w.to_bits(),
                );
            })));
            downlinks.push(downlink);
        }
        let mut watch = site.connect("federator-demand");
        watch
            .subscribe("+/davide/+/power/node", QoS::AtMostOnce)
            .expect("subscribe bridged power");
        let grant = site.connect("federator-grants");
        Federator {
            uplinks,
            downlinks,
            watch,
            grant,
            node_demand_w: vec![vec![cfg.idle_node_power_w; fs.rack.n_nodes as usize]; racks.len()],
            caps_w: vec![fs.global_budget_w / racks.len() as f64; racks.len()],
            grant_seq: vec![0; racks.len()],
            tick_s: fs.rack.tick_s,
            tick_dur,
            rebalance_ns,
            budget_w: fs.global_budget_w,
            floor_w: fs.floor_w,
            policy: fs.policy,
            band_w: cfg.band_w,
            grace_s: fs.rack.cap_grace_s,
            log: EventLog::new(),
            violations: Vec::new(),
            energy_j: 0.0,
            overcap_streak_s: 0.0,
            rebalances: 0,
        }
    }

    /// One federation period: track rack outages on the uplinks, pump
    /// telemetry up, refresh the demand ledger, rebalance on the
    /// boundary, pump grants down, and schedule the global audit.
    pub(crate) fn federate(
        &mut self,
        q: &mut EventQueue<SimEvent>,
        t: SimTime,
        racks: &mut [RackSim],
    ) {
        let t_s = t.as_secs_f64();
        let t_ns = t.0;

        // Rack broker restarts take the bridge sessions with them.
        for (i, rack) in racks.iter().enumerate() {
            if rack.broker_down {
                self.uplinks[i].disconnect_source();
            } else if !self.uplinks[i].source_connected() {
                self.uplinks[i]
                    .reconnect_source()
                    .expect("resubscribe uplink after rack restart");
            }
        }
        for (i, rack) in racks.iter().enumerate() {
            if !rack.broker_down {
                self.uplinks[i].pump();
            }
        }

        // Demand ledger: last delivered mean per node.
        for m in self.watch.drain() {
            let Some((rack, node)) = parse_bridged_power(&m.topic) else {
                continue;
            };
            if rack >= self.node_demand_w.len() || node >= self.node_demand_w[rack].len() {
                continue;
            }
            if let Some(frame) = SampleFrame::decode(m.payload) {
                if !frame.watts.is_empty() {
                    let mean = frame.watts.iter().map(|&w| w as f64).sum::<f64>()
                        / frame.watts.len() as f64;
                    self.node_demand_w[rack][node] = mean;
                }
            }
        }

        if t.0.is_multiple_of(self.rebalance_ns) {
            self.rebalances += 1;
            let demands: Vec<Watts> = self
                .node_demand_w
                .iter()
                .map(|nodes| Watts(nodes.iter().sum()))
                .collect();
            let grants = split_budget(
                Watts(self.budget_w),
                &demands,
                Watts(self.floor_w),
                self.policy,
            );
            let granted: f64 = grants.iter().map(|g| g.0).sum();
            if granted > self.budget_w + 1e-6 {
                self.violations.push(Violation {
                    invariant: "fed-split",
                    t_s,
                    detail: format!(
                        "granted {granted:.3} W exceeds the {:.3} W budget",
                        self.budget_w
                    ),
                });
            }
            for (i, g) in grants.iter().enumerate() {
                if (g.0 - self.caps_w[i]).abs() <= 1e-6 {
                    continue;
                }
                self.caps_w[i] = g.0;
                let seq = self.grant_seq[i];
                self.grant_seq[i] += 1;
                // Payload is `"{grant} {seq}"`: `{}` on f64 is the
                // shortest round-trippable rendering, so the rack
                // parses back the exact grant bits; the trailing seq
                // token stitches the causal span and never enters any
                // digested event.
                self.grant
                    .publish(
                        &format!("fed/rack{i:02}/cap"),
                        Bytes::from(format!("{} {seq}", g.0).into_bytes()),
                        QoS::AtLeastOnce,
                        true,
                    )
                    .expect("site broker is never down");
                racks[i].hub.span.stamp(seq, GrantStage::FedSplit, t_s);
                racks[i]
                    .hub
                    .flight
                    .push(t_ns, flight::kind::FED_SPLIT, "", seq, g.0.to_bits());
                self.log.push(Event::FedRebalance {
                    t_ns,
                    rack: i as u32,
                    cap_bits: g.0.to_bits(),
                });
            }
        }

        for (i, rack) in racks.iter().enumerate() {
            if !rack.broker_down {
                self.downlinks[i].pump();
            }
        }

        q.schedule(t + self.tick_dur, phase::FEDERATE, SimEvent::Federate);
        q.schedule(t, phase::AUDIT, SimEvent::FedAudit);
    }

    /// Global audit of one instant, after every rack's own audit: sum
    /// the draw of racks that integrated this period, accrue site
    /// energy, and hold the global envelope `budget + busy·band`
    /// within the grace window.
    pub(crate) fn audit(&mut self, t: SimTime, racks: &[RackSim]) {
        let t_s = t.as_secs_f64();
        let mut sys_w = 0.0;
        let mut busy = 0usize;
        let mut advanced = false;
        let mut visible = true;
        for r in racks {
            if r.advanced_at == Some(t) {
                advanced = true;
                sys_w += r.last_sys_w;
                busy += r.last_busy;
                if r.broker_down {
                    visible = false;
                }
            }
        }
        if !advanced {
            return;
        }
        self.energy_j += sys_w * self.tick_s;
        // One extra watt of slack per rack, mirroring the per-rack
        // check's float guard.
        let allowed = self.budget_w + busy as f64 * self.band_w + racks.len() as f64;
        if sys_w > allowed && visible {
            self.overcap_streak_s += self.tick_s;
            if self.overcap_streak_s > self.grace_s {
                self.violations.push(Violation {
                    invariant: "fed-cap",
                    t_s,
                    detail: format!(
                        "site draw {sys_w:.1} W > allowed {allowed:.1} W for {:.0}s \
                         (budget {:.1} W, {busy} busy nodes)",
                        self.overcap_streak_s, self.budget_w
                    ),
                });
                self.overcap_streak_s = 0.0;
            }
        } else {
            self.overcap_streak_s = 0.0;
        }
    }

    /// End-of-run federation checks against the racks' ground truth:
    /// the site energy ledger must equal the sum of the per-rack
    /// ledgers (same integrals, summed in a different order, so the
    /// tolerance is float-roundoff-sized).
    fn finish(mut self, racks: &[RunOutcome]) -> (EventLog, Vec<Violation>, f64, u64) {
        let racks_energy: f64 = racks.iter().map(|r| r.truth.total_energy_j).sum();
        let tol = 1e-9 * racks_energy.abs() + 1e-6;
        if (self.energy_j - racks_energy).abs() > tol {
            self.violations.push(Violation {
                invariant: "fed-energy",
                t_s: racks.iter().map(|r| r.truth.makespan_s).fold(0.0, f64::max),
                detail: format!(
                    "site ledger {:.3} J vs Σ rack ledgers {racks_energy:.3} J",
                    self.energy_j
                ),
            });
        }
        (self.log, self.violations, self.energy_j, self.rebalances)
    }
}

/// Rack and node ids from a bridged power topic
/// (`rackNN/davide/nodeMM/power/node`).
fn parse_bridged_power(topic: &str) -> Option<(usize, usize)> {
    let mut parts = topic.split('/');
    let rack = parts.next()?.strip_prefix("rack")?.parse().ok()?;
    if parts.next() != Some("davide") {
        return None;
    }
    let node = parts.next()?.strip_prefix("node")?.parse().ok()?;
    if parts.next() != Some("power") || parts.next() != Some("node") || parts.next().is_some() {
        return None;
    }
    Some((rack, node))
}

/// Execute a federated scenario to completion. Pure in the seed, like
/// [`crate::run`]: bit-identical rack and federation logs per seed.
pub fn run_federated(fs: &FedScenario) -> FedOutcome {
    run_federated_with_db_config(fs, TsDbConfig::default())
}

/// [`run_federated`] with an explicit per-rack telemetry-store
/// configuration (each rack's control plane gets its own clone — the
/// knob E28 uses to run day-long federations under tiered storage).
/// Grant tracing is armed; digests are bit-identical either way.
pub fn run_federated_with_db_config(fs: &FedScenario, db_cfg: TsDbConfig) -> FedOutcome {
    run_federated_traced(fs, db_cfg, true)
}

/// [`run_federated_with_db_config`] with an explicit tracing switch:
/// `tracing = false` disarms every rack's grant-span tracer and flight
/// recorder (the instrumentation's atomic early-outs), which is the
/// baseline side of E29's overhead A/B. The event logs — and therefore
/// [`FedOutcome::digest`] — are bit-identical either way; only the obs
/// registries and flight rings differ.
pub fn run_federated_traced(fs: &FedScenario, db_cfg: TsDbConfig, tracing: bool) -> FedOutcome {
    assert!(fs.n_racks >= 1, "a federation needs at least one rack");
    let site = Broker::new(1 << 16);
    let racks: Vec<RackSim> = (0..fs.n_racks)
        .map(|i| {
            let mut r = RackSim::new(i, &fs.rack_scenario(i), db_cfg.clone());
            r.enable_federation();
            r.set_tracing(tracing);
            r
        })
        .collect();
    let fed = Federator::new(fs, &site, &racks);

    let mut q = EventQueue::new();
    for r in &racks {
        r.bootstrap(&mut q);
    }
    q.schedule(SimTime::ZERO, phase::FEDERATE, SimEvent::Federate);

    let mut world = World {
        racks,
        fed: Some(fed),
        active: fs.n_racks,
    };
    kernel::drive(&mut q, &mut world);
    let t_end = q.now_s();

    let fed = world.fed.take().expect("federator installed above");
    let racks: Vec<RunOutcome> = world.racks.drain(..).map(|r| r.finish(t_end)).collect();
    let (fed_log, violations, global_energy_j, rebalances) = fed.finish(&racks);
    FedOutcome {
        scenario: fs.name.clone(),
        racks,
        fed_log,
        violations,
        global_energy_j,
        global_budget_w: fs.global_budget_w,
        rebalances,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_rack_federation_is_clean_and_deterministic() {
        let fs = FedScenario::base("unit_fed", 17, 2);
        let a = run_federated(&fs);
        assert_eq!(a.all_violations(), Vec::new(), "healthy federation");
        assert_eq!(a.racks.len(), 2);
        for r in &a.racks {
            assert_eq!(r.report.jobs_completed as usize, fs.rack.n_jobs);
        }
        assert!(a.rebalances > 0, "the budget was rebalanced");
        assert!(
            (a.global_energy_j - a.racks_energy_j()).abs() <= 1e-9 * a.racks_energy_j() + 1e-6,
            "site ledger equals the sum of rack ledgers"
        );
        let b = run_federated(&fs);
        assert_eq!(a.digest(), b.digest(), "same seed → same federated digest");
    }

    #[test]
    fn grant_spans_complete_and_tracing_leaves_digests_unchanged() {
        let fs = FedScenario::base("unit_fed_trace", 29, 2);
        let traced = run_federated(&fs);
        let untraced = run_federated_traced(&fs, TsDbConfig::default(), false);
        assert_eq!(
            traced.digest(),
            untraced.digest(),
            "tracing never perturbs the event logs"
        );
        for r in &traced.racks {
            let counters = davide_obs::rollup_counters([&*r.obs.registry]);
            let get = |name: &str| {
                counters
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|&(_, v)| v)
                    .unwrap_or(0)
            };
            assert!(
                get("obs_grant_completed_total") > 0,
                "{}: grant spans reached the power crossing",
                r.scenario
            );
            let kinds: std::collections::BTreeSet<&str> = r
                .obs
                .flight
                .snapshot()
                .iter()
                .map(|(_, e)| e.kind)
                .collect();
            for stage in davide_obs::GRANT_STAGE_NAMES {
                assert!(kinds.contains(stage), "{}: flight saw {stage}", r.scenario);
            }
        }
        for r in &untraced.racks {
            assert_eq!(r.obs.flight.pushed(), 0, "disarmed recorder stays empty");
            assert_eq!(r.flight_dump, None, "clean run never dumps");
        }
    }

    #[test]
    fn rack_seeds_are_distinct_and_caps_share_the_budget() {
        let fs = FedScenario::base("unit_fed_seeds", 23, 3);
        let scs: Vec<_> = (0..3).map(|i| fs.rack_scenario(i)).collect();
        assert!(scs[0].seed != scs[1].seed && scs[1].seed != scs[2].seed);
        assert_eq!(scs[0].name, "unit_fed_seeds/rack00");
        for sc in &scs {
            assert!((sc.cap_w - fs.global_budget_w / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn bridged_power_topics_parse() {
        assert_eq!(
            parse_bridged_power("rack07/davide/node12/power/node"),
            Some((7, 12))
        );
        assert_eq!(parse_bridged_power("davide/node12/power/node"), None);
        assert_eq!(parse_bridged_power("rack07/davide/node12/power"), None);
        assert_eq!(parse_bridged_power("fed/rack07/cap"), None);
    }
}
