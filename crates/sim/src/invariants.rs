//! The invariant checker.
//!
//! After every control period the harness feeds the checker ground truth
//! it alone can see (true draws, true delivery times, fault state) plus
//! the control plane's externally observable view, and the checker
//! asserts the loop's safety contract:
//!
//! * **INV-CAP** — aggregate true power never exceeds the active cap
//!   beyond the reactive controller's overshoot budget (`busy · band`)
//!   for longer than the scenario's grace window, whenever the loop can
//!   actually see the overcap (telemetry fresh, broker up).
//! * **INV-ENERGY** — energy accounting is conserved: per-node truth
//!   sums to the facility total, per-job plus idle sums to the total,
//!   the management store holds *exactly* the samples the delivery
//!   order entitles it to (a differential model replicates the store's
//!   monotonic acceptance rule over faults), and for fault-free jobs
//!   the telemetry-measured energy matches plant truth within noise.
//! * **INV-STALE** — a busy node whose telemetry is demonstrably old
//!   must be estimated by prediction, not a frozen sample, and the run
//!   report must own up to at least the provable stale node-seconds.
//! * **INV-CONVERGE** — retained DVFS commands converge: per-node
//!   command spacing respects the ladder's sustain time (no flapping),
//!   and at end of run the broker's retained command mirrors the
//!   controller's final state bit-for-rendered-bit.

use davide_sched::controlplane::speed_topic;
use davide_sched::{ControlPlane, ControlPlaneReport};
use davide_telemetry::gateway::power_topic;
use davide_telemetry::tsdb::Resolution;

/// One invariant breach, with the virtual time it was detected at.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which invariant tripped (`"cap"`, `"energy-conservation"`,
    /// `"energy-store"`, `"energy-job"`, `"stale-fallback"`,
    /// `"stale-accounting"`, `"converge-spacing"`,
    /// `"converge-retained"`).
    pub invariant: &'static str,
    /// Detection time, virtual seconds (end-of-run checks use the final
    /// tick).
    pub t_s: f64,
    /// Human-readable evidence.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] t={:.1}s: {}",
            self.invariant, self.t_s, self.detail
        )
    }
}

/// Differential model of the management store: replicates
/// `TsDb::append_frame_id`'s monotonic acceptance rule over the *actual*
/// delivery order (duplicates, reorders and all), so the checker can
/// assert the store holds exactly the entitled samples — no more (drop
/// duplicates), no fewer (keep everything in order).
#[derive(Debug, Clone)]
pub struct StoreModel {
    last_t: Vec<f64>,
    count: Vec<u64>,
    sum: Vec<f64>,
}

impl StoreModel {
    /// Model for `n` node series, all empty.
    pub fn new(n: usize) -> Self {
        StoreModel {
            last_t: vec![f64::NEG_INFINITY; n],
            count: vec![0; n],
            sum: vec![0.0; n],
        }
    }

    /// One frame delivered to the control plane for `node`, in delivery
    /// order. Mirrors the store's rule: a frame starting at or after the
    /// series tail is absorbed whole; otherwise samples are filtered
    /// individually against the advancing tail.
    pub fn deliver(&mut self, node: usize, t0: f64, dt: f64, watts: &[f32]) {
        let n = watts.len();
        if n == 0 {
            return;
        }
        if t0 < self.last_t[node] || dt < 0.0 {
            for (i, &v) in watts.iter().enumerate() {
                let t = t0 + i as f64 * dt;
                if t >= self.last_t[node] {
                    self.last_t[node] = t;
                    self.count[node] += 1;
                    self.sum[node] += v as f64;
                }
            }
            return;
        }
        self.last_t[node] = t0 + (n - 1) as f64 * dt;
        self.count[node] += n as u64;
        self.sum[node] += watts.iter().map(|&v| v as f64).sum::<f64>();
    }

    /// Samples the model says the store must hold for `node`.
    pub fn count(&self, node: usize) -> u64 {
        self.count[node]
    }

    /// Mean of the accepted samples, if any.
    pub fn mean(&self, node: usize) -> Option<f64> {
        (self.count[node] > 0).then(|| self.sum[node] / self.count[node] as f64)
    }
}

/// Checker tolerances and loop constants, frozen at harness start.
#[derive(Debug, Clone)]
pub struct CheckerConfig {
    /// Nodes under control.
    pub n_nodes: u32,
    /// The facility cap, watts.
    pub cap_w: f64,
    /// Per-node hysteresis band of the reactive ladder, watts.
    pub band_w: f64,
    /// Ladder sustain time — the anti-flap floor on command spacing,
    /// seconds.
    pub sustain_s: f64,
    /// Nominal telemetry deadline the checker audits against, seconds.
    pub deadline_s: f64,
    /// INV-CAP grace window, seconds.
    pub cap_grace_s: f64,
    /// Control period, seconds.
    pub tick_s: f64,
    /// Telemetry noise (1σ, relative) for the job-energy tolerance.
    pub noise: f64,
    /// Gateway sample spacing, seconds.
    pub sample_dt_s: f64,
}

/// Ground truth for one control period, assembled by the harness.
#[derive(Debug)]
pub struct TickTruth<'a> {
    /// True aggregate draw over the period just advanced, watts.
    pub sys_w: f64,
    /// True broker state.
    pub broker_down: bool,
    /// Per node: true wall time up to which telemetry has actually been
    /// delivered (`NEG_INFINITY` before the first frame).
    pub delivered_until: &'a [f64],
    /// Per node: true dead/alive state.
    pub dead: &'a [bool],
    /// Per node: whether a clock fault has ever touched the gateway
    /// (its reported timestamps are untrustworthy; staleness checks
    /// skip it).
    pub clock_faulted: &'a [bool],
}

/// Truth record of one job's life on the plant.
#[derive(Debug, Clone)]
pub struct JobTruth {
    /// Job id.
    pub id: u64,
    /// Placement time, seconds.
    pub start_s: f64,
    /// Completion (or abort) time, seconds.
    pub end_s: f64,
    /// Nodes it ran on.
    pub nodes: Vec<u32>,
    /// True energy drawn by those nodes while it ran, joules.
    pub energy_j: f64,
    /// True when no fault window overlapped the job on any of its
    /// nodes — only these are held to the telemetry-vs-truth energy
    /// comparison.
    pub clean: bool,
    /// True when the job was killed by a node death.
    pub aborted: bool,
}

/// End-of-run ground truth.
#[derive(Debug)]
pub struct FinalTruth<'a> {
    /// Facility energy, joules (accumulated independently of the
    /// per-node and per-job ledgers below).
    pub total_energy_j: f64,
    /// Per-node energy, joules.
    pub per_node_energy_j: &'a [f64],
    /// Idle energy: draw of nodes with no job (and alive), joules.
    pub idle_energy_j: f64,
    /// Every job that ran, with its truth ledger.
    pub jobs: &'a [JobTruth],
    /// Final virtual time, seconds.
    pub t_s: f64,
}

/// The running checker; one per harness run.
pub struct InvariantChecker {
    cfg: CheckerConfig,
    violations: Vec<Violation>,
    overcap_streak_s: f64,
    overcap_flagged: bool,
    expected_stale_s: f64,
    last_cmd_s: Vec<f64>,
}

impl InvariantChecker {
    /// A fresh checker.
    pub fn new(cfg: CheckerConfig) -> Self {
        let n = cfg.n_nodes as usize;
        InvariantChecker {
            cfg,
            violations: Vec::new(),
            overcap_streak_s: 0.0,
            overcap_flagged: false,
            expected_stale_s: 0.0,
            last_cmd_s: vec![f64::NEG_INFINITY; n],
        }
    }

    /// Provable stale node-seconds accumulated so far (the lower bound
    /// the report must meet).
    pub fn expected_stale_s(&self) -> f64 {
        self.expected_stale_s
    }

    /// Update the cap the INV-CAP envelope audits against. Federated
    /// runs call this when a rack applies a new budget grant; the
    /// overcap streak deliberately survives the change, so a rack
    /// cannot launder a sustained overcap through a fresh grant — the
    /// grace window alone absorbs re-convergence.
    pub fn set_cap_w(&mut self, cap_w: f64) {
        self.cfg.cap_w = cap_w;
    }

    /// The cap currently audited against, watts.
    pub fn cap_w(&self) -> f64 {
        self.cfg.cap_w
    }

    /// The violations recorded so far, in detection order. Mid-run
    /// observers (the flight recorder) read this to notice the checker
    /// firing; [`finish`](Self::finish) still returns the complete list.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    fn flag(&mut self, invariant: &'static str, t_s: f64, detail: String) {
        self.violations.push(Violation {
            invariant,
            t_s,
            detail,
        });
    }

    /// The plant applied one speed command for `node`. `replayed` marks
    /// retained-store replay on reconnect, which is a restore, not a new
    /// controller action, and is exempt from the spacing bound.
    pub fn on_speed(&mut self, t_s: f64, node: u32, replayed: bool) {
        if replayed {
            return;
        }
        let last = self.last_cmd_s[node as usize];
        let gap = t_s - last;
        if last.is_finite() && gap < self.cfg.sustain_s - 1e-6 {
            self.flag(
                "converge-spacing",
                t_s,
                format!(
                    "node {node}: commands {gap:.2}s apart, sustain floor {:.2}s (flapping)",
                    self.cfg.sustain_s
                ),
            );
        }
        self.last_cmd_s[node as usize] = t_s;
    }

    /// One control period's worth of checks, after the plant advanced
    /// over `[t_s, t_s + dt_s)`.
    pub fn on_tick(&mut self, t_s: f64, dt_s: f64, cp: &ControlPlane, truth: &TickTruth<'_>) {
        let snapshot = cp.snapshot();
        let busy: Vec<&davide_sched::NodeSnapshot> =
            snapshot.iter().filter(|n| n.job.is_some()).collect();

        // INV-CAP: truth draw against the envelope plus the ladder's
        // overshoot budget. The streak only accrues while the loop can
        // see: broker up and every busy node's telemetry actually fresh.
        let allowed = self.cfg.cap_w + busy.len() as f64 * self.cfg.band_w + 1.0;
        if truth.sys_w <= allowed {
            self.overcap_streak_s = 0.0;
            self.overcap_flagged = false;
        } else {
            let visible = !truth.broker_down
                && busy
                    .iter()
                    .all(|n| t_s - truth.delivered_until[n.node as usize] <= self.cfg.deadline_s);
            if visible {
                self.overcap_streak_s += dt_s;
                if self.overcap_streak_s > self.cfg.cap_grace_s && !self.overcap_flagged {
                    self.overcap_flagged = true;
                    self.flag(
                        "cap",
                        t_s,
                        format!(
                            "true draw {:.0} W > cap {:.0} W + budget {:.0} W for {:.0}s \
                             (grace {:.0}s) with fresh telemetry",
                            truth.sys_w,
                            self.cfg.cap_w,
                            allowed - self.cfg.cap_w,
                            self.overcap_streak_s,
                            self.cfg.cap_grace_s
                        ),
                    );
                }
            }
            // Blind overcap holds the streak: the loop cannot be blamed
            // for what it provably could not observe.
        }

        // INV-STALE: any busy node whose telemetry is provably older
        // than the deadline (with slack for delivery granularity) must
        // be estimated by prediction, and those node-seconds are owed to
        // the report.
        let slack = 2.0 * self.cfg.tick_s + 1.0;
        for n in &busy {
            let i = n.node as usize;
            if truth.clock_faulted[i] || !truth.delivered_until[i].is_finite() {
                continue;
            }
            if t_s - truth.delivered_until[i] <= self.cfg.deadline_s + slack {
                continue;
            }
            // Dead nodes are owed the *fallback* but not the accounting
            // lower bound: their jobs abort within a period, and the
            // loop frees the node in the same tick it learns of the
            // abort, before its staleness accrual runs.
            if !truth.dead[i] {
                self.expected_stale_s += dt_s;
            }
            let job = n.job.expect("busy node has a job");
            let est = cp
                .node_estimate(n.node, t_s)
                .expect("snapshot node is known");
            match cp.predicted_power(job) {
                Some(pred) if (est - pred).abs() <= 1e-9 => {}
                Some(pred) => self.flag(
                    "stale-fallback",
                    t_s,
                    format!(
                        "node {} telemetry {:.0}s old but estimate {est:.1} W is not the \
                         prediction {pred:.1} W (frozen sample?)",
                        n.node,
                        t_s - truth.delivered_until[i]
                    ),
                ),
                None => self.flag(
                    "stale-fallback",
                    t_s,
                    format!("node {} busy with job {job} unknown to the loop", n.node),
                ),
            }
        }
    }

    /// End-of-run checks; consumes the checker and returns every
    /// violation found over the whole run.
    pub fn finish(
        mut self,
        cp: &ControlPlane,
        broker: &davide_mqtt::Broker,
        report: &ControlPlaneReport,
        model: &StoreModel,
        truth: &FinalTruth<'_>,
    ) -> Vec<Violation> {
        let t = truth.t_s;
        let scale = truth.total_energy_j.abs().max(1.0);

        // INV-ENERGY (a): independently accumulated ledgers agree.
        let node_sum: f64 = truth.per_node_energy_j.iter().sum();
        if (truth.total_energy_j - node_sum).abs() > 1e-6 * scale {
            self.flag(
                "energy-conservation",
                t,
                format!(
                    "Σ per-node {node_sum:.3} J != facility total {:.3} J",
                    truth.total_energy_j
                ),
            );
        }
        let job_sum: f64 = truth.jobs.iter().map(|j| j.energy_j).sum();
        if (job_sum + truth.idle_energy_j - truth.total_energy_j).abs() > 1e-6 * scale {
            self.flag(
                "energy-conservation",
                t,
                format!(
                    "Σ per-job {job_sum:.3} J + idle {:.3} J != facility total {:.3} J",
                    truth.idle_energy_j, truth.total_energy_j
                ),
            );
        }

        // INV-ENERGY (b): the store holds exactly the entitled samples.
        for node in 0..self.cfg.n_nodes {
            let i = node as usize;
            let Some(id) = cp.db().lookup(&power_topic(node, "node")) else {
                if model.count(i) != 0 {
                    self.flag(
                        "energy-store",
                        t,
                        format!(
                            "node {node}: {} samples delivered but series missing",
                            model.count(i)
                        ),
                    );
                }
                continue;
            };
            let got = cp.db().count_id(id);
            if got != model.count(i) {
                self.flag(
                    "energy-store",
                    t,
                    format!(
                        "node {node}: store absorbed {got} samples, delivery order entitles \
                         exactly {}",
                        model.count(i)
                    ),
                );
            }
            // Mean compare only below ring capacity, where no raw
            // samples can have been evicted.
            if model.count(i) > 0 && model.count(i) < 90_000 {
                let db_mean = cp.db().mean_id(id, Resolution::Raw, -1e18, 1e18);
                let want = model.mean(i).expect("count > 0");
                match db_mean {
                    Some(m) if (m - want).abs() <= 1e-9 * want.abs().max(1.0) => {}
                    other => self.flag(
                        "energy-store",
                        t,
                        format!("node {node}: store mean {other:?}, model mean {want:.6}"),
                    ),
                }
            }
        }

        // INV-ENERGY (c): fault-free completed jobs — telemetry energy
        // matches plant truth within measurement noise.
        for j in truth.jobs.iter().filter(|j| j.clean && !j.aborted) {
            let dur = j.end_s - j.start_s;
            if dur <= 0.0 {
                continue;
            }
            let mut measured = 0.0;
            let mut missing = false;
            for &n in &j.nodes {
                let mean = cp.db().lookup(&power_topic(n, "node")).and_then(|id| {
                    cp.db()
                        .mean_id(id, Resolution::Raw, j.start_s - 0.5, j.end_s - 0.5)
                });
                match mean {
                    Some(m) => measured += m * dur,
                    None => missing = true,
                }
            }
            if missing {
                self.flag(
                    "energy-job",
                    t,
                    format!("clean job {}: telemetry missing for its window", j.id),
                );
                continue;
            }
            let n_samples = (j.nodes.len() as f64 * dur / self.cfg.sample_dt_s).max(1.0);
            let tol = (6.0 * self.cfg.noise / n_samples.sqrt() + 1e-3) * j.energy_j.max(1.0) + 1.0;
            if (measured - j.energy_j).abs() > tol {
                self.flag(
                    "energy-job",
                    t,
                    format!(
                        "clean job {}: telemetry energy {measured:.0} J vs truth {:.0} J \
                         (tol {tol:.0} J)",
                        j.id, j.energy_j
                    ),
                );
            }
        }

        // INV-STALE (accounting): the report owns at least the provable
        // stale node-seconds.
        if self.expected_stale_s > 1e-9 && report.stale_node_s + 1e-6 < self.expected_stale_s {
            self.flag(
                "stale-accounting",
                t,
                format!(
                    "report admits {:.1} stale node-seconds, ground truth proves ≥ {:.1}",
                    report.stale_node_s, self.expected_stale_s
                ),
            );
        }

        // INV-CONVERGE (retained): the durable command mirrors the
        // controller's final state for every node.
        for s in cp.snapshot() {
            match broker.retained_get(&speed_topic(s.node)) {
                Some(payload) => {
                    let parsed = std::str::from_utf8(&payload)
                        .ok()
                        .and_then(|p| p.parse::<f64>().ok());
                    match parsed {
                        Some(v) if (v - s.speed).abs() <= 1e-4 => {}
                        other => self.flag(
                            "converge-retained",
                            t,
                            format!(
                                "node {}: retained command {other:?} != controller speed {:.4}",
                                s.node, s.speed
                            ),
                        ),
                    }
                }
                None if s.level == 0 => {}
                None => self.flag(
                    "converge-retained",
                    t,
                    format!(
                        "node {}: controller at level {} but no retained command survives",
                        s.node, s.level
                    ),
                ),
            }
        }

        self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_model_mirrors_monotonic_acceptance() {
        let mut m = StoreModel::new(2);
        // Bulk path.
        m.deliver(0, 0.0, 1.0, &[1.0, 2.0, 3.0]);
        assert_eq!(m.count(0), 3);
        // Duplicate frame: only the boundary sample (t == last_t) lands.
        m.deliver(0, 0.0, 1.0, &[1.0, 2.0, 3.0]);
        assert_eq!(m.count(0), 4);
        // Reordered older frame: fully stale, nothing lands.
        m.deliver(0, -5.0, 1.0, &[9.0, 9.0]);
        assert_eq!(m.count(0), 4);
        // Fresh frame after the tail: bulk again.
        m.deliver(0, 5.0, 1.0, &[4.0]);
        assert_eq!(m.count(0), 5);
        // Other series untouched.
        assert_eq!(m.count(1), 0);
        assert!(m.mean(1).is_none());
        let mean = m.mean(0).unwrap();
        assert!((mean - (1.0 + 2.0 + 3.0 + 3.0 + 4.0) / 5.0).abs() < 1e-12);
    }
}
