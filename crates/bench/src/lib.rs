//! # davide-bench
//!
//! The experiment harness: one function per table/figure-level claim of
//! the paper (see DESIGN.md §3 for the full index E1–E30, F1, F4), plus
//! the criterion micro-benchmarks under `benches/`.
//!
//! Run everything with
//! `cargo run -p davide-bench --release --bin experiments`, or a subset
//! with e.g. `... --bin experiments e3 e11`.

#![warn(missing_docs)]

pub mod experiments;

/// One experiment: id, title, and the function that prints its report.
pub struct Experiment {
    /// Identifier (`e1`…`e30`, `f1`, `f4`).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Runner.
    pub run: fn(),
}

/// The registry of all experiments, in DESIGN.md order.
pub fn registry() -> Vec<Experiment> {
    use experiments::*;
    vec![
        Experiment {
            id: "e1",
            title: "Node & pilot-system envelope (§II-E, §II-I)",
            run: system::e1,
        },
        Experiment {
            id: "e2",
            title: "Top500/Green500 context (§I, §V-A)",
            run: system::e2,
        },
        Experiment {
            id: "e3",
            title: "Energy error vs monitoring chain (§III-A1, §V-C)",
            run: monitoring::e3,
        },
        Experiment {
            id: "e4",
            title: "ADC & decimation fidelity (§III-A1)",
            run: monitoring::e4,
        },
        Experiment {
            id: "e5",
            title: "PTP vs NTP time sync (§III-A1, [13])",
            run: monitoring::e5,
        },
        Experiment {
            id: "e6",
            title: "MQTT fan-out scaling (§III-A1)",
            run: monitoring::e6,
        },
        Experiment {
            id: "e7",
            title: "Rack PSU consolidation (§II-F)",
            run: system::e7,
        },
        Experiment {
            id: "e8",
            title: "Liquid vs air cooling & throttling (§II-C/G)",
            run: system::e8,
        },
        Experiment {
            id: "e9",
            title: "Node power capping (§III-A2)",
            run: management::e9,
        },
        Experiment {
            id: "e10",
            title: "Job power prediction accuracy ([17][18])",
            run: management::e10,
        },
        Experiment {
            id: "e11",
            title: "Proactive vs reactive scheduling (§III-A2)",
            run: management::e11,
        },
        Experiment {
            id: "e12",
            title: "Per-job/user energy accounting (Fig. 4 EA)",
            run: management::e12,
        },
        Experiment {
            id: "e13",
            title: "Energy-proportionality APIs (§IV)",
            run: management::e13,
        },
        Experiment {
            id: "e14",
            title: "QE proxy: FFT & NVLink (§IV-A)",
            run: applications::e14,
        },
        Experiment {
            id: "e15",
            title: "NEMO proxy: flat memory-bound profile (§IV-B)",
            run: applications::e15,
        },
        Experiment {
            id: "e16",
            title: "SPECFEM3D proxy: SEM scaling (§IV-C)",
            run: applications::e16,
        },
        Experiment {
            id: "e17",
            title: "BQCD proxy: even/odd CG (§IV-D)",
            run: applications::e17,
        },
        Experiment {
            id: "e18",
            title: "TTS vs ETS co-design tradeoff (§IV)",
            run: management::e18,
        },
        Experiment {
            id: "e19",
            title: "Burn-in acceptance suite (§I)",
            run: management::e19,
        },
        Experiment {
            id: "e20",
            title: "Smart profiler: phases & spectra (Fig. 4 Pr)",
            run: management::e20,
        },
        Experiment {
            id: "e21",
            title: "Telemetry ingest throughput (EG → MQTT → TsDb)",
            run: ingest::e21,
        },
        Experiment {
            id: "e22",
            title: "Closed-loop power control plane (Fig. 4)",
            run: controlplane::e22,
        },
        Experiment {
            id: "e24",
            title: "Self-instrumented control loop (obs stack)",
            run: obs::e24,
        },
        Experiment {
            id: "e25",
            title: "Full-rate acquisition (45 EGs × 8 ch × 800 kS/s)",
            run: acquisition::e25,
        },
        Experiment {
            id: "e26",
            title: "Tiered Gorilla-compressed TsDb (storage engine)",
            run: storage::e26,
        },
        Experiment {
            id: "e27",
            title: "Unified query API: service QPS, HTTP, interference",
            run: api::e27,
        },
        Experiment {
            id: "e28",
            title: "Federated petaflops-class sim (multi-rack, global budget)",
            run: federation::e28,
        },
        Experiment {
            id: "e29",
            title: "Cap-grant tracing: overhead A/B + grant-to-actuation latency",
            run: federation::e29,
        },
        Experiment {
            id: "e30",
            title: "Sharded broker fan-out (10k subscribers, QoS 1 end-to-end)",
            run: fanout::e30,
        },
        Experiment {
            id: "f1",
            title: "Fig. 1: cooling-loop state table",
            run: system::f1,
        },
        Experiment {
            id: "f4",
            title: "Fig. 4: end-to-end pipeline demo",
            run: management::f4,
        },
    ]
}

/// Print a section header.
pub fn header(id: &str, title: &str) {
    println!("\n{}", "=".repeat(74));
    println!("[{}] {}", id.to_uppercase(), title);
    println!("{}", "=".repeat(74));
}
