//! System-level experiments: E1 (envelope), E2 (Top500/Green500
//! context), E7 (PSU consolidation), E8 (cooling), F1 (cooling loop).

use crate::header;
use davide_core::cooling::{CoolingLoop, ThermalNode};
use davide_core::efficiency::{efficiency_ratio, estimated_rmax, reference_machines};
use davide_core::node::{ComputeNode, NodeLoad};
use davide_core::psu::{rack_conversion_comparison, PsuBank};
use davide_core::units::{Celsius, Seconds, Watts};
use davide_core::Cluster;

/// E1 — node and pilot-system envelope versus the paper's numbers.
pub fn e1() {
    header("e1", "Node & pilot-system envelope");
    let node = ComputeNode::davide(0);
    let cluster = Cluster::davide();
    println!("paper claim                      | paper       | model");
    println!("---------------------------------+-------------+------------");
    println!(
        "node peak (DP)                   | 22 TFlops   | {:.1} TFlops",
        node.architectural_peak().tflops()
    );
    println!(
        "node power (est.)                | ~2 kW       | {:.2} kW",
        node.power(NodeLoad::FULL).kw()
    );
    println!(
        "system peak                      | 1 PFlops    | {:.2} PFlops",
        cluster.peak().pflops()
    );
    println!(
        "system power                     | <100 kW     | {:.1} kW",
        cluster.facility_power(NodeLoad::FULL).kw()
    );
    println!(
        "rack feed                        | 32 kW       | worst rack {:.1} kW",
        cluster
            .compute_racks()
            .map(|r| r.facility_power(NodeLoad::FULL).kw())
            .fold(0.0, f64::max)
    );
    println!(
        "HPL-estimated Rmax (80% of peak) |             | {:.0} TFlops",
        estimated_rmax(cluster.peak(), 0.8).tflops()
    );
    println!(
        "efficiency at the meter          |             | {:.1} GFlops/W",
        cluster.gflops_per_watt()
    );
    cluster.validate().expect("configuration legal");
    println!("validation: all racks within budget, cooling loops legal ✓");
}

/// E2 — the Top500/Green500 machines the paper cites.
pub fn e2() {
    header("e2", "Top500/Green500 context (Nov 2016 lists)");
    println!(
        "{:<22} {:>10} {:>10} {:>12} {:>7}",
        "machine", "Rmax", "power", "GFlops/W", "accel"
    );
    let machines = reference_machines();
    for m in &machines {
        println!(
            "{:<22} {:>7.1} PF {:>8.1} MW {:>12.2} {:>7}",
            m.name,
            m.rmax.pflops(),
            m.power.mw(),
            m.efficiency(),
            if m.heterogeneous { "yes" } else { "no" }
        );
    }
    let taihu = &machines[0];
    let tianhe = &machines[1];
    println!(
        "\nTaihuLight vs Tianhe-2 efficiency ratio: {:.1}× (paper: \"3x\")",
        efficiency_ratio(taihu, tianhe)
    );
    // Where the simulated DAVIDE would land.
    let cluster = Cluster::davide();
    let rmax = estimated_rmax(cluster.peak(), 0.8);
    let eff = rmax.0 / cluster.facility_power(NodeLoad::FULL).0;
    println!(
        "simulated D.A.V.I.D.E. (Rmax-based): {eff:.2} GFlops/W — {} SaturnV's 9.5",
        if eff > 9.5 { "above" } else { "near" }
    );
}

/// E7 — rack-level AC/DC consolidation versus per-server PSUs.
pub fn e7() {
    header("e7", "OpenRack PSU consolidation");
    println!(
        "{:>12} {:>14} {:>14} {:>9} {:>12} {:>12}",
        "node load", "2/server AC", "OpenRack AC", "saving", "pair η", "bank η"
    );
    for per_node in [600.0, 1000.0, 1400.0, 1800.0, 2000.0] {
        let (conv, or, saving) = rack_conversion_comparison(15, Watts(per_node));
        let pair = PsuBank::per_server_pair();
        let bank = PsuBank::openrack_32kw();
        println!(
            "{:>10.0} W {:>12.1} kW {:>12.1} kW {:>8.1} % {:>11.1} % {:>11.1} %",
            per_node,
            conv.kw(),
            or.kw(),
            saving * 100.0,
            pair.efficiency(Watts(per_node)) * 100.0,
            bank.efficiency(Watts(per_node * 15.0)) * 100.0
        );
    }
    let pair = PsuBank::per_server_pair();
    let bank = PsuBank::openrack_32kw();
    println!(
        "\nPSU count per 15-node rack: {} → {} units",
        15 * pair.units,
        bank.units
    );
    println!(
        "expected PSU failures/year: {:.2} → {:.2}",
        15.0 * pair.expected_failures_per_year(),
        bank.expected_failures_per_year()
    );
    let node_load = Watts(1500.0);
    let pair_noise = pair.output_noise_rms(node_load);
    let rack_per_node = bank.output_noise_rms(node_load * 15.0) / 15.0;
    println!(
        "per-node supply noise (RMS): {:.1} W → {:.1} W ({:.1}× cleaner; enables >1 kHz sampling)",
        pair_noise.0,
        rack_per_node.0,
        pair_noise.0 / rack_per_node.0
    );
    println!("paper claim: \"reduction of up to 5% of the total power consumption\" ✓");
}

/// E8 — direct liquid vs air cooling: throttling and performance.
pub fn e8() {
    header("e8", "Hybrid liquid cooling vs air");
    // 10-minute full-load run on both node variants.
    let dt = Seconds(1.0);
    let mut liquid = ComputeNode::davide(0);
    let mut air = ComputeNode::davide_air_cooled(1);
    let mut liquid_throttles = 0usize;
    let mut air_throttles = 0usize;
    for _ in 0..600 {
        liquid_throttles += liquid.thermal_step(NodeLoad::FULL, Celsius(37.0), dt);
        air_throttles += air.thermal_step(NodeLoad::FULL, Celsius(30.0), dt);
    }
    let perf = |n: &ComputeNode| n.peak_gflops().tflops();
    println!("10-minute full-load run:");
    println!(
        "  liquid (37 °C hot water): {} throttle events, max die {:.1} °C, perf {:.1} TF",
        liquid_throttles,
        liquid.max_die_temperature().0,
        perf(&liquid)
    );
    println!(
        "  air   (30 °C intake):     {} throttle events, max die {:.1} °C, perf {:.1} TF",
        air_throttles,
        air.max_die_temperature().0,
        perf(&air)
    );
    println!(
        "  air-cooled performance degradation: {:.1} %",
        100.0 * (1.0 - perf(&air) / perf(&liquid))
    );

    // Inlet-temperature sweep for the liquid loop (hot-water range).
    println!("\nliquid-loop inlet sweep (steady-state hottest die, GPU @300 W):");
    for inlet in [15.0, 25.0, 35.0, 40.0, 45.0] {
        let die = ThermalNode::liquid_gpu();
        let ss = die.steady_state(Watts(300.0), Celsius(inlet + 2.0));
        let ok = ss < die.t_throttle;
        println!(
            "  inlet {:>4.0} °C → die {:>5.1} °C  {}",
            inlet,
            ss.0,
            if ok { "OK" } else { "THROTTLES" }
        );
    }
    let l = CoolingLoop::davide_nominal();
    let it = Watts::from_kw(30.0);
    println!(
        "\nheat split at 30 kW IT: liquid {:.1} kW ({:.0} %), air {:.1} kW — paper: 75–80 % liquid",
        l.liquid_heat(it).kw(),
        100.0 * l.liquid_capture_fraction,
        l.air_heat(it).kw()
    );
    println!(
        "rack PUE contribution: {:.3} (fans {:.0} W + pumps 120 W on {:.0} kW IT)",
        l.rack_pue(it, Watts::from_kw(32.0)),
        l.fan_power(it, Watts::from_kw(32.0)).0,
        it.kw()
    );
}

/// F1 — the Fig. 1 liquid-liquid heat-exchanger, as a state table.
pub fn f1() {
    header("f1", "Cooling-loop state table (Fig. 1)");
    let l = CoolingLoop::davide_nominal();
    l.validate().expect("legal loop");
    println!(
        "{:>10} {:>14} {:>14} {:>16} {:>16}",
        "IT load", "coolant out", "coolant back", "facility in", "facility back"
    );
    for kw in [8.0, 16.0, 24.0, 30.0] {
        let it = Watts::from_kw(kw);
        println!(
            "{:>8.0}kW {:>12.1} °C {:>12.1} °C {:>14.1} °C {:>14.1} °C",
            kw,
            l.coolant_supply.0,
            l.coolant_return(it).0,
            l.facility_inlet.0,
            l.facility_return(it).0
        );
        assert!(l.facility_return_ok(it));
    }
    println!(
        "\nconstraints: inlet ∈ [2, 45] °C ✓, coolant ≥ dew point + 5 °C ✓, facility return ≤ 55 °C ✓"
    );
    println!("flow: 30 L/min per rack at 35 °C facility water (paper §II-I)");
}
