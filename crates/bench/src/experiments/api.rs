//! E27 — the unified query front-end under load: in-process
//! [`QueryService`] QPS on cached rollups, HTTP throughput through the
//! std-only server, and read/ingest interference on one shared store.
//!
//! Three gates (full-run targets; `--smoke` scales to CI hardware):
//!
//! 1. cached-rollup point queries through the typed service (no HTTP)
//!    sustain ≥ 1 M QPS — the rollup cache must make repeated
//!    accounting queries allocation-light hash probes, not re-scans;
//! 2. the HTTP/1.1 server sustains ≥ 50 k req/s of keep-alive JSON
//!    query traffic;
//! 3. full-rate frame ingest into the same store degrades ≤ 20 % while
//!    the HTTP load runs (reads must not starve the write path).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use davide_api::{
    ApiServer, ApiServerConfig, HttpClient, QueryOp, QueryRequest, QueryService, QueryServiceConfig,
};
use davide_obs::ObsHub;
use davide_telemetry::gateway::power_topic;
use davide_telemetry::{Resolution, SeriesRead, ShardedTsDb};

use crate::experiments::controlplane::SMOKE_ENV;
use crate::header;

fn smoke() -> bool {
    std::env::var_os(SMOKE_ENV).is_some()
}

const NODES: u32 = 16;
const WINDOW_S: f64 = 60.0;

fn preloaded_service() -> QueryService<ShardedTsDb> {
    let hub = ObsHub::monotonic();
    let svc = QueryService::over_store(
        ShardedTsDb::new(4, 1 << 16, 1 << 12),
        &hub,
        QueryServiceConfig::default(),
    );
    let watts: Vec<f32> = (0..60_000)
        .map(|i| 1500.0 + 250.0 * ((i as f32) * 0.002).sin())
        .collect();
    {
        let store = svc.store();
        let mut store = store.write();
        for node in 0..NODES {
            store.append_frame(&power_topic(node, "node"), 0.0, 1e-3, &watts);
        }
    }
    svc
}

fn mean_query(node: u32) -> QueryRequest {
    QueryRequest::series(
        QueryOp::Mean,
        &power_topic(node, "node"),
        Resolution::Raw,
        0.0,
        WINDOW_S,
    )
}

/// Gate 1: cached-rollup QPS through the typed service.
fn service_qps_gate() {
    let svc = preloaded_service();
    let queries: Vec<QueryRequest> = (0..NODES).map(mean_query).collect();
    // Warm: one miss per series fills the cache.
    for q in &queries {
        svc.query(q).expect("warm query");
    }
    let iters: u64 = if smoke() { 200_000 } else { 4_000_000 };
    let t = Instant::now();
    for i in 0..iters {
        let q = &queries[(i % NODES as u64) as usize];
        let resp = svc.query(q).expect("cached query");
        assert!(resp.series[0].value.is_some());
    }
    let dt = t.elapsed().as_secs_f64();
    let qps = iters as f64 / dt;
    let stats = svc.cache_stats();
    println!(
        "service QPS: {iters} cached mean queries in {dt:.2} s = {:.2} M QPS \
         (cache {} hits / {} misses)",
        qps / 1e6,
        stats.hits,
        stats.misses
    );
    assert_eq!(
        stats.misses,
        u64::from(NODES),
        "steady state must be all cache hits"
    );
    let floor = if smoke() { 1.5e5 } else { 1e6 };
    assert!(
        qps >= floor,
        "cached-rollup QPS {qps:.0} under the {floor:.0} floor"
    );
}

/// Drive `threads` keep-alive HTTP clients against `addr` until `stop`.
fn spawn_http_load(
    addr: std::net::SocketAddr,
    threads: usize,
    stop: Arc<AtomicBool>,
    requests: Arc<AtomicU64>,
) -> Vec<std::thread::JoinHandle<()>> {
    let bodies: Vec<String> = (0..NODES)
        .map(|n| serde_json::to_string(&mean_query(n).to_value()))
        .collect();
    (0..threads)
        .map(|tid| {
            let stop = stop.clone();
            let requests = requests.clone();
            let bodies = bodies.clone();
            std::thread::spawn(move || {
                let mut c = HttpClient::connect(addr).expect("client connect");
                let mut i = tid;
                while !stop.load(Ordering::Relaxed) {
                    let body = &bodies[i % bodies.len()];
                    i += 1;
                    match c.request("POST", "/v1/query", body) {
                        Ok((200, _)) => {
                            requests.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {
                            if let Ok(nc) = HttpClient::connect(addr) {
                                c = nc;
                            }
                        }
                    }
                }
            })
        })
        .collect()
}

/// Gate 2: HTTP throughput. Returns the achieved rate.
fn http_gate(svc: &QueryService<ShardedTsDb>, threads: usize, secs: f64) -> f64 {
    let server = ApiServer::start(
        svc.clone(),
        ApiServerConfig {
            workers: threads,
            ..ApiServerConfig::default()
        },
    )
    .expect("server start");
    let stop = Arc::new(AtomicBool::new(false));
    let requests = Arc::new(AtomicU64::new(0));
    let loaders = spawn_http_load(server.addr(), threads, stop.clone(), requests.clone());
    std::thread::sleep(Duration::from_secs_f64(secs));
    stop.store(true, Ordering::Relaxed);
    for t in loaders {
        let _ = t.join();
    }
    server.stop();
    let rate = requests.load(Ordering::Relaxed) as f64 / secs;
    println!(
        "HTTP: {} requests in {secs:.1} s over {threads} connections = {:.0} req/s",
        requests.load(Ordering::Relaxed),
        rate
    );
    rate
}

/// Measure frame-ingest throughput into the service's store for
/// `secs`, optionally while an HTTP load runs against the same store.
fn ingest_rate(svc: &QueryService<ShardedTsDb>, secs: f64, under_load: Option<usize>) -> f64 {
    let server = under_load.map(|threads| {
        let server = ApiServer::start(
            svc.clone(),
            ApiServerConfig {
                workers: threads,
                ..ApiServerConfig::default()
            },
        )
        .expect("server start");
        let stop = Arc::new(AtomicBool::new(false));
        let requests = Arc::new(AtomicU64::new(0));
        let loaders = spawn_http_load(server.addr(), threads, stop.clone(), requests.clone());
        (server, stop, loaders)
    });

    let chunk: Vec<f32> = vec![1500.0; 4096];
    let store = svc.store();
    // Start past both the query window (so cached answers stay
    // watermark-valid) and whatever an earlier measurement already
    // wrote to the ingest topics (stale appends are rejected).
    let mut t_sim = {
        let s = store.read();
        let resume = s
            .series_last(&power_topic(0, "ingest"))
            .map_or(0.0, |p| p.t + 1.0);
        (2.0 * WINDOW_S).max(resume)
    };
    let mut samples = 0u64;
    let t = Instant::now();
    let deadline = t + Duration::from_secs_f64(secs);
    while Instant::now() < deadline {
        {
            let mut s = store.write();
            for node in 0..NODES {
                samples += s.append_frame(&power_topic(node, "ingest"), t_sim, 1e-3, &chunk) as u64;
            }
        }
        t_sim += chunk.len() as f64 * 1e-3;
    }
    let rate = samples as f64 / t.elapsed().as_secs_f64();

    if let Some((server, stop, loaders)) = server {
        stop.store(true, Ordering::Relaxed);
        for l in loaders {
            let _ = l.join();
        }
        server.stop();
    }
    rate
}

/// E27 — unified query API under load (three gates).
pub fn e27() {
    header("e27", "Unified query API: service QPS, HTTP, interference");
    let (threads, secs) = if smoke() { (2, 0.5) } else { (4, 3.0) };

    service_qps_gate();

    let svc = preloaded_service();
    let rate = http_gate(&svc, threads, secs);
    let floor = if smoke() { 1e4 } else { 5e4 };
    assert!(
        rate >= floor,
        "HTTP rate {rate:.0} under the {floor:.0} floor"
    );

    // Gate 3: ingest solo vs under concurrent HTTP read load.
    let solo = ingest_rate(&svc, secs, None);
    let loaded = ingest_rate(&svc, secs, Some(threads));
    let kept = loaded / solo;
    println!(
        "ingest: solo {:.1} MS/s, under HTTP load {:.1} MS/s = {:.0} % kept",
        solo / 1e6,
        loaded / 1e6,
        kept * 100.0
    );
    // Full mode holds the paper-grade ≤20 % degradation bound. Smoke
    // runs on whatever CI gives it — on a single core the ingest
    // thread's fair share against `2×threads` busy HTTP threads is
    // ~1/5 of the machine, so the smoke floor only distinguishes
    // "writer still progresses" from writer starvation (~0 %).
    let keep_floor = if smoke() { 0.2 } else { 0.8 };
    assert!(
        kept >= keep_floor,
        "ingest under load kept {:.0} % (< {:.0} % floor)",
        kept * 100.0,
        keep_floor * 100.0
    );

    // The store saw both paths: preloaded queries plus live ingest.
    let n_series = svc.store().read().series_names().len();
    println!("store now carries {n_series} series (query + ingest topics)");
    assert_eq!(n_series, 2 * NODES as usize);
}
