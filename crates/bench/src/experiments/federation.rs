//! E28 — the petaflops-class federated simulation: the full D.A.V.I.D.E.
//! deployment shape (§II: racks of 45 nodes behind per-rack management
//! networks, §III-A2: one facility power budget) as a multi-rack
//! discrete-event run. Every rack is a complete telemetry →
//! control-plane stack on its own broker; MQTT bridges fan rack
//! telemetry into a site broker where a federator splits the global
//! budget into per-rack cap grants, rebalanced on demand shifts.
//!
//! Gates: the sized run must cover ≥ 1000 nodes and ≥ 50 000 jobs,
//! hold every per-rack *and* federation-level invariant, conserve
//! energy between the site ledger and the rack ledgers, and be
//! bit-identically reproducible (one digest over all rack logs plus
//! the federation log). `--smoke` shrinks it to 200 nodes / 5000 jobs
//! for CI; the gates are the same.

use crate::experiments::controlplane::SMOKE_ENV;
use crate::header;
use davide_obs::rollup_counters;
use davide_sim::federation::{run_federated_traced, run_federated_with_db_config, FedScenario};
use davide_telemetry::{TieringConfig, TsDbConfig};

fn smoke() -> bool {
    std::env::var_os(SMOKE_ENV).is_some()
}

/// E28 — federated multi-rack run under one global power budget.
pub fn e28() {
    header(
        "e28",
        "Federated petaflops-class sim (multi-rack, global budget)",
    );
    // Full: 23 racks × 45 nodes = 1035 nodes (the paper's pilot rack
    // scaled to the petaflops target), 50 002 jobs over a simulated day
    // and a half. Smoke: 5 racks × 40 nodes = 200 nodes, 5000 jobs.
    let (n_racks, nodes_per_rack, jobs_per_rack) = if smoke() {
        (5, 40, 1000)
    } else {
        (23, 45, 2174)
    };
    let fs = FedScenario::sized("e28", 2026, n_racks, nodes_per_rack, jobs_per_rack);
    let n_nodes = n_racks * nodes_per_rack as usize;
    let n_jobs = n_racks * jobs_per_rack;
    println!(
        "{n_racks} racks × {nodes_per_rack} nodes = {n_nodes} nodes, {n_jobs} jobs, \
         budget {:.0} kW, rebalance {:.0}s{}",
        fs.global_budget_w / 1e3,
        fs.rebalance_s,
        if smoke() { "  [smoke]" } else { "" }
    );

    // Day-long runs want bounded memory: every rack's store runs the
    // tiered engine (seal + compress; no disk tier, so nothing leaks
    // outside the process).
    let db = TsDbConfig {
        tiering: Some(TieringConfig::default()),
        ..TsDbConfig::default()
    };
    let out = run_federated_with_db_config(&fs, db.clone());

    println!(
        "\n{:<12} {:>6} {:>9} {:>10} {:>9} {:>8} {:>6}",
        "rack", "jobs", "energy", "makespan", "frames", "ovcap_s", "viol"
    );
    for r in &out.racks {
        println!(
            "{:<12} {:>6} {:>8.2}MWh {:>9.1}h {:>9} {:>8.0} {:>6}",
            &r.scenario[r.scenario.len() - 6..],
            r.report.jobs_completed,
            r.truth.total_energy_j / 3.6e9,
            r.truth.makespan_s / 3600.0,
            r.truth.frames_delivered,
            r.truth.overcap_s,
            r.violations.len(),
        );
    }
    let jobs_done: u64 = out.racks.iter().map(|r| r.report.jobs_completed).sum();
    let racks_energy = out.racks_energy_j();
    println!(
        "\nsite: {jobs_done} jobs, {:.2} MWh (Σ racks {:.2} MWh), {} rebalances, \
         {} grant events",
        out.global_energy_j / 3.6e9,
        racks_energy / 3.6e9,
        out.rebalances,
        out.fed_log.len(),
    );

    // ── Gates. ──
    assert!(n_nodes >= if smoke() { 200 } else { 1000 }, "node floor");
    assert!(n_jobs >= if smoke() { 5000 } else { 50_000 }, "job floor");
    assert_eq!(jobs_done as usize, n_jobs, "every job must complete");
    let violations = out.all_violations();
    assert!(
        violations.is_empty(),
        "E28 must hold every invariant, got {}: first {}",
        violations.len(),
        violations[0].1
    );
    assert!(
        (out.global_energy_j - racks_energy).abs() <= 1e-9 * racks_energy + 1e-6,
        "site ledger must equal the sum of rack ledgers"
    );
    assert!(out.rebalances > 0, "the budget must be rebalanced");

    // Determinism: the whole federation re-runs to the same digest.
    let again = run_federated_with_db_config(&fs, db);
    assert_eq!(
        out.digest(),
        again.digest(),
        "E28 re-run diverged — the federation is not seed-pure"
    );
    println!(
        "digest {:#018x} (bit-identical across re-runs)",
        out.digest()
    );
}

/// E29 — the control-loop flight recorder: cap-grant causal tracing
/// overhead and grant-to-actuation latency on an E28-shaped federation.
///
/// Gates: tracing must cost ≤ 5 % wall clock against the disarmed
/// baseline (plus a small absolute slack for timer noise), digests must
/// be bit-identical traced vs untraced, every rack must complete grant
/// spans, and the grant-to-actuation (fed split → controller command)
/// and end-to-end (→ observed power crossing) p99 latencies must stay
/// inside the control-period/rebalance bounds the loop design implies.
pub fn e29() {
    header(
        "e29",
        "Cap-grant tracing: overhead A/B + grant-to-actuation latency",
    );
    let (n_racks, nodes_per_rack, jobs_per_rack) =
        if smoke() { (3, 30, 500) } else { (8, 45, 900) };
    let fs = FedScenario::sized("e29", 2027, n_racks, nodes_per_rack, jobs_per_rack);
    println!(
        "{n_racks} racks × {nodes_per_rack} nodes, {} jobs, rebalance {:.0}s{}",
        n_racks * jobs_per_rack,
        fs.rebalance_s,
        if smoke() { "  [smoke]" } else { "" }
    );
    let db = TsDbConfig {
        tiering: Some(TieringConfig::default()),
        ..TsDbConfig::default()
    };

    // A/B overhead: best-of-2 each way to damp scheduler noise; the
    // instrumentation differs only in the tracers' atomic early-outs.
    let mut base_s = f64::INFINITY;
    let mut traced_s = f64::INFINITY;
    let mut base_digest = 0u64;
    let mut traced = None;
    for _ in 0..2 {
        let t = std::time::Instant::now();
        let out = run_federated_traced(&fs, db.clone(), false);
        base_s = base_s.min(t.elapsed().as_secs_f64());
        base_digest = out.digest();
        let t = std::time::Instant::now();
        let out = run_federated_traced(&fs, db.clone(), true);
        traced_s = traced_s.min(t.elapsed().as_secs_f64());
        traced = Some(out);
    }
    let out = traced.expect("two iterations ran");
    println!(
        "\nuntraced {base_s:.3}s, traced {traced_s:.3}s  (overhead {:+.2}%)",
        (traced_s / base_s - 1.0) * 100.0
    );

    println!(
        "\n{:<12} {:>6} {:>5} {:>10} {:>10} {:>10} {:>10}",
        "rack", "spans", "lost", "apply_p50", "apply_p99", "e2e_p50", "e2e_p99"
    );
    // Latency bounds the loop design implies: a grant publishes on the
    // federate phase and is drained on the next control period (one
    // tick); the power crossing must land before the next grant
    // replaces it (≤ rebalance + tick). Histogram quantiles answer
    // log₂-bucket upper bounds, so the gates carry a 2× allowance.
    let apply_gate_ns = 2.0 * 2.0 * fs.rack.tick_s * 1e9;
    let e2e_gate_ns = 2.0 * (fs.rebalance_s + 2.0 * fs.rack.tick_s) * 1e9;
    for r in &out.racks {
        let reg = &r.obs.registry;
        let completed = reg
            .find_counter("obs_grant_completed_total")
            .map(|c| c.get())
            .unwrap_or(0);
        let lost: u64 = rollup_counters([&**reg])
            .into_iter()
            .filter(|(n, _)| n.starts_with("obs_grant_lost_total"))
            .map(|(_, v)| v)
            .sum();
        let q = |name: &str, q: f64| {
            reg.find_histogram(name)
                .map(|h| h.snapshot().quantile(q))
                .unwrap_or(0)
        };
        let (a50, a99) = (q("obs_grant_apply_ns", 0.50), q("obs_grant_apply_ns", 0.99));
        let (e50, e99) = (q("obs_grant_e2e_ns", 0.50), q("obs_grant_e2e_ns", 0.99));
        println!(
            "{:<12} {:>6} {:>5} {:>9.1}s {:>9.1}s {:>9.1}s {:>9.1}s",
            &r.scenario[r.scenario.len() - 6..],
            completed,
            lost,
            a50 as f64 / 1e9,
            a99 as f64 / 1e9,
            e50 as f64 / 1e9,
            e99 as f64 / 1e9,
        );
        assert!(completed > 0, "{}: no grant span completed", r.scenario);
        assert!(
            (a99 as f64) <= apply_gate_ns,
            "{}: apply p99 {a99} ns over the {apply_gate_ns:.0} ns gate",
            r.scenario
        );
        assert!(
            (e99 as f64) <= e2e_gate_ns,
            "{}: e2e p99 {e99} ns over the {e2e_gate_ns:.0} ns gate",
            r.scenario
        );
    }

    // ── Gates. ──
    assert_eq!(
        out.digest(),
        base_digest,
        "tracing must never perturb the event logs"
    );
    assert!(
        out.all_violations().is_empty(),
        "E29 runs a healthy federation"
    );
    assert!(
        traced_s <= base_s * 1.05 + 0.25,
        "tracing overhead over budget: {traced_s:.3}s vs {base_s:.3}s baseline"
    );
    println!(
        "\ndigest {:#018x} (traced == untraced), overhead within gate",
        out.digest()
    );
}
