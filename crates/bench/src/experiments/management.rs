//! Power-management experiments: E9 (node capping), E10 (prediction),
//! E11 (scheduling policies under a cap), E12 (accounting), E13
//! (energy proportionality), F4 (end-to-end pipeline).

use crate::header;
use davide_core::capping::{evaluate, PiCapController, RaplWindow};
use davide_core::node::{ComputeNode, NodeLoad};
use davide_core::rng::Rng;
use davide_core::units::{Seconds, Watts};
use davide_predictor::{ModelKind, RlsPredictor};
use davide_sched::{
    report, simulate, CapSchedule, EasyBackfill, EnergyLedger, Fcfs, PowerPredictor, SimConfig,
    SimReport, WorkloadConfig, WorkloadGenerator,
};

/// E9 — node power capping: cap sweep, settle time, QoS cost, and the
/// RAPL-window ablation.
pub fn e9() {
    header("e9", "Node-level reactive power capping");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>14}",
        "cap", "settle", "violations", "overshoot", "perf after"
    );
    for cap_kw in [2.0, 1.8, 1.6, 1.4, 1.2, 1.0] {
        let mut node = ComputeNode::davide(0);
        let mut ctl = PiCapController::new(Watts::from_kw(cap_kw));
        let traj = ctl.run(&mut node, NodeLoad::FULL, Seconds(0.1), 400);
        let q = evaluate(&traj, ctl.band);
        println!(
            "{:>6.1}kW {:>9.1} s {:>11.1} % {:>10.1} W {:>13.1} %",
            cap_kw,
            q.settle_steps as f64 * 0.1,
            q.violation_fraction * 100.0,
            q.max_overshoot.0,
            q.mean_perf_after_settle * 100.0
        );
    }
    println!("\nthe §III-A2 trade-off: every watt of cap below the natural draw is");
    println!("paid in DVFS performance — why capping alone violates SLAs.");

    // RAPL-window ablation: how the window length trades burst tolerance.
    println!("\nRAPL-style window ablation (1.5 kW average cap, 2.2 kW bursts):");
    for window_s in [1.0, 5.0, 20.0] {
        let mut rapl = RaplWindow::new(Watts(1500.0), Seconds(window_s));
        let mut tolerated = 0;
        for i in 0..200 {
            let burst = i % 10 < 3; // 30 % duty bursts
            rapl.observe(Watts(if burst { 2200.0 } else { 1200.0 }), Seconds(0.5));
            if rapl.compliant() {
                tolerated += 1;
            }
        }
        println!(
            "  window {:>4.0} s → compliant {:>5.1} % of samples (avg {:.0} W)",
            window_s,
            tolerated as f64 / 2.0,
            rapl.average().0
        );
    }
}

/// E10 — job power-prediction accuracy across models and history sizes.
pub fn e10() {
    header("e10", "Per-job power prediction ([17][18])");
    let cfg = WorkloadConfig::default();
    let mut gen = WorkloadGenerator::new(cfg, 404);
    let all = gen.trace(6000);
    let (train_full, test) = all.split_at(5000);

    // Every model family behind the runtime-selectable ModelKind API.
    print!("{:>10}", "history");
    for kind in ModelKind::ALL {
        print!(" {:>12}", format!("{} MAPE", kind.name()));
    }
    println!();
    for hist in [100usize, 500, 2000, 5000] {
        let train = &train_full[train_full.len() - hist..];
        print!("{hist:>10}");
        for kind in ModelKind::ALL {
            let mape = PowerPredictor::from_kind(kind, train, 24).mape_on(test);
            print!(" {:>10.2} %", mape);
        }
        println!();
    }

    // Streaming variant: the management node retrains as the accounting
    // database grows (Fig. 4) — here via recursive least squares.
    use davide_predictor::FeatureEncoder;
    use davide_sched::power_predictor::descriptor;
    let enc = FeatureEncoder::new(24, 4);
    let mut rls = RlsPredictor::new(enc.dim(), 0.999, 1000.0);
    let mut checkpoints = Vec::new();
    for (i, job) in train_full.iter().enumerate() {
        let x = enc.encode(&descriptor(job));
        rls.update(&x, job.true_power_w);
        if [99, 499, 1999, 4999].contains(&i) {
            let xs: Vec<Vec<f64>> = test.iter().map(|j| enc.encode(&descriptor(j))).collect();
            let ys: Vec<f64> = test.iter().map(|j| j.true_power_w).collect();
            checkpoints.push((i + 1, rls.mape_on(&xs, &ys)));
        }
    }
    println!("\nonline RLS (one pass over the stream, no refits):");
    for (seen, mape) in checkpoints {
        println!("  after {seen:>5} jobs: MAPE {mape:>6.2} %");
    }
    println!("\nliterature reference: [17] reports ≈10 % MAPE on production CINECA");
    println!("traces; the synthetic users are more regular, so single digits here.");
}

fn run_policies(trace_len: usize, cap_kw: f64, seed: u64) -> Vec<SimReport> {
    let cfg = WorkloadConfig {
        mean_interarrival_s: 60.0,
        ..WorkloadConfig::default()
    };
    let mut gen = WorkloadGenerator::new(cfg, seed);
    let history = gen.trace(2000);
    let mut trace = gen.trace(trace_len);
    let predictor = PowerPredictor::from_kind(ModelKind::linreg(), &history, 24);
    predictor.annotate(&mut trace);
    let cap = cap_kw * 1000.0;
    vec![
        report(&simulate(&trace, &mut Fcfs, SimConfig::davide())),
        report(&simulate(
            &trace,
            &mut EasyBackfill::new(),
            SimConfig::davide(),
        )),
        report(&simulate(
            &trace,
            &mut EasyBackfill::new(),
            SimConfig::davide().with_cap_schedule(CapSchedule::constant(cap), true),
        )),
        report(&simulate(
            &trace,
            &mut EasyBackfill::power_aware(),
            SimConfig::davide().with_cap_schedule(CapSchedule::constant(cap), false),
        )),
        report(&simulate(
            &trace,
            &mut EasyBackfill::power_aware(),
            SimConfig::davide().with_cap_schedule(CapSchedule::constant(cap), true),
        )),
    ]
}

/// E11 — scheduling policies under a facility power envelope.
pub fn e11() {
    header("e11", "Proactive vs reactive power-capped scheduling");
    let labels = [
        "fcfs (no cap)",
        "easy (no cap)",
        "easy + reactive cap",
        "proactive (pred.)",
        "proactive+reactive",
    ];
    for cap_kw in [60.0, 70.0, 80.0] {
        println!("\n--- envelope {cap_kw} kW, 400 jobs, 45 nodes ---");
        println!(
            "{:<22} {:>9} {:>8} {:>8} {:>9} {:>9} {:>9}",
            "policy", "wait(s)", "slowdn", "util%", "kWh", "ovrcap%", "peak kW"
        );
        for (label, r) in labels.iter().zip(run_policies(400, cap_kw, 11)) {
            println!(
                "{:<22} {:>9.0} {:>8.2} {:>8.1} {:>9.1} {:>9.3} {:>9.1}",
                label,
                r.mean_wait_s,
                r.mean_slowdown,
                r.utilisation * 100.0,
                r.energy_kwh,
                r.overcap_fraction * 100.0,
                r.peak_power_w / 1000.0
            );
        }
    }
    println!("\nshape: reactive-only holds the cap by throttling (more kWh, longer");
    println!("jobs); proactive admission holds it by ordering, at full node speed —");
    println!("the [15][16] result the paper builds on.");

    // Ablation 1: fairness aging on the proactive dispatcher.
    println!("\nfairness-aging ablation (60 kW envelope):");
    let cfg = WorkloadConfig {
        mean_interarrival_s: 60.0,
        ..WorkloadConfig::default()
    };
    let mut gen = WorkloadGenerator::new(cfg, 21);
    let history = gen.trace(2000);
    let mut trace = gen.trace(400);
    PowerPredictor::from_kind(ModelKind::linreg(), &history, 24).annotate(&mut trace);
    println!(
        "{:>14} {:>12} {:>12} {:>12}",
        "aging bound", "mean wait", "p95 wait", "max slowdown"
    );
    for aging in [None, Some(4.0 * 3600.0), Some(1.0 * 3600.0)] {
        let mut policy = match aging {
            None => EasyBackfill::power_aware(),
            Some(a) => EasyBackfill::power_aware().with_aging(a),
        };
        let out = simulate(
            &trace,
            &mut policy,
            SimConfig::davide().with_cap_schedule(CapSchedule::constant(60_000.0), true),
        );
        let r = report(&out);
        let max_slow = out
            .completed
            .iter()
            .filter_map(|j| j.bounded_slowdown())
            .fold(0.0_f64, f64::max);
        println!(
            "{:>14} {:>10.0} s {:>10.0} s {:>12.1}",
            aging.map_or("off".to_string(), |a| format!("{:.0} h", a / 3600.0)),
            r.mean_wait_s,
            r.p95_wait_s,
            max_slow
        );
    }
    println!("aging trades a little mean wait for a bounded worst case — the");
    println!("\"preserving job fairness\" requirement of §III-A2.");

    // Ablation 2: MS3-style day/night envelope ([15]).
    println!("\nMS3 day/night-envelope ablation (day 55 kW / night 75 kW vs flat):");
    for (label, cfg) in [
        (
            "flat 65 kW",
            SimConfig::davide().with_cap_schedule(CapSchedule::constant(65_000.0), true),
        ),
        (
            "55 kW day / 75 kW night",
            SimConfig::davide().with_cap_schedule(CapSchedule::day_night(55_000.0, 75_000.0), true),
        ),
    ] {
        let out = simulate(&trace, &mut EasyBackfill::power_aware(), cfg);
        let r = report(&out);
        println!(
            "  {:<26} wait {:>8.0} s  slowdn {:>6.2}  kWh {:>8.1}  peak {:>5.1} kW",
            label,
            r.mean_wait_s,
            r.mean_slowdown,
            r.energy_kwh,
            r.peak_power_w / 1000.0
        );
    }
    println!("the same mean envelope shifted to cool hours ([15] \"do less when it's");
    println!("too hot\") keeps QoS while shaping when the power is drawn.");
}

/// E12 — per-job / per-user energy accounting, served through the same
/// [`QueryService`] rollup path the HTTP front-end exposes.
pub fn e12() {
    use davide_api::{JobRollupRequest, QueryService, QueryServiceConfig, UserRollupRequest};
    use davide_telemetry::gateway::power_topic;
    use davide_telemetry::TsDb;

    header("e12", "Energy accounting (EA) & attribution");
    let cfg = WorkloadConfig::default();
    let mut gen = WorkloadGenerator::new(cfg, 77);
    let trace = gen.trace(300);
    let out = simulate(&trace, &mut EasyBackfill::new(), SimConfig::davide());
    let svc = QueryService::over_store(
        TsDb::new(),
        &davide_obs::ObsHub::monotonic(),
        QueryServiceConfig::default(),
    );
    svc.ingest_outcome(&out, |n| power_topic(n, "node"));

    let total = out.total_energy_j();
    let ledger = svc.ledger();
    let ledger = ledger.read();
    let attributed = ledger.attributed_j();
    println!(
        "system energy {:.1} kWh = attributed {:.1} kWh (jobs) + {:.1} kWh (idle floor)",
        total / 3.6e6,
        attributed / 3.6e6,
        ledger.unattributed_j() / 3.6e6
    );
    assert!((attributed + ledger.unattributed_j() - total).abs() < 1e-3);
    println!("conservation check: Σ per-job + idle = system ✓");
    drop(ledger);

    println!("\ntop 5 users by energy-to-solution (via /v1/rollup/user):");
    println!(
        "{:<8} {:>6} {:>10} {:>12} {:>12} {:>10}",
        "user", "jobs", "kWh", "node-hours", "W/node avg", "cost (€)"
    );
    let rollup = svc
        .rollup_user(&UserRollupRequest { user_id: None })
        .expect("rollup");
    for u in rollup.users.iter().take(5) {
        println!(
            "user{:<4} {:>6} {:>10.1} {:>12.1} {:>12.0} {:>10.2}",
            u.user_id,
            u.jobs,
            u.energy_j / 3.6e6,
            u.node_seconds / 3600.0,
            u.mean_power_w,
            u.cost
        );
    }
    // Spot-check one job through the same typed path.
    let heaviest = rollup.users.first().expect("users exist").user_id;
    let job = out
        .completed
        .iter()
        .find(|j| j.user_id == heaviest)
        .expect("heaviest user completed a job");
    let jr = svc
        .rollup_job(&JobRollupRequest {
            job_id: job.id,
            measured: false,
        })
        .expect("job rollup");
    println!(
        "\njob {} (user{}): ledger {:.2} kWh, cost €{:.2} (via /v1/rollup/job)",
        jr.job_id,
        jr.user_id,
        jr.ledger_energy_j.unwrap_or(0.0) / 3.6e6,
        jr.cost
    );
    assert!(jr.ledger_energy_j.unwrap_or(0.0) > 0.0);
}

/// E13 — energy-proportionality APIs: node shaped to the job.
pub fn e13() {
    header("e13", "Energy-proportionality APIs (§IV)");
    use davide_apps::workload::{AppKind, AppModel};
    println!(
        "{:<18} {:>8} {:>12} {:>12} {:>9} {:>14}",
        "application", "shape", "full node", "shaped", "saving", "kWh/day saved"
    );
    for kind in AppKind::ALL {
        let model = AppModel::for_kind(kind);
        let full = ComputeNode::davide(0);
        let mut shaped = ComputeNode::davide(1);
        shaped.apply_shape(model.shape).unwrap();
        let p_full = model.mean_node_power(&full).0;
        let p_shape = model.mean_node_power(&shaped).0;
        println!(
            "{:<18} {:>4}g/{:<2}c {:>10.0} W {:>10.0} W {:>8.1} % {:>14.1}",
            kind.name(),
            model.shape.gpus,
            model.shape.cores_per_socket,
            p_full,
            p_shape,
            100.0 * (1.0 - p_shape / p_full),
            (p_full - p_shape) * 86_400.0 / 3.6e6
        );
    }
    // GPU-count sweep for a 1-GPU-per-rank app on one node.
    println!("\nGPU-gating sweep (idle node + k active GPUs at full tilt):");
    for k in 0..=4u32 {
        let mut node = ComputeNode::davide(0);
        node.apply_shape(davide_core::node::JobShape {
            cores_per_socket: 2,
            gpus: k,
            centaurs_per_socket: 2,
        })
        .unwrap();
        let p = node.power(NodeLoad {
            cpu: 0.3,
            gpu: 1.0,
            mem: 0.5,
            net: 0.1,
        });
        println!("  {k} GPU(s): {:>6.0} W", p.0);
    }
}

/// F4 — the whole Fig. 4 pipeline in one run: monitored, predicted,
/// proactively scheduled, reactively guarded, accounted.
pub fn f4() {
    header("f4", "Fig. 4 end-to-end: EG → predictor → dispatcher → EA");
    // 1. Train the predictor (EP) from history.
    let cfg = WorkloadConfig::default();
    let mut gen = WorkloadGenerator::new(cfg, 1);
    let history = gen.trace(1500);
    let predictor = PowerPredictor::from_kind(ModelKind::linreg(), &history, 24);
    println!("EP: ridge predictor trained on {} jobs", history.len());

    // 2. Schedule a new trace under the envelope.
    let mut trace = gen.trace(200);
    predictor.annotate(&mut trace);
    let out = simulate(
        &trace,
        &mut EasyBackfill::power_aware(),
        SimConfig::davide().with_cap_schedule(CapSchedule::constant(70_000.0), true),
    );
    let r = report(&out);
    println!(
        "dispatcher: {} jobs under 70 kW — overcap {:.3} %, peak {:.1} kW, util {:.1} %",
        r.jobs,
        r.overcap_fraction * 100.0,
        r.peak_power_w / 1000.0,
        r.utilisation * 100.0
    );

    // 3. The EG verifies one node's schedule-window energy through the
    //    full telemetry chain.
    use davide_mqtt::{Broker, QoS};
    use davide_telemetry::gateway::{node_filter, EnergyGateway, SampleFrame};
    use davide_telemetry::{EnergyIntegrator, WorkloadWaveform};
    let broker = Broker::default();
    let mut agent = broker.connect("per-job-aggregator");
    agent.subscribe(&node_filter(0), QoS::AtMostOnce).unwrap();
    let mut eg = EnergyGateway::connect(&broker, 0, 3);
    let mean_w = trace[0].true_power_w;
    let mut wave_rng = Rng::seed_from(8);
    let truth = WorkloadWaveform::hpc_job(mean_w, 0.5).render(800_000.0, 1.0, &mut wave_rng);
    eg.acquire_and_publish("node", &truth, 0.0);
    let mut acc = EnergyIntegrator::new();
    for m in agent.drain() {
        acc.push(&SampleFrame::decode(m.payload).unwrap());
    }
    let err = (acc.energy().0 - truth.energy().0).abs() / truth.energy().0 * 100.0;
    println!("EG: measured job slice through sensor/ADC/MQTT with {err:.3} % energy error");

    // 4. Accounting (EA).
    let mut ledger = EnergyLedger::new();
    ledger.ingest(&out);
    println!(
        "EA: {:.1} kWh attributed across {} users; idle floor {:.1} kWh",
        ledger.attributed_j() / 3.6e6,
        ledger.users_by_energy().len(),
        ledger.unattributed_j() / 3.6e6
    );
    println!("\nFig. 4 functionality demonstrated: Pr/EA/EP + proactive + reactive ✓");
}

/// E18 — the §IV co-design tradeoff: time-to-solution versus
/// energy-to-solution across allocation sizes.
pub fn e18() {
    header("e18", "Time-to-solution vs energy-to-solution (§IV)");
    use davide_apps::distributed::{ets_optimal_nodes, tts_ets_sweep, tts_optimal_nodes};
    use davide_apps::workload::{AppKind, AppModel};
    for kind in AppKind::ALL {
        let app = AppModel::for_kind(kind);
        println!("\n{} (100 iterations):", kind.name());
        println!(
            "{:>8} {:>12} {:>14} {:>12}",
            "nodes", "TTS", "ETS", "efficiency"
        );
        for (n, tts, ets) in tts_ets_sweep(&app, 100, &[1, 2, 4, 8, 16, 32]) {
            let eff = app.iteration_time.0 * 100.0 / (tts * n as f64);
            println!(
                "{:>8} {:>10.0} s {:>12.2} kWh {:>11.1} %",
                n,
                tts,
                ets / 3.6e6,
                eff * 100.0
            );
        }
        let tts_n = tts_optimal_nodes(&app, 32);
        let ets_n = ets_optimal_nodes(&app, 32);
        println!(
            "  TTS-optimal {} nodes; ETS-optimal {} nodes — the §IV tradeoff the",
            tts_n, ets_n
        );
        println!("  energy APIs expose to developers.");
    }
}

/// E19 — the E4 burn-in suite (§I) on healthy and faulty nodes.
pub fn e19() {
    header("e19", "Burn-in acceptance suite (§I)");
    use davide_core::burnin::{burnin_batch, run_burnin, BurnInConfig};
    let mut node = ComputeNode::davide(0);
    let report = run_burnin(&mut node, BurnInConfig::default());
    println!("healthy liquid-cooled node:");
    println!(
        "{:<16} {:>10} {:>12} {:>10} {:>8}",
        "stage", "power", "peak die", "throttles", "verdict"
    );
    for s in &report.stages {
        println!(
            "{:<16} {:>8.0} W {:>10.1} °C {:>10} {:>8}",
            s.stage,
            s.power.0,
            s.peak_die_temp.0,
            s.throttle_events,
            if s.passed { "PASS" } else { "FAIL" }
        );
    }
    println!(
        "capping-response check: {} — overall {}",
        if report.capping_ok { "PASS" } else { "FAIL" },
        if report.passed {
            "ACCEPTED"
        } else {
            "REJECTED"
        }
    );

    // A batch with injected faults.
    let mut batch: Vec<ComputeNode> = (0..6).map(ComputeNode::davide).collect();
    batch[2].gpus[0].set_enabled(false); // dead GPU
    batch[2].gpus[2].set_enabled(false);
    batch.push(ComputeNode::davide_air_cooled(40)); // mis-built cooling
    let failures = burnin_batch(&mut batch, BurnInConfig::default());
    println!("\nbatch of 7 (one dead-GPU node, one air-cooled mis-build):");
    for f in &failures {
        let causes: Vec<&str> = f
            .stages
            .iter()
            .filter(|s| !s.passed)
            .map(|s| s.stage)
            .collect();
        println!(
            "  node {:>2} REJECTED — failing stages: {causes:?}",
            f.node_id
        );
    }
    println!(
        "  {} of 7 rejected; healthy nodes pass silently.",
        failures.len()
    );
}

/// E20 — the smart profiler (Fig. 4 "Pr"): phase detection and spectral
/// fingerprinting on gateway streams.
pub fn e20() {
    header("e20", "Smart profiler: phases & spectra (Fig. 4 Pr)");
    use davide_telemetry::profiler::{detect_phases, summarise, ProfilerConfig};
    use davide_telemetry::spectral::welch_psd;
    use davide_telemetry::WorkloadWaveform;

    let mut rng = davide_core::rng::Rng::seed_from(31);
    let wave = WorkloadWaveform::hpc_job(1700.0, 0.5);
    // What the EG actually delivers: the truth through the full chain.
    let truth = wave.render(800_000.0, 4.0, &mut rng.fork());
    let chain = davide_telemetry::MonitorChain::davide_eg(&mut rng.fork());
    let stream = chain.acquire(&truth, &mut rng);

    let phases = detect_phases(&stream, ProfilerConfig::default());
    let summary = summarise(&phases);
    println!(
        "phase detection on the 50 kS/s stream: {} phases, high-duty {:.0} %, hottest {:.0} W",
        summary.phases,
        summary.high_duty * 100.0,
        summary.hottest_mean.0
    );
    println!("first phases:");
    for p in phases.iter().take(6) {
        println!(
            "  [{:>6.3} – {:>6.3}] s  {:>7.1} W  {:>8.1} J",
            p.t0, p.t1, p.mean.0, p.energy.0
        );
    }

    let spec = welch_psd(&stream, 131_072); // df ≈ 0.38 Hz
    let (f, _) = spec.dominant().unwrap();
    println!("\nspectral fingerprint: dominant line at {f:.1} Hz (1 Hz phase square wave and");
    println!(
        "its odd harmonics); band power 0.5–6 Hz: {:.0} W², 40–60 Hz: {:.0} W²",
        spec.band_power(0.5, 6.0),
        spec.band_power(40.0, 60.0)
    );
    println!("\nthe Pr loop: phases → per-phase energy → \"sources of not-optimality\".");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_comparison_has_expected_shape() {
        let rs = run_policies(150, 65.0, 3);
        // Reactive-only and combined hold the cap.
        assert!(rs[2].overcap_fraction < 1e-9);
        assert!(rs[4].overcap_fraction < 1e-9);
        // Uncapped runs exceed 65 kW at peak.
        assert!(rs[1].peak_power_w > 65_000.0);
        // Proactive-only has small residual violations (prediction error).
        assert!(rs[3].overcap_fraction < 0.10);
        // Backfill beats FCFS on waiting.
        assert!(rs[1].mean_wait_s <= rs[0].mean_wait_s);
    }
}
