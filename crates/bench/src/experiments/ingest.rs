//! E21 — telemetry ingest throughput: the EG → MQTT → TsDb data path
//! replayed at cluster scale (45 nodes × 8 channels × 500-sample
//! frames), comparing the seed per-sample ingest against interned-id
//! and frame-bulk appends (see DESIGN.md "Ingest data path").

use crate::header;
use davide_telemetry::gateway::{power_topic, SampleFrame, CHANNELS};
use davide_telemetry::ingest::{DecodedFrame, ShardedTsDb};
use davide_telemetry::tsdb::{Resolution, TsDb};
use std::collections::{HashMap, VecDeque};
use std::time::Instant;

/// The seed implementation's hot path, kept verbatim as the baseline:
/// `entry(key.to_string())` per sample (String allocation + hash),
/// row-major `(t, v)` ring, per-sample rollup bucketing via `floor`.
struct SeedTsDb {
    series: HashMap<String, SeedSeries>,
    raw_capacity: usize,
}

struct SeedSeries {
    raw: VecDeque<(f64, f64)>,
    roll_bucket: i64,
    roll_sum: f64,
    roll_n: u64,
    rollup: Vec<(f64, f64)>,
    count: u64,
    last_t: f64,
}

impl SeedTsDb {
    fn new(raw_capacity: usize) -> Self {
        SeedTsDb {
            series: HashMap::new(),
            raw_capacity,
        }
    }

    fn append(&mut self, key: &str, t: f64, v: f64) {
        let cap = self.raw_capacity;
        let s = self
            .series
            .entry(key.to_string())
            .or_insert_with(|| SeedSeries {
                raw: VecDeque::with_capacity(cap.min(4096)),
                roll_bucket: i64::MIN,
                roll_sum: 0.0,
                roll_n: 0,
                rollup: Vec::new(),
                count: 0,
                last_t: f64::NEG_INFINITY,
            });
        if t < s.last_t {
            return;
        }
        s.last_t = t;
        s.count += 1;
        if s.raw.len() == cap {
            s.raw.pop_front();
        }
        s.raw.push_back((t, v));
        let bucket = t.floor() as i64;
        if bucket != s.roll_bucket {
            if s.roll_n > 0 {
                s.rollup
                    .push((s.roll_bucket as f64 + 0.5, s.roll_sum / s.roll_n as f64));
            }
            s.roll_bucket = bucket;
            s.roll_sum = 0.0;
            s.roll_n = 0;
        }
        s.roll_sum += v;
        s.roll_n += 1;
    }

    fn total(&self) -> u64 {
        self.series.values().map(|s| s.count).sum()
    }
}

const NODES: u32 = 45;
const FRAME_LEN: usize = 500;
const ROUNDS: usize = 40;
/// Ring capacities for the replay stores: big enough that queries see
/// real history, small enough that four stores fit comfortably in RAM.
const RAW_CAP: usize = 8_192;
const ROLL_CAP: usize = 512;

/// Synthesise the replay batch: `ROUNDS` frames per node × channel.
fn make_batch() -> Vec<DecodedFrame> {
    let mut batch = Vec::new();
    for round in 0..ROUNDS {
        let t0 = round as f64 * 0.01;
        for node in 0..NODES {
            for (ci, ch) in CHANNELS.iter().enumerate() {
                let base = 200.0 + 50.0 * ci as f32 + node as f32;
                let watts: Vec<f32> = (0..FRAME_LEN).map(|i| base + (i % 17) as f32).collect();
                let topic = power_topic(node, ch);
                let frame = SampleFrame {
                    t0_s: t0,
                    dt_s: 2e-5,
                    watts,
                };
                let trace_id = davide_obs::frame_trace_id(&topic, &frame.encode());
                batch.push(DecodedFrame {
                    topic,
                    frame,
                    trace_id,
                });
            }
        }
    }
    batch
}

/// E21 — ingest data-path throughput.
pub fn e21() {
    header("e21", "Telemetry ingest throughput (EG → MQTT → TsDb)");
    let batch = make_batch();
    let total_samples: u64 = batch.iter().map(|f| f.frame.watts.len() as u64).sum();
    println!(
        "replay: {} nodes × {} channels × {} frames of {} samples = {} frames, {:.2} M samples\n",
        NODES,
        CHANNELS.len(),
        ROUNDS,
        FRAME_LEN,
        batch.len(),
        total_samples as f64 / 1e6
    );

    let mut results: Vec<(&str, f64)> = Vec::new();
    let per_series = (ROUNDS * FRAME_LEN) as u64;
    let spot_mean: f64;

    // Each path runs in its own scope so dropped stores release their
    // memory before the next measurement (several stores alive at once
    // distorts timings through allocator pressure).

    // Baseline: the seed path, per-sample with String-keyed entry().
    {
        let t = Instant::now();
        let mut seed = SeedTsDb::new(RAW_CAP);
        for f in &batch {
            for (i, &w) in f.frame.watts.iter().enumerate() {
                seed.append(&f.topic, f.frame.t0_s + i as f64 * f.frame.dt_s, w as f64);
            }
        }
        let dt = t.elapsed().as_secs_f64();
        assert_eq!(seed.total(), total_samples);
        results.push(("seed: per-sample, String entry per sample", dt));
    }

    // Per-sample, but through the interned-id path (no hash per sample).
    {
        let t = Instant::now();
        let mut db = TsDb::with_capacity(RAW_CAP, ROLL_CAP);
        for f in &batch {
            let id = db.resolve(&f.topic);
            for (i, &w) in f.frame.watts.iter().enumerate() {
                db.append_id(id, f.frame.t0_s + i as f64 * f.frame.dt_s, w as f64);
            }
        }
        let dt = t.elapsed().as_secs_f64();
        results.push(("interned id, per-sample append_id", dt));
        let id = db.lookup(&power_topic(0, "node")).expect("series exists");
        assert_eq!(db.count_id(id), per_series);
    }

    // Frame-bulk: one append_frame_id per frame.
    {
        let t = Instant::now();
        let mut db = TsDb::with_capacity(RAW_CAP, ROLL_CAP);
        for f in &batch {
            let id = db.resolve(&f.topic);
            db.append_frame_id(id, f.frame.t0_s, f.frame.dt_s, &f.frame.watts);
        }
        let dt = t.elapsed().as_secs_f64();
        results.push(("frame-bulk append_frame_id", dt));
        let id = db.lookup(&power_topic(0, "node")).expect("series exists");
        assert_eq!(db.count_id(id), per_series);
        // Sanity: the fast path stored the data the queries expect.
        let gpu = db.lookup(&power_topic(7, "gpu0")).expect("series exists");
        spot_mean = db.mean_id(gpu, Resolution::Raw, 0.0, 1e9).unwrap();
    }

    // Frame-bulk into the sharded store (rayon fan-out shape).
    {
        let t = Instant::now();
        let mut sharded = ShardedTsDb::new(4, RAW_CAP, ROLL_CAP);
        let n = sharded.ingest_batch(&batch);
        let dt = t.elapsed().as_secs_f64();
        assert_eq!(n, total_samples);
        results.push(("frame-bulk, 4-shard fan-out", dt));
    }

    // End to end: frames encoded, published through the in-process
    // broker, drained and bulk-appended by a FrameIngestor.
    {
        use davide_mqtt::{Broker, QoS};
        use davide_telemetry::ingest::FrameIngestor;
        let broker = Broker::default();
        let mut ing =
            FrameIngestor::subscribe(&broker, "mgmt", &["davide/+/power/#"]).expect("filter");
        let eg_side = broker.connect("replay");
        let per_round = batch.len() / ROUNDS;
        // Untimed warm-up round: faults in the broker's subscriber
        // queues and codec buffers so the timed passes measure the
        // steady state, not first-touch page faults.
        for f in &batch[..per_round] {
            eg_side
                .publish(&f.topic, f.frame.encode(), QoS::AtMostOnce, false)
                .expect("publish");
        }
        let _ = ing.drain_frames(); // discard; sample counters untouched
        let t = Instant::now();
        let mut db = TsDb::with_capacity(RAW_CAP, ROLL_CAP);
        for round in batch.chunks(per_round) {
            for f in round {
                eg_side
                    .publish(&f.topic, f.frame.encode(), QoS::AtMostOnce, false)
                    .expect("publish");
            }
            ing.drain_into(&mut db);
        }
        let dt = t.elapsed().as_secs_f64();
        assert_eq!(ing.stats().samples, total_samples);
        results.push(("end-to-end: encode → MQTT → decode → bulk", dt));
    }

    let base_rate = total_samples as f64 / results[0].1;
    println!(
        "{:<44} {:>10} {:>14} {:>9}",
        "ingest path", "time", "samples/s", "speedup"
    );
    println!("{}", "-".repeat(80));
    for (name, secs) in &results {
        let rate = total_samples as f64 / secs;
        println!(
            "{:<44} {:>8.1} ms {:>12.2} M/s {:>8.2}×",
            name,
            secs * 1e3,
            rate / 1e6,
            rate / base_rate
        );
    }
    let bulk_rate = total_samples as f64 / results[2].1;
    println!(
        "\nframe-bulk vs seed path: {:.1}× samples/s (target ≥ 5×)",
        bulk_rate / base_rate
    );
    println!("spot check node07/gpu0 raw mean: {spot_mean:.1} W");
    assert!(
        bulk_rate / base_rate >= 5.0,
        "frame-bulk ingest must beat the seed path ≥ 5×"
    );
}
