//! E25 — full-rate acquisition: one simulated second of cluster-wide
//! front-end sampling (45 nodes × 8 channels × 800 kS/s ≈ 288 M raw
//! samples) driven end to end — synth → ADC → decimation → MQTT →
//! ingest → TsDb — comparing the blocked `f32` kernel path against the
//! retained scalar reference path (see DESIGN.md "Full-rate acquisition
//! path").

use super::controlplane::SMOKE_ENV;
use crate::header;
use davide_obs::ObsHub;
use davide_telemetry::acquisition::{AcquisitionConfig, AcquisitionRig, DspMode};

fn smoke() -> bool {
    std::env::var_os(SMOKE_ENV).is_some()
}

/// Per-stage wall-time shares of a run, for the report table.
fn stage_row(label: &str, r: &davide_telemetry::acquisition::AcquisitionReport) {
    let total = (r.compute_ns + r.publish_ns + r.ingest_ns).max(1) as f64;
    println!(
        "{:<28} {:>8.1} ms compute ({:>4.1}%) {:>8.1} ms publish ({:>4.1}%) {:>8.1} ms ingest ({:>4.1}%)",
        label,
        r.compute_ns as f64 / 1e6,
        r.compute_ns as f64 / total * 100.0,
        r.publish_ns as f64 / 1e6,
        r.publish_ns as f64 / total * 100.0,
        r.ingest_ns as f64 / 1e6,
        r.ingest_ns as f64 / total * 100.0,
    );
}

/// E25 — full-rate acquisition path.
pub fn e25() {
    header("e25", "Full-rate acquisition (45 EGs × 8 ch × 800 kS/s)");

    // Full mode drives the paper's design point through the blocked
    // path: the whole simulated second, all 45 gateways. The scalar
    // baseline is measured on the same per-gateway workload over a
    // smaller slice (same per-sample work, fewer of them) and compared
    // on samples/s — running the seed path over all 288 M raw samples
    // would only make the experiment slower, not the ratio different.
    let (blocked_cfg, scalar_cfg) = if smoke() {
        (
            AcquisitionConfig::smoke(),
            AcquisitionConfig {
                duration_s: 0.02,
                ..AcquisitionConfig::smoke()
            },
        )
    } else {
        (
            AcquisitionConfig::full_rate(),
            AcquisitionConfig {
                nodes: 9,
                duration_s: 0.5,
                ..AcquisitionConfig::full_rate()
            },
        )
    };

    println!(
        "blocked: {} nodes × {} ch × {:.0} kS/s × {:.2} s = {:.1} M raw samples",
        blocked_cfg.nodes,
        blocked_cfg.channels,
        blocked_cfg.adc.sample_rate / 1e3,
        blocked_cfg.duration_s,
        blocked_cfg.raw_samples() as f64 / 1e6
    );
    println!(
        "scalar baseline: {} nodes × {} ch × {:.2} s = {:.1} M raw samples\n",
        scalar_cfg.nodes,
        scalar_cfg.channels,
        scalar_cfg.duration_s,
        scalar_cfg.raw_samples() as f64 / 1e6
    );

    // Scalar single-thread baseline: the seed DSP path.
    let mut scalar_rig = AcquisitionRig::new(scalar_cfg, DspMode::Scalar);
    let scalar = scalar_rig.run();
    assert_eq!(
        scalar.stored_samples, scalar.decimated_samples,
        "no stale drops in an ordered replay"
    );

    // Blocked full-rate path, with obs per-stage instruments attached.
    let hub = ObsHub::monotonic();
    let mut blocked_rig = AcquisitionRig::new(blocked_cfg, DspMode::Blocked);
    blocked_rig.set_obs(&hub);
    let blocked = blocked_rig.run();
    assert_eq!(
        blocked.stored_samples, blocked.decimated_samples,
        "every decimated sample must land in the TsDb"
    );

    println!(
        "{:<28} {:>14} {:>12} {:>12} {:>9}",
        "path", "raw samples", "wall", "samples/s", "speedup"
    );
    println!("{}", "-".repeat(80));
    let rows = [("scalar reference", &scalar), ("blocked kernels", &blocked)];
    for (name, r) in rows {
        println!(
            "{:<28} {:>12.1} M {:>9.1} ms {:>9.1} M/s {:>8.2}×",
            name,
            r.raw_samples as f64 / 1e6,
            r.elapsed_s * 1e3,
            r.raw_samples_per_s / 1e6,
            r.raw_samples_per_s / scalar.raw_samples_per_s
        );
    }
    println!();
    stage_row("scalar stage split", &scalar);
    stage_row("blocked stage split", &blocked);

    // Per-stage latency distribution from the obs registry.
    let reg = &hub.registry;
    for name in [
        "acq_round_compute_ns",
        "acq_round_publish_ns",
        "acq_round_ingest_ns",
    ] {
        if let Some(h) = reg.find_histogram(name) {
            let s = h.snapshot();
            println!(
                "{name:<24} p50 {:>9.2} ms   p99 {:>9.2} ms   mean {:>9.2} ms",
                s.quantile(0.5) as f64 / 1e6,
                s.quantile(0.99) as f64 / 1e6,
                s.mean() / 1e6,
            );
        }
    }

    // Sanity: the store carries plausible node power on both paths.
    use davide_telemetry::SeriesRead;
    let key = "davide/node00/power/node";
    let mb = blocked_rig
        .db()
        .series_mean(key, davide_telemetry::tsdb::Resolution::Raw, 0.0, 1e18)
        .0
        .expect("series present");
    let ms = scalar_rig
        .db()
        .series_mean(key, davide_telemetry::tsdb::Resolution::Raw, 0.0, 1e18)
        .0
        .expect("series present");
    println!("\nspot check {key}: blocked {mb:.1} W, scalar {ms:.1} W");
    assert!((mb - 1700.0).abs() < 150.0, "plausible node power: {mb}");
    assert!((mb - ms).abs() < 2.5, "paths agree to a couple of LSBs");

    let speedup = blocked.raw_samples_per_s / scalar.raw_samples_per_s;
    // The smoke run measures ~5 ms of work, so its ratio carries real
    // scheduler noise; gate it loosely and leave the ≥3× claim to the
    // full run (typically 3.6–3.9× — see EXPERIMENTS.md).
    let gate = if smoke() { 2.0 } else { 3.0 };
    println!("\nfull-rate vs scalar single-thread: {speedup:.2}× samples/s (gate ≥ {gate:.0}×)");
    println!(
        "sustained end-to-end: {:.1} M raw samples/s into the TsDb ({:.2} s simulated in {:.2} s wall)",
        blocked.raw_samples_per_s / 1e6,
        blocked_rig.config().duration_s,
        blocked.elapsed_s
    );
    assert!(
        speedup >= gate,
        "blocked acquisition path must beat the scalar baseline ≥ {gate}× (got {speedup:.2}×)"
    );
}
