//! E30 — sharded broker fan-out under publish-side concurrency.
//!
//! The claim: sharding the broker's hot path (topic trie, retained
//! store, per-client queues split over [`DEFAULT_SHARDS`] locks keyed
//! by topic-prefix hash) buys real multi-core publish throughput
//! without changing a single delivered byte. Three phases:
//!
//! 1. **Throughput** — a 10 000-subscriber fan-out (mixed exact,
//!    per-node-wildcard and global-wildcard filters) hammered by 16
//!    concurrent publisher threads, sharded vs `with_shards(.., 1)`
//!    (the old single-lock broker, bit-for-bit). Gate: ≥ 5× publish
//!    throughput at 16 threads on a ≥ 16-core machine; the bar scales
//!    down with `available_parallelism` (a starved CI box can only
//!    show no-regression, and says so).
//! 2. **Differential** — single-threaded determinism: the same
//!    scripted publish/subscribe/retain sequence against 1-shard and
//!    N-shard brokers must hand every subscriber the identical message
//!    vector, order included.
//! 3. **QoS 1** — broker-side tracked delivery: unacked messages
//!    redeliver DUP-flagged in packet-id order, the in-flight window
//!    bounds exposure, and acks settle everything.
//!
//! `--smoke` shrinks phase 1 to 2000 subscribers / 4 threads for CI;
//! the gates are the same shape.

use crate::experiments::controlplane::SMOKE_ENV;
use crate::header;
use bytes::Bytes;
use davide_mqtt::{Broker, Message, QoS, DEFAULT_SHARDS};
use std::sync::Barrier;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var_os(SMOKE_ENV).is_some()
}

/// Phase-1 workload shape.
struct Shape {
    nodes: usize,
    channels: usize,
    exact_subs: usize,
    node_wildcards: usize,
    global_wildcards: usize,
    threads: usize,
    publishes_per_thread: usize,
}

impl Shape {
    fn sized(smoke: bool) -> Shape {
        if smoke {
            Shape {
                nodes: 128,
                channels: 4,
                exact_subs: 1_740,
                node_wildcards: 256,
                global_wildcards: 4,
                threads: 4,
                publishes_per_thread: 4_096,
            }
        } else {
            Shape {
                nodes: 512,
                channels: 4,
                exact_subs: 8_972,
                node_wildcards: 1_024,
                global_wildcards: 4,
                threads: 16,
                publishes_per_thread: 8_192,
            }
        }
    }

    fn total_subs(&self) -> usize {
        self.exact_subs + self.node_wildcards + self.global_wildcards
    }

    fn total_publishes(&self) -> usize {
        self.threads * self.publishes_per_thread
    }
}

/// One timed fan-out run: build the subscriber population (untimed),
/// then let `threads` publishers hammer their node slices from behind
/// a barrier. Returns (wall seconds, deliveries, drops).
///
/// Queue slots are allocated up front per client, so depths are sized
/// per subscriber class — an exact-match agent sees only its own
/// topic's publishes, a per-node wildcard one node's, and only the
/// handful of global wildcards need room for every publish in flight
/// (10 000 subscribers × a worst-case-for-all depth would be tens of
/// gigabytes of empty ring buffers).
fn fanout_run(broker: &Broker, shape: &Shape) -> (f64, u64, u64) {
    // Subscribers stay alive (and undrained) for the whole run.
    let per_topic = shape.total_publishes() / (shape.nodes * shape.channels);
    let per_node = shape.total_publishes() / shape.nodes;
    let mut subs = Vec::with_capacity(shape.total_subs());
    for i in 0..shape.exact_subs {
        let mut c = broker.connect_with_depth(format!("exact{i}"), 4 * per_topic);
        c.subscribe(
            &format!(
                "davide/node{}/power/ch{}",
                i % shape.nodes,
                (i / shape.nodes) % shape.channels
            ),
            QoS::AtMostOnce,
        )
        .unwrap();
        subs.push(c);
    }
    for n in 0..shape.node_wildcards {
        let mut c = broker.connect_with_depth(format!("nodewild{n}"), 4 * per_node);
        c.subscribe(
            &format!("davide/node{}/#", n % shape.nodes),
            QoS::AtMostOnce,
        )
        .unwrap();
        subs.push(c);
    }
    for g in 0..shape.global_wildcards {
        let mut c = broker.connect_with_depth(format!("global{g}"), shape.total_publishes() + 16);
        c.subscribe("davide/#", QoS::AtMostOnce).unwrap();
        subs.push(c);
    }

    let start = Barrier::new(shape.threads + 1);
    let payload = Bytes::from_static(b"1701.5");
    let wall = std::thread::scope(|s| {
        for t in 0..shape.threads {
            let broker = broker.clone();
            let start = &start;
            let payload = payload.clone();
            let shape = &shape;
            s.spawn(move || {
                let publisher = broker.connect(format!("eg{t}"));
                // Each thread owns a contiguous node slice, so distinct
                // threads mostly land on distinct shards.
                let lo = t * shape.nodes / shape.threads;
                let hi = (t + 1) * shape.nodes / shape.threads;
                let span = (hi - lo).max(1);
                start.wait();
                for i in 0..shape.publishes_per_thread {
                    let node = lo + i % span;
                    let ch = (i / span) % shape.channels;
                    publisher
                        .publish(
                            &format!("davide/node{node}/power/ch{ch}"),
                            payload.clone(),
                            QoS::AtMostOnce,
                            false,
                        )
                        .unwrap();
                }
            });
        }
        start.wait();
        let t0 = Instant::now();
        // Scope joins every publisher before returning.
        t0
    })
    .elapsed()
    .as_secs_f64();

    use std::sync::atomic::Ordering::Relaxed;
    let delivered = broker.stats().delivered.load(Relaxed);
    let dropped = broker.stats().dropped.load(Relaxed);
    drop(subs);
    (wall, delivered, dropped)
}

/// Deterministic phase-2 script: subscriptions (exact, `+`, `#`),
/// retained publishes, live publishes, a late subscriber that takes
/// the retained replay. Returns every subscriber's drained inbox.
fn differential_script(shards: usize) -> Vec<Vec<Message>> {
    let broker = Broker::with_shards(256, shards);
    let mut subs = vec![
        ("davide/node0/power/ch0", broker.connect("s0")),
        ("davide/node1/power/ch1", broker.connect("s1")),
        ("davide/+/power/ch0", broker.connect("s2")),
        ("davide/node2/#", broker.connect("s3")),
        ("davide/#", broker.connect("s4")),
        ("fed/+/cap", broker.connect("s5")),
    ];
    for (f, c) in subs.iter_mut() {
        c.subscribe(f, QoS::AtMostOnce).unwrap();
    }
    let pubs = broker.connect("pub");
    // A deterministic interleaving of retained and live traffic over
    // topics that straddle every shard the filters can reach.
    let mut x = 0x9e37_79b9_u32;
    for i in 0..200u32 {
        x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        let node = x % 5;
        let ch = (x >> 8) % 3;
        let retain = i % 7 == 0;
        let topic = if i % 11 == 0 {
            format!("fed/rack{:02}/cap", node)
        } else {
            format!("davide/node{node}/power/ch{ch}")
        };
        pubs.publish(
            &topic,
            Bytes::from(format!("v{i}").into_bytes()),
            QoS::AtMostOnce,
            retain,
        )
        .unwrap();
    }
    // Late joiner: retained replay order is part of the contract.
    let mut late = broker.connect("late");
    late.subscribe("davide/#", QoS::AtMostOnce).unwrap();
    let mut out: Vec<Vec<Message>> = subs.into_iter().map(|(_, mut c)| c.drain()).collect();
    out.push(late.drain());
    out
}

/// E30 — sharded fan-out: throughput, determinism, QoS 1 redelivery.
pub fn e30() {
    header("e30", "Sharded broker fan-out (10k subscribers, QoS 1)");
    let shape = Shape::sized(smoke());
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let eff = cores.min(shape.threads);
    println!(
        "{} subscribers ({} exact, {} node-wildcard, {} global), {} publisher \
         threads × {} publishes, {} cores available{}",
        shape.total_subs(),
        shape.exact_subs,
        shape.node_wildcards,
        shape.global_wildcards,
        shape.threads,
        shape.publishes_per_thread,
        cores,
        if smoke() { "  [smoke]" } else { "" }
    );

    // ── Phase 1: concurrent publish throughput, sharded vs 1-lock. ──
    // The broker-default depth only covers the (receive-free) publisher
    // clients; every subscriber sizes its own queue in `fanout_run`.
    let mut results = Vec::new();
    for (label, shards) in [("single-lock", 1), ("sharded", DEFAULT_SHARDS)] {
        // Best of three: each run builds a fresh broker + population,
        // so the first iteration eats the allocator warm-up for both
        // configurations alike and the gate compares steady state.
        let mut best = (0.0f64, 0u64);
        for _ in 0..3 {
            let broker = Broker::with_shards(1024, shards);
            let (wall, delivered, dropped) = fanout_run(&broker, &shape);
            assert_eq!(dropped, 0, "queues are sized for the whole run");
            let tput = shape.total_publishes() as f64 / wall;
            if tput > best.0 {
                best = (tput, delivered);
            }
        }
        println!(
            "  {:<12} {} shards: {:>8.0} pub/s  ({} deliveries, best of 3)",
            label, shards, best.0, best.1
        );
        results.push(best);
    }
    let speedup = results[1].0 / results[0].0;
    assert_eq!(
        results[0].1, results[1].1,
        "same workload must produce the same delivery count"
    );
    // The gate scales with what the machine can actually exercise: the
    // full 5× needs ≥ 16 cores driving 16 threads; below that, lock
    // contention shrinks with the thread count that really runs in
    // parallel, down to a plain no-regression bar on 1–2 cores.
    let required = match eff {
        e if e >= 16 => 5.0,
        e if e >= 8 => 3.0,
        e if e >= 4 => 1.2,
        _ => 0.8,
    };
    if eff < shape.threads {
        println!(
            "  note: only {eff} of {} publisher threads can run in parallel here; \
             gate relaxed to {required:.1}×",
            shape.threads
        );
    }
    println!("  speedup: {speedup:.2}× (gate ≥ {required:.1}×)");
    assert!(
        speedup >= required,
        "sharded fan-out speedup {speedup:.2}× below the {required:.1}× gate"
    );

    // ── Phase 2: shard-count differential, single-threaded. ──
    let single = differential_script(1);
    let sharded = differential_script(DEFAULT_SHARDS);
    assert_eq!(
        single, sharded,
        "per-subscriber delivery must be shard-invariant"
    );
    let msgs: usize = single.iter().map(Vec::len).sum();
    println!(
        "  differential: {} subscribers × scripted run, {} deliveries \
         identical at 1 vs {} shards (retained replay included)",
        single.len(),
        msgs,
        DEFAULT_SHARDS
    );

    // ── Phase 3: QoS 1 tracked delivery and redelivery. ──
    let broker = Broker::with_shards(256, DEFAULT_SHARDS);
    let mut agent = broker.connect("ctl-agent");
    agent
        .subscribe("davide/node0/power/node", QoS::AtLeastOnce)
        .unwrap();
    agent.enable_qos1_tracking(8, 3);
    let gw = broker.connect("eg0");
    for i in 0..12 {
        gw.publish(
            "davide/node0/power/node",
            Bytes::from(format!("{i}").into_bytes()),
            QoS::AtLeastOnce,
            false,
        )
        .unwrap();
    }
    let first = agent.drain();
    assert_eq!(first.len(), 12, "window bounds tracking, not delivery");
    let tracked = first.iter().filter(|m| m.packet_id.is_some()).count();
    assert_eq!(tracked, 8, "in-flight window caps tracked exposure");
    // The agent crashes before acking: everything tracked comes back
    // DUP-flagged, in packet-id order.
    let resent = agent.redeliver_unacked();
    assert_eq!(resent, 8);
    let again = agent.drain();
    assert!(again.iter().all(|m| m.dup && m.packet_id.is_some()));
    for m in &again {
        assert!(agent.ack(m.packet_id.unwrap()), "ack clears the slot");
    }
    assert_eq!(agent.unacked_count(), 0);
    use std::sync::atomic::Ordering::Relaxed;
    println!(
        "  qos1: 12 published, window 8 tracked, {} redelivered DUP, all acked \
         (broker stats: redelivered={}, expired={})",
        resent,
        broker.stats().redelivered.load(Relaxed),
        broker.stats().expired.load(Relaxed),
    );
    println!("\ngates: throughput ≥ {required:.1}× (scaled to {eff} effective cores),");
    println!("shard-invariant delivery, window-bounded QoS 1 with DUP redelivery — all hold.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differential_script_is_shard_invariant() {
        let one = differential_script(1);
        for n in [2, 3, 8, 13] {
            assert_eq!(one, differential_script(n), "{n} shards");
        }
    }

    #[test]
    fn fanout_run_delivers_everything() {
        let shape = Shape {
            nodes: 8,
            channels: 2,
            exact_subs: 40,
            node_wildcards: 8,
            global_wildcards: 2,
            threads: 2,
            publishes_per_thread: 200,
        };
        let broker = Broker::with_shards(shape.total_publishes() * 2, DEFAULT_SHARDS);
        let (_, delivered, dropped) = fanout_run(&broker, &shape);
        assert_eq!(dropped, 0);
        // Global wildcards alone see every publish.
        assert!(delivered >= (shape.total_publishes() * shape.global_wildcards) as u64);
    }
}
