//! Monitoring-chain experiments: E3 (energy error per chain), E4 (ADC &
//! decimation ablation), E5 (time sync), E6 (MQTT fan-out).

use crate::header;
use davide_core::power::energy_error_pct;
use davide_core::rng::Rng;
use davide_mqtt::{Broker, QoS};
use davide_telemetry::clock::cross_node_misalignment;
use davide_telemetry::decimation::{
    boxcar_decimate, design_lowpass_fir, fir_decimate, pick_decimate, tone_amplitude,
};
use davide_telemetry::gateway::{channel_filter, EnergyGateway};
use davide_telemetry::monitor::all_chains;
use davide_telemetry::{run_sync_sim, SyncProtocol, WorkloadWaveform};
use std::time::Instant;

/// E3 — energy-measurement error for every monitoring chain on three
/// workload classes (the §V-C comparison).
pub fn e3() {
    header("e3", "Energy error vs monitoring chain");
    let mut rng = Rng::seed_from(2017);
    let duration = 4.0;
    let workloads = [
        ("idle node (300 W)", WorkloadWaveform::idle(300.0)),
        (
            "HPC job, 0.7 s phases",
            WorkloadWaveform::hpc_job(1700.0, 0.7),
        ),
        ("GPU bursts to 10 kHz", WorkloadWaveform::gpu_burst(1700.0)),
    ];
    print!("{:<36}", "chain \\ workload");
    for (name, _) in &workloads {
        print!(" {name:>22}");
    }
    println!("\n{}", "-".repeat(36 + 23 * workloads.len()));
    let chains = all_chains(&mut rng.fork());
    let mut table = vec![];
    for chain in &chains {
        print!("{:<36}", chain.name);
        let mut row = vec![];
        for (_, wave) in &workloads {
            let truth = wave.render(800_000.0, duration, &mut rng.fork());
            let err = chain.energy_error(&truth, &mut rng);
            print!(" {err:>20.3} %");
            row.push(err);
        }
        println!();
        table.push(row);
    }
    // Shape check: EG best on the bursty load, IPMI worst.
    let eg_burst = table[0][2];
    let ipmi_burst = table[4][2];
    println!(
        "\nEG error on bursty load {:.3} % vs IPMI {:.3} % ({}× better); EG ts 1 µs vs IPMI ~1 s",
        eg_burst,
        ipmi_burst,
        (ipmi_burst / eg_burst.max(1e-6)).round()
    );
}

/// E4 — ADC fidelity and the decimation ablation (boxcar vs FIR vs
/// pick-every-Nth) on tones swept across the output Nyquist.
pub fn e4() {
    header("e4", "ADC & decimation fidelity (800 kS/s → 50 kS/s)");
    use davide_core::power::PowerTrace;
    use davide_core::time::SimTime;
    use davide_telemetry::adc::SarAdc;

    let adc = SarAdc::am335x_power_channel();
    println!(
        "AM335x SAR ADC: {} bits, {} kS/s, LSB {:.2} W on 0–4 kW, ideal SNR {:.1} dB",
        adc.bits,
        adc.sample_rate / 1e3,
        adc.lsb(),
        adc.ideal_snr_db()
    );

    let rate = 800e3;
    let n = 320_000;
    let make_tone = |f: f64| {
        PowerTrace::from_fn(SimTime::ZERO, 1.0 / rate, n, |t| {
            1000.0 + 100.0 * (2.0 * std::f64::consts::PI * f * t).sin()
        })
    };
    let fir = design_lowpass_fir(511, 23_000.0 / rate);
    println!(
        "\n{:>10} {:>12} | {:>12} {:>12} {:>12}",
        "tone", "folds to", "pick (alias)", "boxcar (HW)", "FIR-511"
    );
    for f in [5_000.0, 20_000.0, 27_000.0, 60_000.0, 155_000.0] {
        let tr = make_tone(f);
        // Where the tone lands after decimation to 50 kS/s.
        let fs_out = 50_000.0;
        let mut alias = f % fs_out;
        if alias > fs_out / 2.0 {
            alias = fs_out - alias;
        }
        let a_pick = tone_amplitude(&pick_decimate(&tr, 16), alias);
        let a_box = tone_amplitude(&boxcar_decimate(&tr, 16), alias);
        let a_fir = tone_amplitude(&fir_decimate(&tr, &fir, 16), alias);
        println!(
            "{:>8.0}Hz {:>10.0}Hz | {:>10.1} W {:>10.1} W {:>10.1} W",
            f, alias, a_pick, a_box, a_fir
        );
    }
    println!("\n(100 W input tones; in-band tones must survive, out-of-band must die)");
    println!("boxcar = what the BBB hardware averaging implements; FIR = textbook ablation");
}

/// E5 — time-sync residuals and cross-node trace alignment.
pub fn e5() {
    header("e5", "PTP vs NTP synchronisation");
    println!(
        "{:<30} {:>12} {:>12} {:>12} {:>16}",
        "protocol", "mean |off|", "rms", "worst", "x-node misalign"
    );
    for proto in [
        SyncProtocol::ntp(),
        SyncProtocol::ptp_sw(),
        SyncProtocol::ptp_hw(),
    ] {
        let s = run_sync_sim(proto, 600.0, 42);
        let mis = cross_node_misalignment(proto, 600.0, 42);
        println!(
            "{:<30} {:>10.2e} s {:>10.2e} s {:>10.2e} s {:>14.2e} s",
            proto.name, s.mean_abs_s, s.rms_s, s.max_abs_s, mis
        );
    }
    println!("\n50 kS/s sample period is 20 µs: only hardware PTP aligns cross-node");
    println!("power traces below one sample (paper: EG supports PTP in hardware).");
}

/// E6 — MQTT fan-out: one gateway stream to N agents.
pub fn e6() {
    header("e6", "MQTT M2M fan-out scaling");
    println!(
        "{:>12} {:>12} {:>14} {:>14} {:>10}",
        "subscribers", "frames in", "deliveries", "wall time", "Mmsg/s"
    );
    for subs in [1usize, 4, 16, 64] {
        let broker = Broker::default();
        let mut agents: Vec<_> = (0..subs)
            .map(|i| {
                let mut c = broker.connect(format!("agent{i}"));
                c.subscribe(&channel_filter("node"), QoS::AtMostOnce)
                    .unwrap();
                c
            })
            .collect();
        let mut eg = EnergyGateway::connect(&broker, 0, 9);
        let mut gen = Rng::seed_from(5);
        let truth = WorkloadWaveform::hpc_job(1700.0, 0.5).render(800_000.0, 1.0, &mut gen);
        let t = Instant::now();
        let frames = eg.acquire_and_publish("node", &truth, 0.0);
        let dt = t.elapsed().as_secs_f64();
        let delivered: usize = agents.iter_mut().map(|a| a.drain().len()).sum();
        println!(
            "{:>12} {:>12} {:>14} {:>12.1}ms {:>10.2}",
            subs,
            frames,
            delivered,
            dt * 1e3,
            delivered as f64 / dt / 1e6
        );
        assert_eq!(delivered, frames * subs);
    }
    println!("\none 50 kS/s node stream (100 frames/s of 500 samples) fans out to");
    println!("64 agents with zero loss — the M2M property §III-A1 asks of the EG.");
}

/// Helper for E3-style single-number summaries used in tests.
pub fn eg_vs_ipmi_error_ratio(seed: u64) -> f64 {
    let mut rng = Rng::seed_from(seed);
    let truth = WorkloadWaveform::gpu_burst(1700.0).render(800_000.0, 2.0, &mut rng.fork());
    let chains = all_chains(&mut rng.fork());
    let eg = chains[0].measured_energy(&truth, &mut rng.fork());
    let ipmi = chains[4].measured_energy(&truth, &mut rng.fork());
    let t = truth.energy();
    energy_error_pct(ipmi, t) / energy_error_pct(eg, t).max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eg_beats_ipmi_by_a_wide_margin() {
        assert!(eg_vs_ipmi_error_ratio(7) > 3.0);
    }
}
