//! E26 — tiered, Gorilla-compressed TsDb: months of E25-rate history
//! in bounded memory, with bit-exact round-trips and ≥100 M samples/s
//! range scans (see DESIGN.md §10 "Tiered storage engine").
//!
//! Four gates:
//!
//! 1. **Compression** — an idle (flat-rail) E25-shaped corpus (the
//!    same ADC-quantise → ×16 boxcar → `f32` frame pipeline, tone and
//!    noise at zero) must compress ≥10× (≥5× in smoke mode). The
//!    *live* E25 replay ratio is reported too and gated ≥3× — a 50 Hz
//!    tone plus gateway noise at `f32` resolution carries ~13 bits/pt
//!    of real entropy, so 10× is information-theoretically out of
//!    reach for it and flat rails are where the 10× claim lives.
//! 2. **Bit-exactness** — an N× replay through a tiered store answers
//!    full-history range queries bit-identically to an untiered store
//!    holding every point in its hot ring.
//! 3. **Scan throughput** — the block-skipping tiered scan must decode
//!    ≥100 M samples/s (single thread) over a compressed noisy-tone
//!    corpus (gated in full mode; reported in smoke).
//! 4. **Retention accounting** — nothing is silently lost: hot +
//!    compressed + disk points equal every sample stored, and the
//!    eviction counter stays zero while budgets hold.

use super::controlplane::SMOKE_ENV;
use crate::header;
use davide_telemetry::acquisition::{AcquisitionConfig, AcquisitionRig, DspMode};
use davide_telemetry::tsdb::{Resolution, TsDb};
use davide_telemetry::{DiskTierConfig, SeriesRead, TieringConfig, TsDbConfig};
use std::time::Instant;

fn smoke() -> bool {
    std::env::var_os(SMOKE_ENV).is_some()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("davide-e26-{}-{}", std::process::id(), tag));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// The AM335x power-channel LSB after calibration to the 0–4000 W
/// range: the quantum every stored sample is built from.
const LSB_W: f64 = 4000.0 / 4095.0;

/// One decimated idle-rail sample: 16 ADC codes of a flat rail,
/// hardware-averaged — exactly the arithmetic of the E25 frame
/// pipeline with tone and noise at zero.
fn idle_sample(base_w: f64) -> f32 {
    let code = (base_w / LSB_W).round().clamp(0.0, 4095.0) * LSB_W;
    ((code * 16.0) / 16.0) as f32
}

/// Gate 1: idle-corpus compression through the tiered store itself.
fn compression_gate() -> f64 {
    let (channels, frames) = if smoke() { (2usize, 60usize) } else { (8, 400) };
    let frame_len = 500usize;
    let dt = 2e-5f64;
    let bases = [1700.0, 300.0, 300.0, 350.0, 380.0, 400.0, 410.0, 100.0];

    let mut db = TsDb::with_config(TsDbConfig {
        raw_capacity: 4096,
        rollup_capacity: 64,
        tiering: Some(TieringConfig {
            seal_block: 1024,
            hot_retain: Some(128),
            ..TieringConfig::default()
        }),
        ..TsDbConfig::default()
    })
    .expect("mem-only tiering is infallible");

    for ch in 0..channels {
        let id = db.resolve(&format!("node00/power/ch{ch}"));
        let v = idle_sample(bases[ch % bases.len()]);
        let frame: Vec<f32> = vec![v; frame_len];
        for f in 0..frames {
            let t0 = 10.0 + f as f64 * (frame_len as f64 * dt) + 3.7e-7;
            db.append_frame_id(id, t0, dt, &frame);
            db.compact();
        }
    }
    db.compact();
    let st = db.tier_stats();
    let ratio = st.compression_ratio();
    println!(
        "idle corpus: {} series × {} pts, sealed {} pts into {} blocks ({} B) → {:.1}× vs 12 B/pt",
        channels,
        frames * frame_len,
        st.compressed_points,
        st.compressed_blocks,
        st.compressed_bytes,
        ratio
    );
    let floor = if smoke() { 5.0 } else { 10.0 };
    assert!(
        ratio >= floor,
        "idle-rail compression {ratio:.1}× under the {floor}× gate"
    );
    ratio
}

/// Gates 2 & 4: N× E25 replay, tiered vs untiered, bit for bit.
fn replay_gates() {
    let n_replays = 2usize;
    let base = if smoke() {
        AcquisitionConfig {
            nodes: 3,
            duration_s: 0.05,
            ..AcquisitionConfig::full_rate()
        }
    } else {
        AcquisitionConfig {
            nodes: 9,
            duration_s: 0.5,
            ..AcquisitionConfig::full_rate()
        }
    };
    let disk_dir = temp_dir("replay");
    let tiered_cfg = AcquisitionConfig {
        tiering: Some(TieringConfig {
            seal_block: 1024,
            hot_retain: Some(512),
            // A small *per-shard* in-memory budget so the run
            // exercises all three tiers: blocks demote to per-shard
            // segment files.
            mem_budget_bytes: 16 << 10,
            disk: Some(DiskTierConfig::new(&disk_dir)),
        }),
        ..base.clone()
    };
    // The untiered reference holds the whole replay in its hot rings.
    let points_per_series = (base.rounds() * n_replays * base.frame_len()) + 16;
    let untiered_cfg = AcquisitionConfig {
        raw_capacity: points_per_series,
        ..base
    };

    let mut tiered = AcquisitionRig::new(tiered_cfg, DspMode::Blocked);
    let mut reference = AcquisitionRig::new(untiered_cfg, DspMode::Blocked);
    let t = Instant::now();
    for _ in 0..n_replays {
        tiered.run();
    }
    let tiered_wall = t.elapsed().as_secs_f64();
    for _ in 0..n_replays {
        reference.run();
    }
    tiered.db_mut().compact();

    let st = tiered.db().tier_stats();
    let stored = st.hot_points + st.compressed_points + st.disk_points;
    println!(
        "\n{n_replays}× replay ({:.1} M raw samples, {:.2} s wall): \
         hot {} | mem {} pts / {} B | disk {} pts / {} B in {} segments",
        (tiered.config().raw_samples() * n_replays as u64) as f64 / 1e6,
        tiered_wall,
        st.hot_points,
        st.compressed_points,
        st.compressed_bytes,
        st.disk_points,
        st.disk_bytes,
        st.disk_segments,
    );
    let live_ratio = st.compression_ratio();
    println!(
        "live replay compression: {live_ratio:.1}× (tone+noise entropy bounds this; \
         the 10× gate lives on idle rails)"
    );
    assert!(
        live_ratio >= 3.0,
        "live E25 replay compression {live_ratio:.1}× under the 3× floor"
    );
    assert_eq!(st.evicted_points, 0, "budgets must not have evicted");
    assert!(
        st.disk_points > 0,
        "the per-shard memory budget must push blocks to the disk tier"
    );

    // Bit-exact differential: every series, full history, through the
    // unified SeriesRead surface both stores serve.
    let keys = tiered.db().series_names();
    assert_eq!(keys, reference.db().series_names());
    let mut compared = 0u64;
    for key in &keys {
        let a = tiered.db().series_range(key, Resolution::Raw, 0.0, 1e18);
        let b = reference.db().series_range(key, Resolution::Raw, 0.0, 1e18);
        assert!(!a.coverage.evicted, "{key}: tiered store lost history");
        assert_eq!(a.points.len(), b.points.len(), "{key}");
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.t.to_bits(), y.t.to_bits(), "{key}");
            assert_eq!(x.v.to_bits(), y.v.to_bits(), "{key}");
        }
        compared += a.points.len() as u64;
        let ma = tiered.db().series_mean(key, Resolution::Raw, 0.0, 1e18).0;
        let mb = reference
            .db()
            .series_mean(key, Resolution::Raw, 0.0, 1e18)
            .0;
        assert_eq!(ma.map(f64::to_bits), mb.map(f64::to_bits), "{key}");
    }
    assert_eq!(
        compared, stored,
        "differential covered every retained point"
    );
    println!(
        "bit-exact: {} series × full history ({compared} pts) identical to the \
         uncompressed reference (hot {} / mem {} / disk {})",
        keys.len(),
        st.hot_points,
        st.compressed_points,
        st.disk_points
    );
    let _ = std::fs::remove_dir_all(&disk_dir);
}

/// Gate 3: single-thread range-scan throughput over compressed
/// noisy-tone blocks (the worst-entropy corpus the codec sees).
fn scan_gate() {
    let n = if smoke() { 400_000usize } else { 2_000_000 };
    let frame_len = 500usize;
    let dt = 2e-5f64;
    let mut db = TsDb::with_config(TsDbConfig {
        raw_capacity: 4096,
        rollup_capacity: 64,
        tiering: Some(TieringConfig {
            seal_block: 1024,
            hot_retain: Some(128),
            ..TieringConfig::default()
        }),
        ..TsDbConfig::default()
    })
    .expect("mem-only tiering is infallible");
    let id = db.resolve("node00/power/node");

    // Tone + noise, quantised like the E25 frame pipeline.
    let mut state = 0x00DA_71DEu64;
    let mut frame = vec![0.0f32; frame_len];
    for f in 0..n / frame_len {
        for (k, slot) in frame.iter_mut().enumerate() {
            let mut acc = 0.0;
            for r in 0..16 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let noise = (state as f64 / u64::MAX as f64 - 0.5) * 34.0;
                let t = ((f * frame_len + k) * 16 + r) as f64 / 800_000.0;
                let w = 1700.0 + 85.0 * (2.0 * std::f64::consts::PI * 50.0 * t).sin() + noise;
                acc += (w / LSB_W).round().clamp(0.0, 4095.0) * LSB_W;
            }
            *slot = (acc / 16.0) as f32;
        }
        db.append_frame_id(id, 10.0 + (f * frame_len) as f64 * dt, dt, &frame);
        db.compact();
    }
    let st = db.tier_stats();

    // Warm once, then time whole-history scans (fold, no Vec).
    let scan_once = |db: &TsDb| -> (u64, f64) {
        db.scan_id(id, 0.0, 1e18)
            .fold_points((0u64, 0.0f64), |(cnt, sum), _t, v| (cnt + 1, sum + v))
    };
    let (warm_cnt, _) = scan_once(&db);
    assert_eq!(warm_cnt as usize, n);
    let reps = if smoke() { 10 } else { 20 };
    let t = Instant::now();
    let mut total = 0u64;
    for _ in 0..reps {
        total += scan_once(&db).0;
    }
    let el = t.elapsed().as_secs_f64();
    let rate = total as f64 / el / 1e6;
    println!(
        "\nrange scan: {} pts ({} compressed blocks, {:.1}× ratio), {reps} full-history \
         scans in {:.3} s → {rate:.0} M samples/s single-thread",
        n,
        st.compressed_blocks,
        st.compression_ratio(),
        el
    );
    if smoke() {
        println!("(smoke mode: throughput reported, not gated)");
    } else {
        assert!(
            rate >= 100.0,
            "tiered range scan {rate:.0} M samples/s under the 100 M gate"
        );
    }
}

/// E26 — tiered storage engine.
pub fn e26() {
    header(
        "e26",
        "Tiered Gorilla-compressed TsDb (compression, bit-exactness, scan rate)",
    );
    let idle_ratio = compression_gate();
    replay_gates();
    scan_gate();
    println!(
        "\ngates: idle compression {:.1}× (≥{}×) ✓, live ≥3× ✓, bit-exact ✓, \
         retention accounted ✓{}",
        idle_ratio,
        if smoke() { 5 } else { 10 },
        if smoke() {
            ", scan rate reported"
        } else {
            ", scan ≥100 M/s ✓"
        }
    );
}
