//! E24 — the monitoring plane measured by itself: the E22 closed-loop
//! workload replayed with the `davide-obs` stack armed. Every pipeline
//! stage (broker publish → session deliver → ingest append → predictor
//! update → scheduler tick → DVFS publish) stamps the causal tracer,
//! the control loop's instruments land in the shared registry, and the
//! registry itself is republished over the replay broker on the
//! reserved `davide/obs/#` namespace and re-ingested like node power.
//!
//! The report is the observability story of the PR: the control-loop
//! latency distribution (frame age at actuation and end-to-end trace
//! latency), per-stage frame-loss accounting under injected broker
//! loss, and the self-telemetry round trip.

use crate::header;
use davide_obs::trace::STAGE_NAMES;
use davide_sched::controlplane::{replay_instrumented, ControlMode, ReplayConfig, ReplayObs};
use davide_sched::CapSchedule;

use super::controlplane::SMOKE_ENV;

fn smoke() -> bool {
    std::env::var_os(SMOKE_ENV).is_some()
}

/// E24 — instrumented E22 replay: latency distributions, per-stage
/// loss, self-telemetry round trip.
pub fn e24() {
    header("e24", "Self-instrumented control loop (obs stack)");
    let mut cfg = ReplayConfig::e22(ControlMode::ClosedLoop, 16, CapSchedule::constant(22_000.0));
    if smoke() {
        cfg.n_jobs = 50;
        cfg.n_history = 400;
    }
    // 5 % in-transit loss on the gateway → broker hop: these frames are
    // stamped at publish and then vanish, so they must surface in the
    // tracer's per-stage loss counters rather than disappear silently.
    cfg.p_frame_drop = 0.05;
    println!(
        "closed loop, 16 nodes, cap 22 kW, 5 % injected broker loss{}",
        if smoke() { "  [smoke]" } else { "" }
    );

    let mut obs = ReplayObs::new();
    let report = replay_instrumented(&cfg, Some(&mut obs));
    let reg = &obs.hub.registry;
    let counter = |n: &str| reg.find_counter(n).map(|c| c.get()).unwrap_or(0);
    let hist = |n: &str| reg.find_histogram(n).map(|h| h.snapshot());

    println!(
        "\njobs {} | makespan {:.1} h | frames ingested {} | samples stored {}",
        report.jobs_completed,
        report.makespan_s / 3600.0,
        counter("ctl_frames_total"),
        counter("ctl_samples_stored_total"),
    );

    // ── Control-loop latency. ──
    let age = hist("ctl_frame_age_ns").expect("frame-age histogram registered");
    let e2e = hist("obs_trace_e2e_ns").expect("e2e histogram registered");
    println!("\ncontrol-loop latency (per ingested frame):");
    println!(
        "  {:<26} {:>8} {:>9} {:>9} {:>9}",
        "distribution", "n", "p50", "p99", "max"
    );
    for (name, s) in [("frame age at actuation", &age), ("trace end-to-end", &e2e)] {
        println!(
            "  {:<26} {:>8} {:>8.1}s {:>8.1}s {:>8.1}s",
            name,
            s.count,
            s.quantile(0.50) as f64 / 1e9,
            s.quantile(0.99) as f64 / 1e9,
            s.max as f64 / 1e9,
        );
    }

    // ── Per-stage trace accounting. ──
    let completed = counter("obs_trace_completed_total");
    println!("\nper-stage frame accounting (completed {completed}):");
    for name in STAGE_NAMES {
        let lost = counter(&format!("obs_trace_lost_total{{last=\"{name}\"}}"));
        if lost > 0 {
            println!("  lost after {name:<16} {lost:>8}");
        }
    }
    let lost_at_publish = counter("obs_trace_lost_total{last=\"broker_publish\"}");

    // ── Predictor and actuator instruments. ──
    if let Some(err) = hist("ctl_predictor_abs_err_w") {
        println!(
            "\npredictor |error| at completion: n={} p50={} W p99={} W",
            err.count,
            err.quantile(0.50),
            err.quantile(0.99)
        );
    }
    println!(
        "ladder: {} observations, {} down, {} up; overcap excursions p99 {} W",
        counter("cap_observations_total"),
        counter("cap_steps_down_total"),
        counter("cap_steps_up_total"),
        hist("cap_overcap_w").map(|s| s.quantile(0.99)).unwrap_or(0),
    );

    // ── Self-telemetry round trip. ──
    println!(
        "\nself-telemetry: {} obs samples round-tripped over MQTT into {} series",
        obs.self_samples,
        davide_telemetry::SeriesRead::series_names(&obs.self_db).len(),
    );

    assert!(age.count > 0, "latency distribution must be measured");
    assert!(completed > 0, "frames must complete the causal chain");
    assert!(
        lost_at_publish > 0,
        "injected broker loss must surface in per-stage counters"
    );
    assert!(
        obs.self_samples > 0,
        "the registry must round-trip through the telemetry pipeline"
    );
    println!("\nthe loop watches itself with its own plumbing: latency is a measured");
    println!("distribution, loss is attributed to a pipeline stage, and the metrics");
    println!("travel the same EG → MQTT → TsDb path as node power (Fig. 4, inward).");
}
