//! Experiment implementations, grouped by the paper section they
//! reproduce.

pub mod acquisition;
pub mod api;
pub mod applications;
pub mod controlplane;
pub mod fanout;
pub mod federation;
pub mod ingest;
pub mod management;
pub mod monitoring;
pub mod obs;
pub mod storage;
pub mod system;
