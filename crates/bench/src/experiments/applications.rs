//! Application co-design experiments (§IV): E14 QE/FFT/NVLink, E15
//! NEMO/stencil, E16 SPECFEM3D/SEM, E17 BQCD/even-odd CG.

use crate::header;
use davide_apps::cg::conjugate_gradient;
use davide_apps::fft::{fft3, fft3_flops, Field3};
use davide_apps::lattice::{EvenOddOp, Lattice4, LatticeOp};
use davide_apps::roofline::Roofline;
use davide_apps::sem::SemMesh;
use davide_apps::stencil::{halo_bytes_per_sweep, jacobi_sweep, sweep_flops, OceanGrid};
use davide_apps::workload::AppModel;
use davide_apps::C64;
use davide_core::interconnect::{davide_node_link, NodePath};
use davide_core::units::Bytes;
use std::time::Instant;

/// E14 — QE proxy: 3-D FFT scaling and the NVLink vs PCIe data-movement
/// advantage that lets FFTs stay localised in GPU pairs.
pub fn e14() {
    header("e14", "Quantum ESPRESSO proxy: FFT + NVLink");
    println!("3-D FFT (forward+inverse), rayon-parallel pencils:");
    println!(
        "{:>8} {:>12} {:>14} {:>12}",
        "grid", "wall time", "sustained", "flops"
    );
    for n in [16usize, 32, 64] {
        let mut field = Field3::from_fn(n, |x, y, z| {
            C64::new((x * 3 + y) as f64 * 0.01, z as f64 * 0.02)
        });
        let t = Instant::now();
        fft3(&mut field, false);
        fft3(&mut field, true);
        let dt = t.elapsed().as_secs_f64();
        let flops = 2.0 * fft3_flops(n);
        println!(
            "{:>7}³ {:>10.2} ms {:>11.2} GF/s {:>12.2e}",
            n,
            dt * 1e3,
            flops / dt / 1e9,
            flops
        );
    }

    // NVLink vs PCIe for the FFT transpose exchange between GPU pairs.
    println!("\nGPU-pair exchange for a 64³ complex field (4 MiB halves):");
    let vol = Bytes((64usize.pow(3) * 16 / 2) as f64);
    let nvlink = davide_node_link(NodePath::GpuToGpuSameSocket);
    let pcie = davide_node_link(NodePath::CpuToGpuPcie);
    let t_nv = nvlink.transfer_time(vol).0;
    let t_pcie = pcie.transfer_time(vol).0;
    println!(
        "  NVLink gang (80 GB/s bidir): {:.1} µs/exchange",
        t_nv * 1e6
    );
    println!(
        "  PCIe gen3 ×16 staging:       {:.1} µs/exchange",
        t_pcie * 1e6
    );
    println!(
        "  NVLink advantage: {:.1}× — why §IV-A localises FFTs in GPU pairs",
        t_pcie / t_nv
    );
    // Strong scaling of the QE model with the comm model.
    let qe = AppModel::quantum_espresso();
    println!("\nQE iteration strong scaling (Amdahl + comm model):");
    for nodes in [1u32, 2, 4, 8, 16] {
        let comm = qe.comm_bytes_per_iteration() / 12.1e9 * (nodes as f64).log2().max(0.0);
        let s = qe.strong_scaling_speedup(nodes, comm);
        println!(
            "  {nodes:>3} nodes → speed-up {s:>5.2}×  efficiency {:>5.1} %",
            100.0 * s / nodes as f64
        );
    }
}

/// E15 — NEMO proxy: flat profile, memory-bound stencil, halo growth.
pub fn e15() {
    header("e15", "NEMO proxy: flat, memory-bound, halo-heavy");
    let nemo = AppModel::nemo();
    println!("routine histogram (paper: no routine above 15–20 %):");
    for p in &nemo.phases {
        let bar = "#".repeat((p.duration_frac * 100.0) as usize);
        println!(
            "  {:<18} {:>5.1} % {}",
            p.name,
            p.duration_frac * 100.0,
            bar
        );
    }
    println!(
        "largest routine: {:.1} % ✓",
        nemo.max_phase_fraction() * 100.0
    );

    // Real stencil sweep throughput and its roofline position.
    let grid = OceanGrid::from_fn(1024, 512, |x, y| ((x * 7 + y * 3) % 13) as f64);
    let t = Instant::now();
    let reps = 50;
    for _ in 0..reps {
        let _ = jacobi_sweep(&grid, 0.8);
    }
    let dt = t.elapsed().as_secs_f64() / reps as f64;
    let flops = sweep_flops(1024, 512);
    let gf = flops / dt / 1e9;
    let bytes = (1024 * 512 * 6 * 8) as f64;
    println!(
        "\nstencil sweep 1024×512: {:.2} ms → {:.2} GF/s, {:.1} GB/s effective",
        dt * 1e3,
        gf,
        bytes / dt / 1e9
    );
    let intensity = davide_apps::stencil::sweep_intensity();
    let p100 = Roofline::p100();
    println!(
        "arithmetic intensity {:.3} flops/byte → P100-attainable {:.0} GF/s of {:.0} GF/s peak ({:.1} %): memory-bound ✓",
        intensity,
        p100.attainable(intensity).0,
        p100.peak.0,
        100.0 * p100.attainable(intensity).0 / p100.peak.0
    );

    println!("\nhalo traffic per sweep (1024-wide rows, f64):");
    for ranks in [1usize, 2, 4, 8, 16, 32] {
        println!(
            "  {:>3} ranks → {:>8.1} kB/sweep",
            ranks,
            halo_bytes_per_sweep(1024, ranks) / 1e3
        );
    }
}

/// E16 — SPECFEM3D proxy: SEM solve cost vs work per rank.
pub fn e16() {
    header("e16", "SPECFEM3D proxy: spectral elements");
    println!(
        "{:>10} {:>8} {:>10} {:>12} {:>12} {:>10}",
        "elements", "degree", "DoFs", "CG iters", "wall time", "GF/s"
    );
    for (elems, degree) in [(64usize, 4usize), (256, 4), (256, 8), (1024, 4)] {
        let mesh = SemMesh::new(elems, degree, 0.4);
        // A localised "source" excitation (a seismic point source, not a
        // constant field — the constant is an eigenvector and trivialises CG).
        let b: Vec<f64> = (0..mesh.dofs())
            .map(|i| ((i * 131) % 17) as f64 - 8.0)
            .collect();
        let mut x = vec![0.0; mesh.dofs()];
        let t = Instant::now();
        let res = conjugate_gradient(&mesh, &b, &mut x, 1e-10, 20_000);
        let dt = t.elapsed().as_secs_f64();
        let flops = res.iterations as f64 * mesh.matvec_flops();
        println!(
            "{:>10} {:>8} {:>10} {:>12} {:>10.1} ms {:>10.2}",
            elems,
            degree,
            mesh.dofs(),
            res.iterations,
            dt * 1e3,
            flops / dt / 1e9
        );
        assert!(res.converged);
    }
    // Work-per-GPU argument of §IV-C: overlap hides messaging while the
    // per-rank element count is large.
    println!("\nwork/communication ratio vs elements per rank (boundary = 1 node):");
    for elems in [64usize, 256, 1024, 4096] {
        let mesh = SemMesh::new(elems, 4, 0.4);
        let compute = mesh.matvec_flops();
        let boundary_bytes = 8.0 * 2.0; // one shared DoF per side
        let ratio = compute / boundary_bytes;
        println!(
            "  {:>5} elements: {:>10.0} flops per boundary byte {}",
            elems,
            ratio,
            if elems >= 256 {
                "(overlap hides comm)"
            } else {
                ""
            }
        );
    }
    println!("\n§IV-C: \"performance is not affected by message passing overhead as");
    println!("long as you have sufficient amount of work per GPU\" — ratio grows linearly.");
}

/// E17 — BQCD proxy: even/odd preconditioning and P2P communication.
pub fn e17() {
    header("e17", "BQCD proxy: even/odd-preconditioned lattice CG");
    println!(
        "{:>10} {:>10} | {:>12} {:>12} | {:>12} {:>12}",
        "lattice", "sites", "full iters", "full ms", "e/o iters", "e/o ms"
    );
    for dims in [[4usize, 4, 4, 4], [6, 6, 6, 6], [8, 8, 8, 8], [8, 8, 8, 16]] {
        let d = [dims[0], dims[1], dims[2], dims[3]];
        let full = LatticeOp::new(Lattice4::new(d), 0.25);
        let vol = full.lattice.volume();
        let rhs: Vec<f64> = (0..vol).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();

        let mut xf = vec![0.0; vol];
        let t = Instant::now();
        let rf = conjugate_gradient(&full, &rhs, &mut xf, 1e-10, 100_000);
        let t_full = t.elapsed().as_secs_f64();

        let eo = EvenOddOp::new(LatticeOp::new(Lattice4::new(d), 0.25));
        let be = eo.reduce_rhs(&rhs);
        let mut xe = vec![0.0; vol / 2];
        let t = Instant::now();
        let re = conjugate_gradient(&eo, &be, &mut xe, 1e-10, 100_000);
        let t_eo = t.elapsed().as_secs_f64();

        println!(
            "{:>2}×{}×{}×{:<3} {:>8} | {:>12} {:>10.1}ms | {:>12} {:>10.1}ms",
            d[0],
            d[1],
            d[2],
            d[3],
            vol,
            rf.iterations,
            t_full * 1e3,
            re.iterations,
            t_eo * 1e3
        );
        assert!(rf.converged && re.converged);
    }
    println!("\neven/odd halves the system and cuts iterations — the standard LQCD");
    println!("preconditioning BQCD applies before its CG (§IV-D).");

    // P2P (NVLink) vs staged (PCIe through host) boundary exchange.
    let boundary = Bytes((8usize.pow(3) * 8 * 8) as f64); // one face, 8 dirs
    let nv = davide_node_link(NodePath::GpuToGpuSameSocket);
    let pcie = davide_node_link(NodePath::CpuToGpuPcie);
    let t_p2p = nv.transfer_time(boundary).0;
    let t_staged = 2.0 * pcie.transfer_time(boundary).0; // GPU→host→GPU
    println!(
        "\nboundary exchange ({:.0} kB): P2P NVLink {:.1} µs vs host-staged PCIe {:.1} µs ({:.1}×)",
        boundary.0 / 1e3,
        t_p2p * 1e6,
        t_staged * 1e6,
        t_staged / t_p2p
    );
    println!("QUDA's peer-to-peer \"removes MPI overhead … scaling within dense nodes");
    println!("nearly perfect\" (§IV-D) — the model shows where that headroom comes from.");
}
