//! E22 — the closed power-control loop of Fig. 4, end to end: gateway
//! frames over MQTT, online prediction, proactive admission, reactive
//! per-node DVFS. One job trace replayed through three loop
//! configurations under the same cap schedule.

use crate::header;
use davide_sched::controlplane::{replay, ControlMode, ControlPlaneReport, ReplayConfig};
use davide_sched::CapSchedule;

/// `--smoke` (or the env var it sets) shrinks e22 for CI.
pub const SMOKE_ENV: &str = "DAVIDE_EXPERIMENTS_SMOKE";

fn smoke() -> bool {
    std::env::var_os(SMOKE_ENV).is_some()
}

fn run_mode(mode: ControlMode, n_nodes: u32, cap: CapSchedule) -> ControlPlaneReport {
    let mut cfg = ReplayConfig::e22(mode, n_nodes, cap);
    if smoke() {
        cfg.n_jobs = 50;
        cfg.n_history = 400;
    }
    replay(&cfg)
}

/// E22 — open-loop vs reactive-only vs closed-loop on one trace.
pub fn e22() {
    header("e22", "Closed-loop power control plane (Fig. 4)");
    let n_nodes = 16;
    // Envelope ≈ 70 % of the all-nodes-hot draw: tight enough that the
    // admission decision matters, loose enough that the machine is
    // normally node-limited.
    let cap = CapSchedule::constant(22_000.0);
    println!(
        "nodes {n_nodes}, cap 22 kW, per-app plant drift ±12 % vs training history{}",
        if smoke() { "  [smoke]" } else { "" }
    );

    let reports: Vec<ControlPlaneReport> = [
        ControlMode::OpenLoop,
        ControlMode::ReactiveOnly,
        ControlMode::ClosedLoop,
    ]
    .into_iter()
    .map(|m| run_mode(m, n_nodes, cap.clone()))
    .collect();

    println!(
        "\n{:<14} {:>6} {:>10} {:>10} {:>11} {:>9} {:>7} {:>7} {:>9}",
        "mode", "jobs", "makespan", "ovrcap s", "ovrcap kWh", "MAPE %", "down", "up", "jobs/h"
    );
    for r in &reports {
        println!(
            "{:<14} {:>6} {:>9.1}h {:>10.0} {:>11.2} {:>9.2} {:>7} {:>7} {:>9.2}",
            r.mode.name(),
            r.jobs_completed,
            r.makespan_s / 3600.0,
            r.overcap_s,
            r.overcap_energy_j / 3.6e6,
            r.online_mape_pct,
            r.steps_down,
            r.steps_up,
            r.throughput_jobs_per_h,
        );
    }

    let open = &reports[0];
    let closed = &reports[2];
    assert!(
        closed.overcap_energy_j < open.overcap_energy_j,
        "closed loop must cut overcap energy: {:.0} J vs {:.0} J",
        closed.overcap_energy_j,
        open.overcap_energy_j
    );
    assert!(
        closed.throughput_jobs_per_h >= open.throughput_jobs_per_h,
        "closed loop must not pay in throughput: {:.3} vs {:.3} jobs/h",
        closed.throughput_jobs_per_h,
        open.throughput_jobs_per_h
    );
    let saved = 100.0 * (1.0 - closed.overcap_energy_j / open.overcap_energy_j.max(1e-9));
    println!("\nclosed loop cuts overcap energy by {saved:.1} % at equal-or-better");
    println!("throughput: the predictor learns the plant drift from telemetry while");
    println!("the ladder absorbs what admission could not foresee — the \"mix both\"");
    println!("strategy of §III-A2.");
}
