//! Experiment harness — regenerates every table/figure-level claim of
//! the paper (DESIGN.md §3, EXPERIMENTS.md).
//!
//! Usage:
//!   cargo run -p davide-bench --release --bin experiments          # all
//!   cargo run -p davide-bench --release --bin experiments e3 e11   # some
//!   cargo run -p davide-bench --release --bin experiments --list
//!   cargo run ... --bin experiments --smoke e22   # CI-sized variant

use davide_bench::registry;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--smoke") {
        args.remove(i);
        std::env::set_var(davide_bench::experiments::controlplane::SMOKE_ENV, "1");
    }
    let experiments = registry();

    if args.iter().any(|a| a == "--list") {
        for e in &experiments {
            println!("{:<5} {}", e.id, e.title);
        }
        return;
    }

    let selected: Vec<&str> = args.iter().map(String::as_str).collect();
    let mut ran = 0;
    for e in &experiments {
        if selected.is_empty() || selected.contains(&e.id) {
            (e.run)();
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("no experiment matched {selected:?}; try --list");
        std::process::exit(1);
    }
    println!("\n{ran} experiment(s) completed.");
}
