//! CI observability smoke: run a short instrumented closed-loop replay,
//! render the metrics exposition, and fail if the obs stack produced an
//! empty registry, a non-finite sample, or a dead latency histogram.
//! Then run one small federated scenario twice — tracing disarmed and
//! armed — and fail unless the digests are bit-identical, grant spans
//! completed on every rack, and the tracing overhead stays inside the
//! E29 smoke gate.
//!
//! Exit code 0 only when every check holds.

use davide_sched::controlplane::{replay_instrumented, ControlMode, ReplayConfig, ReplayObs};
use davide_sched::CapSchedule;
use davide_sim::federation::{run_federated_traced, FedScenario};
use davide_telemetry::TsDbConfig;

fn main() {
    let mut cfg = ReplayConfig::e22(ControlMode::ClosedLoop, 8, CapSchedule::constant(11_000.0));
    cfg.n_jobs = 25;
    cfg.n_history = 400;
    cfg.p_frame_drop = 0.02;

    let mut obs = ReplayObs::new();
    let report = replay_instrumented(&cfg, Some(&mut obs));
    let reg = &obs.hub.registry;
    let mut failed = false;

    // Every exported sample must be finite: a NaN gauge or histogram
    // quantile means an instrument was registered but never became
    // meaningful, and it would poison downstream dashboards silently.
    let mut samples = 0usize;
    reg.visit_samples(|name, v| {
        samples += 1;
        if !v.is_finite() {
            println!("non-finite series: {name} = {v}");
            failed = true;
        }
    });
    if samples == 0 {
        println!("empty registry: no series exported");
        failed = true;
    }

    // The load-bearing families must exist and have fired.
    for family in [
        "mqtt_published_total",
        "mqtt_delivered_total",
        "ctl_frames_total",
        "ctl_ticks_total",
        "obs_trace_completed_total",
    ] {
        match reg.find_counter(family).map(|c| c.get()) {
            Some(n) if n > 0 => {}
            got => {
                println!("dead counter {family}: {got:?}");
                failed = true;
            }
        }
    }
    let age = reg.find_histogram("ctl_frame_age_ns").map(|h| h.snapshot());
    match &age {
        Some(s) if s.count > 0 => {}
        _ => {
            println!("control-loop latency histogram empty or missing");
            failed = true;
        }
    }
    if obs.self_samples == 0 {
        println!("self-telemetry loop published nothing");
        failed = true;
    }

    let text = reg.render_text();
    if text.is_empty() || !text.contains("# TYPE") {
        println!("exposition render is empty or malformed");
        failed = true;
    }

    println!(
        "obs-smoke: {} jobs, {} series, {} exposition bytes, {} obs samples round-tripped",
        report.jobs_completed,
        samples,
        text.len(),
        obs.self_samples
    );
    if let Some(s) = age {
        println!(
            "frame age: n={} p50={:.1}s p99={:.1}s",
            s.count,
            s.quantile(0.50) as f64 / 1e9,
            s.quantile(0.99) as f64 / 1e9
        );
    }
    // ── Federated grant tracing: digest stability + overhead. ──
    let mut fs = FedScenario::base("obs_smoke_fed", 41, 2);
    fs.rack.n_jobs = 6;
    fs.rack.n_history = 160;
    let mut base_s = f64::INFINITY;
    let mut traced_s = f64::INFINITY;
    let mut base_digest = 0u64;
    let mut traced = None;
    for _ in 0..2 {
        let t = std::time::Instant::now();
        let out = run_federated_traced(&fs, TsDbConfig::default(), false);
        base_s = base_s.min(t.elapsed().as_secs_f64());
        base_digest = out.digest();
        let t = std::time::Instant::now();
        let out = run_federated_traced(&fs, TsDbConfig::default(), true);
        traced_s = traced_s.min(t.elapsed().as_secs_f64());
        traced = Some(out);
    }
    let out = traced.expect("two iterations ran");
    if out.digest() != base_digest {
        println!(
            "tracing perturbed the federated digest: {:#018x} vs {:#018x}",
            out.digest(),
            base_digest
        );
        failed = true;
    }
    for r in &out.racks {
        let completed = r
            .obs
            .registry
            .find_counter("obs_grant_completed_total")
            .map(|c| c.get())
            .unwrap_or(0);
        if completed == 0 {
            println!("{}: no grant span completed", r.scenario);
            failed = true;
        }
        if r.obs.flight.pushed() == 0 {
            println!("{}: flight recorder saw nothing", r.scenario);
            failed = true;
        }
    }
    // The same ≤5% + absolute-slack shape as E29's gate; the absolute
    // term dominates at this tiny scenario size and damps CI noise.
    if traced_s > base_s * 1.05 + 0.25 {
        println!("tracing overhead over budget: {traced_s:.3}s vs {base_s:.3}s");
        failed = true;
    }
    println!(
        "fed trace: digest {:#018x}, untraced {base_s:.3}s traced {traced_s:.3}s",
        out.digest()
    );

    if failed {
        println!("obs-smoke: FAIL");
        std::process::exit(1);
    }
    println!("obs-smoke: OK");
}
