//! CI observability smoke: run a short instrumented closed-loop replay,
//! render the metrics exposition, and fail if the obs stack produced an
//! empty registry, a non-finite sample, or a dead latency histogram.
//!
//! Exit code 0 only when every check holds.

use davide_sched::controlplane::{replay_instrumented, ControlMode, ReplayConfig, ReplayObs};
use davide_sched::CapSchedule;

fn main() {
    let mut cfg = ReplayConfig::e22(ControlMode::ClosedLoop, 8, CapSchedule::constant(11_000.0));
    cfg.n_jobs = 25;
    cfg.n_history = 400;
    cfg.p_frame_drop = 0.02;

    let mut obs = ReplayObs::new();
    let report = replay_instrumented(&cfg, Some(&mut obs));
    let reg = &obs.hub.registry;
    let mut failed = false;

    // Every exported sample must be finite: a NaN gauge or histogram
    // quantile means an instrument was registered but never became
    // meaningful, and it would poison downstream dashboards silently.
    let mut samples = 0usize;
    reg.visit_samples(|name, v| {
        samples += 1;
        if !v.is_finite() {
            println!("non-finite series: {name} = {v}");
            failed = true;
        }
    });
    if samples == 0 {
        println!("empty registry: no series exported");
        failed = true;
    }

    // The load-bearing families must exist and have fired.
    for family in [
        "mqtt_published_total",
        "mqtt_delivered_total",
        "ctl_frames_total",
        "ctl_ticks_total",
        "obs_trace_completed_total",
    ] {
        match reg.find_counter(family).map(|c| c.get()) {
            Some(n) if n > 0 => {}
            got => {
                println!("dead counter {family}: {got:?}");
                failed = true;
            }
        }
    }
    let age = reg.find_histogram("ctl_frame_age_ns").map(|h| h.snapshot());
    match &age {
        Some(s) if s.count > 0 => {}
        _ => {
            println!("control-loop latency histogram empty or missing");
            failed = true;
        }
    }
    if obs.self_samples == 0 {
        println!("self-telemetry loop published nothing");
        failed = true;
    }

    let text = reg.render_text();
    if text.is_empty() || !text.contains("# TYPE") {
        println!("exposition render is empty or malformed");
        failed = true;
    }

    println!(
        "obs-smoke: {} jobs, {} series, {} exposition bytes, {} obs samples round-tripped",
        report.jobs_completed,
        samples,
        text.len(),
        obs.self_samples
    );
    if let Some(s) = age {
        println!(
            "frame age: n={} p50={:.1}s p99={:.1}s",
            s.count,
            s.quantile(0.50) as f64 / 1e9,
            s.quantile(0.99) as f64 / 1e9
        );
    }
    if failed {
        println!("obs-smoke: FAIL");
        std::process::exit(1);
    }
    println!("obs-smoke: OK");
}
