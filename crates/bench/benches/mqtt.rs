//! Criterion benches for the MQTT substrate (experiment E6): codec
//! round-trips, topic matching, broker publish fan-out.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use davide_mqtt::codec::{decode, encode, Packet, QoS};
use davide_mqtt::topic::filter_matches;
use davide_mqtt::Broker;
use std::hint::black_box;

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_codec");
    let packet = Packet::Publish {
        topic: "davide/node07/power/gpu2".into(),
        payload: Bytes::from(vec![0u8; 2024]), // one 500-sample frame
        qos: QoS::AtMostOnce,
        retain: false,
        dup: false,
        packet_id: None,
    };
    g.throughput(Throughput::Bytes(2048));
    g.bench_function("encode_publish_2k", |b| {
        b.iter(|| {
            let mut buf = bytes::BytesMut::with_capacity(2100);
            encode(black_box(&packet), &mut buf);
            buf
        });
    });
    let mut encoded = bytes::BytesMut::new();
    encode(&packet, &mut encoded);
    g.bench_function("decode_publish_2k", |b| {
        b.iter(|| {
            let mut buf = encoded.clone();
            decode(black_box(&mut buf)).unwrap().unwrap()
        });
    });
    g.finish();
}

fn bench_topic_matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_topics");
    let topic = "davide/node17/power/gpu3";
    for filter in ["davide/node17/power/gpu3", "davide/+/power/#", "#"] {
        g.bench_with_input(BenchmarkId::new("filter_match", filter), &filter, |b, f| {
            b.iter(|| filter_matches(black_box(f), black_box(topic)));
        });
    }
    g.finish();
}

fn bench_broker_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_broker");
    g.sample_size(30);
    for &subs in &[1usize, 8, 64] {
        g.throughput(Throughput::Elements(subs as u64));
        g.bench_with_input(
            BenchmarkId::new("publish_fanout", subs),
            &subs,
            |b, &subs| {
                let broker = Broker::default();
                let mut agents: Vec<_> = (0..subs)
                    .map(|i| {
                        let mut cl = broker.connect(format!("a{i}"));
                        cl.subscribe("davide/+/power/#", QoS::AtMostOnce).unwrap();
                        cl
                    })
                    .collect();
                let publ = broker.connect("gw");
                let payload = Bytes::from(vec![0u8; 256]);
                b.iter(|| {
                    publ.publish(
                        black_box("davide/node00/power/node"),
                        payload.clone(),
                        QoS::AtMostOnce,
                        false,
                    )
                    .unwrap();
                    // Drain to keep queues from filling.
                    for a in &mut agents {
                        while a.try_recv().is_some() {}
                    }
                });
            },
        );
    }
    g.finish();
}

/// E30: the sharded hot path against the single-lock layout, per
/// publish, on the three traffic shapes that stress different parts of
/// the shard design — exact matches (one shard touched), wildcard-heavy
/// populations (subscriptions registered on every shard), and retained
/// replay (the cross-shard merge in `subscribe`).
fn bench_sharded_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("e30_fanout");
    g.sample_size(30);
    let payload = Bytes::from(vec![0u8; 64]);

    // Exact-match: 256 subscribers, each pinned to one of 64 topics.
    for &shards in &[1usize, 8] {
        g.bench_with_input(BenchmarkId::new("exact_match", shards), &shards, |b, &n| {
            let broker = Broker::with_shards(1 << 16, n);
            let mut agents: Vec<_> = (0..256)
                .map(|i| {
                    let mut cl = broker.connect(format!("a{i}"));
                    cl.subscribe(
                        &format!("davide/node{:02}/power/node", i % 64),
                        QoS::AtMostOnce,
                    )
                    .unwrap();
                    cl
                })
                .collect();
            let publ = broker.connect("gw");
            let mut k = 0usize;
            b.iter(|| {
                k = (k + 1) % 64;
                publ.publish(
                    &format!("davide/node{k:02}/power/node"),
                    payload.clone(),
                    QoS::AtMostOnce,
                    false,
                )
                .unwrap();
                for a in &mut agents {
                    while a.try_recv().is_some() {}
                }
            });
        });
    }

    // Wildcard-heavy: every subscriber uses `+`/`#`, so each one is
    // registered on all shards and still must match exactly once.
    for &shards in &[1usize, 8] {
        g.bench_with_input(
            BenchmarkId::new("wildcard_heavy", shards),
            &shards,
            |b, &n| {
                let broker = Broker::with_shards(1 << 16, n);
                let mut agents: Vec<_> = (0..64)
                    .map(|i| {
                        let mut cl = broker.connect(format!("w{i}"));
                        cl.subscribe("davide/+/power/#", QoS::AtMostOnce).unwrap();
                        cl
                    })
                    .collect();
                let publ = broker.connect("gw");
                b.iter(|| {
                    publ.publish(
                        black_box("davide/node07/power/gpu1"),
                        payload.clone(),
                        QoS::AtMostOnce,
                        false,
                    )
                    .unwrap();
                    for a in &mut agents {
                        while a.try_recv().is_some() {}
                    }
                });
            },
        );
    }

    // Retained replay: subscribe against a 512-topic retained store —
    // the sharded path snapshots per shard and merges by topic.
    for &shards in &[1usize, 8] {
        g.bench_with_input(
            BenchmarkId::new("retained_replay", shards),
            &shards,
            |b, &n| {
                let broker = Broker::with_shards(1 << 16, n);
                let publ = broker.connect("gw");
                for i in 0..512 {
                    publ.publish(
                        &format!("davide/node{:03}/power/node", i),
                        payload.clone(),
                        QoS::AtMostOnce,
                        true,
                    )
                    .unwrap();
                }
                let mut agent = broker.connect("late");
                b.iter(|| {
                    agent
                        .subscribe(black_box("davide/#"), QoS::AtMostOnce)
                        .unwrap();
                    let got = agent.drain();
                    agent.unsubscribe("davide/#").unwrap();
                    got
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    mqtt,
    bench_codec,
    bench_topic_matching,
    bench_broker_fanout,
    bench_sharded_fanout
);
criterion_main!(mqtt);
