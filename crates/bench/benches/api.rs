//! E27 micro-benchmarks: the query-service hot paths the 1 M QPS gate
//! runs on — a cached rollup hit, the cache-miss recompute it
//! amortises, and the full request → JSON response round trip one HTTP
//! worker performs per request. Run the assertions without timing via
//! `cargo bench --bench api -- --test` (the CI smoke mode).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use davide_api::{QueryOp, QueryRequest, QueryService, QueryServiceConfig};
use davide_obs::ObsHub;
use davide_telemetry::gateway::power_topic;
use davide_telemetry::{Resolution, ShardedTsDb};

const NODES: u32 = 16;
const WINDOW_S: f64 = 60.0;

fn preloaded_service(cache_capacity: usize) -> QueryService<ShardedTsDb> {
    let hub = ObsHub::monotonic();
    let svc = QueryService::over_store(
        ShardedTsDb::new(4, 1 << 16, 1 << 12),
        &hub,
        QueryServiceConfig {
            cache_capacity,
            ..QueryServiceConfig::default()
        },
    );
    let watts: Vec<f32> = (0..60_000)
        .map(|i| 1500.0 + 250.0 * ((i as f32) * 0.002).sin())
        .collect();
    let store = svc.store();
    let mut s = store.write();
    for node in 0..NODES {
        s.append_frame(&power_topic(node, "node"), 0.0, 1e-3, &watts);
    }
    drop(s);
    svc
}

fn mean_query(node: u32) -> QueryRequest {
    QueryRequest::series(
        QueryOp::Mean,
        &power_topic(node, "node"),
        Resolution::Raw,
        0.0,
        WINDOW_S,
    )
}

fn bench_service(c: &mut Criterion) {
    let mut g = c.benchmark_group("e27_service");
    g.throughput(Throughput::Elements(1));

    // The E27 QPS gate path: every query a watermark-validated hit.
    let svc = preloaded_service(4096);
    let queries: Vec<QueryRequest> = (0..NODES).map(mean_query).collect();
    for q in &queries {
        svc.query(q).expect("warm");
    }
    let mut i = 0usize;
    g.bench_function("cached_rollup_hit", |b| {
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(svc.query(black_box(q)).expect("hit"))
        })
    });
    assert!(
        svc.cache_stats().misses <= u64::from(NODES),
        "hit path must not miss"
    );

    // Same query with caching disabled: the full 60 k-point re-scan
    // each repeated accounting query would otherwise pay.
    let uncached = preloaded_service(0);
    let q0 = mean_query(0);
    g.bench_function("uncached_rescan", |b| {
        b.iter(|| black_box(uncached.query(black_box(&q0)).expect("scan")))
    });

    // The per-request work of one HTTP worker: parse the JSON body,
    // answer, serialise the response.
    let body = serde_json::to_string(&mean_query(0).to_value());
    g.bench_function("json_roundtrip", |b| {
        b.iter(|| {
            let v = serde_json::from_str(black_box(&body)).expect("parse");
            let req = QueryRequest::from_value(&v).expect("validate");
            let resp = svc.query(&req).expect("answer");
            black_box(serde_json::to_string(&resp.to_value()))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
