//! Criterion benches for power management (experiments E9–E11): the
//! capping controller, predictor training/inference and the scheduling
//! simulator itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use davide_core::budget::{split_budget, SharingPolicy};
use davide_core::capping::PiCapController;
use davide_core::node::{ComputeNode, NodeLoad};
use davide_core::units::{Seconds, Watts};
use davide_predictor::{RandomForest, Regressor, RidgeRegression};
use davide_sched::{
    simulate, CapSchedule, EasyBackfill, Fcfs, PowerPredictor, SimConfig, WorkloadConfig,
    WorkloadGenerator,
};
use std::hint::black_box;

fn bench_capping(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_capping");
    g.bench_function("pi_controller_step", |b| {
        let mut node = ComputeNode::davide(0);
        let mut ctl = PiCapController::new(Watts(1500.0));
        b.iter(|| ctl.step(black_box(&mut node), NodeLoad::FULL, Seconds(0.1)));
    });
    g.bench_function("node_power_eval", |b| {
        let node = ComputeNode::davide(0);
        b.iter(|| node.power(black_box(NodeLoad::FULL)));
    });
    g.finish();
}

fn bench_predictor(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_predictor");
    g.sample_size(20);
    let mut gen = WorkloadGenerator::new(WorkloadConfig::default(), 5);
    let history = gen.trace(1000);
    g.bench_function("ridge_train_1000", |b| {
        b.iter(|| PowerPredictor::train(RidgeRegression::new(1.0), black_box(&history), 24));
    });
    let predictor = PowerPredictor::train(RidgeRegression::new(1.0), &history, 24);
    let probe = history[0].clone();
    g.bench_function("ridge_predict", |b| {
        b.iter(|| predictor.predict(black_box(&probe)));
    });
    // Raw model cost without the encoding layer.
    g.bench_function("ridge_fit_raw_200x20", |b| {
        let x: Vec<f64> = (0..200 * 20)
            .map(|i| ((i * 31) % 101) as f64 * 0.01)
            .collect();
        let y: Vec<f64> = (0..200).map(|i| i as f64).collect();
        b.iter(|| {
            let mut m = RidgeRegression::new(1.0);
            m.fit(black_box(&x), 200, 20, black_box(&y));
            m
        });
    });
    g.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11_scheduler");
    g.sample_size(10);
    let mut gen = WorkloadGenerator::new(
        WorkloadConfig {
            mean_interarrival_s: 60.0,
            ..WorkloadConfig::default()
        },
        9,
    );
    let trace = gen.trace(300);
    g.bench_function("simulate_fcfs_300", |b| {
        b.iter(|| simulate(black_box(&trace), &mut Fcfs, SimConfig::davide()));
    });
    g.bench_function("simulate_easy_300", |b| {
        b.iter(|| {
            simulate(
                black_box(&trace),
                &mut EasyBackfill::new(),
                SimConfig::davide(),
            )
        });
    });
    for &cap in &[60_000.0f64, 80_000.0] {
        g.bench_with_input(
            BenchmarkId::new("simulate_poweraware_300", cap as u64 / 1000),
            &cap,
            |b, &cap| {
                b.iter(|| {
                    simulate(
                        black_box(&trace),
                        &mut EasyBackfill::power_aware(),
                        SimConfig::davide().with_cap_schedule(CapSchedule::constant(cap), true),
                    )
                });
            },
        );
    }
    g.finish();
}

fn bench_budget_and_forest(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_budget");
    let demands: Vec<Watts> = (0..45)
        .map(|i| Watts(400.0 + (i * 37 % 1600) as f64))
        .collect();
    g.bench_function("split_45_nodes_proportional", |b| {
        b.iter(|| {
            split_budget(
                Watts(70_000.0),
                black_box(&demands),
                Watts(550.0),
                SharingPolicy::DemandProportional,
            )
        });
    });
    g.finish();

    let mut g = c.benchmark_group("e10_forest");
    g.sample_size(10);
    let mut gen = WorkloadGenerator::new(WorkloadConfig::default(), 5);
    let history = gen.trace(500);
    g.bench_function("forest_train_500", |b| {
        b.iter(|| PowerPredictor::train(RandomForest::new(10, 8, 5, 3), black_box(&history), 24));
    });
    g.finish();
}

criterion_group!(
    management,
    bench_capping,
    bench_predictor,
    bench_scheduler,
    bench_budget_and_forest
);
criterion_main!(management);
