//! E26 micro-benchmarks: the Gorilla-style block codec (encode and
//! decode over idle, tone and noisy-tone E25-shaped corpora) and the
//! tiered full-history range scan the ≥100 M samples/s gate runs on.
//! Run the assertions without timing via
//! `cargo bench --bench storage -- --test` (the CI smoke mode).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use davide_telemetry::storage::{decode_block_into, encode_block};
use davide_telemetry::tsdb::TsDb;
use davide_telemetry::{TieringConfig, TsDbConfig};

const DT: f64 = 2e-5;

/// The AM335x power-channel LSB after calibration to 0–4000 W.
const LSB_W: f64 = 4000.0 / 4095.0;

/// Value-corpus shapes the codec sees from the E25 pipeline, in rising
/// entropy order: a flat idle rail, a clean 50 Hz tone, and the tone
/// plus gateway noise (the worst case the scan gate is calibrated on).
#[derive(Clone, Copy)]
enum Shape {
    Idle,
    Tone,
    Noisy,
}

/// One decimated corpus: 16 ADC-quantised codes per stored sample,
/// hardware-averaged — the exact arithmetic of the E25 frame pipeline.
fn corpus(shape: Shape, n: usize) -> Vec<f32> {
    let mut state = 0x00DA_71DEu64;
    (0..n)
        .map(|i| {
            let mut acc = 0.0;
            for r in 0..16 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let t = (i * 16 + r) as f64 / 800_000.0;
                let tone = 85.0 * (2.0 * std::f64::consts::PI * 50.0 * t).sin();
                let w = match shape {
                    Shape::Idle => 1700.0,
                    Shape::Tone => 1700.0 + tone,
                    Shape::Noisy => {
                        let noise = (state as f64 / u64::MAX as f64 - 0.5) * 34.0;
                        1700.0 + tone + noise
                    }
                };
                acc += (w / LSB_W).round().clamp(0.0, 4095.0) * LSB_W;
            }
            (acc / 16.0) as f32
        })
        .collect()
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("e26_compress");
    let n = 1024usize; // one full sealed block
    g.throughput(Throughput::Elements(n as u64));
    for (name, shape) in [
        ("idle", Shape::Idle),
        ("tone", Shape::Tone),
        ("noisy", Shape::Noisy),
    ] {
        let vs = corpus(shape, n);
        let ts: Vec<f64> = (0..n).map(|i| 10.0 + i as f64 * DT).collect();
        let mut bytes = Vec::new();
        encode_block(&ts, &vs, &mut bytes);
        println!(
            "{name}: {} pts → {} B ({:.1}× vs 12 B/pt)",
            n,
            bytes.len(),
            (n * 12) as f64 / bytes.len() as f64
        );
        g.bench_function(&format!("encode_block_1024_{name}"), |b| {
            let mut out = Vec::with_capacity(bytes.len() * 2);
            b.iter(|| {
                out.clear();
                encode_block(black_box(&ts), black_box(&vs), &mut out);
                out.len()
            })
        });
        g.bench_function(&format!("decode_block_1024_{name}"), |b| {
            let (mut dts, mut dvs) = (Vec::new(), Vec::new());
            b.iter(|| decode_block_into(black_box(&bytes), &mut dts, &mut dvs).unwrap())
        });
    }
    g.finish();
}

fn bench_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("e26_scan");
    let n = 500_000usize;
    let frame_len = 500usize;
    let vs = corpus(Shape::Noisy, n);
    let mut db = TsDb::with_config(TsDbConfig {
        raw_capacity: 4096,
        rollup_capacity: 64,
        tiering: Some(TieringConfig {
            seal_block: 1024,
            hot_retain: Some(128),
            ..TieringConfig::default()
        }),
        ..TsDbConfig::default()
    })
    .expect("mem-only tiering is infallible");
    let id = db.resolve("node00/power/node");
    for (f, chunk) in vs.chunks(frame_len).enumerate() {
        db.append_frame_id(id, 10.0 + (f * frame_len) as f64 * DT, DT, chunk);
        db.compact();
    }
    let st = db.tier_stats();
    println!(
        "scan corpus: {} pts in {} compressed blocks ({:.1}× ratio) + {} hot",
        n,
        st.compressed_blocks,
        st.compression_ratio(),
        st.hot_points
    );

    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(20);
    g.bench_function("tiered_full_history_fold_500k", |b| {
        b.iter(|| {
            let (cnt, sum) = db
                .scan_id(id, black_box(0.0), black_box(1e18))
                .fold_points((0u64, 0.0f64), |(cnt, sum), _t, v| (cnt + 1, sum + v));
            assert_eq!(cnt as usize, n);
            sum
        })
    });
    g.bench_function("tiered_full_history_iter_500k", |b| {
        b.iter(|| {
            let mut sum = 0.0f64;
            for p in db.scan_id(id, black_box(0.0), black_box(1e18)) {
                sum += p.v;
            }
            sum
        })
    });
    // The common monitoring query: a window living entirely in the
    // hot ring (must stay decode-free and allocation-free).
    let t_end = 10.0 + n as f64 * DT;
    g.bench_function("tiered_hot_window_mean", |b| {
        b.iter(|| {
            db.mean_id(
                id,
                davide_telemetry::tsdb::Resolution::Raw,
                black_box(t_end - 0.002),
                black_box(t_end),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_codec, bench_scan);
criterion_main!(benches);
