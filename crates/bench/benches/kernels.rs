//! Criterion benches for the application proxy kernels (experiments
//! E14–E17): FFT, GEMM, stencil, SEM matvec, lattice CG.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use davide_apps::cg::{conjugate_gradient, LinearOp};
use davide_apps::fft::{fft3, fft_flops, fft_inplace, Field3};
use davide_apps::gemm::{gemm_flops, matmul_blocked, matmul_naive, Matrix};
use davide_apps::lattice::{EvenOddOp, Lattice4, LatticeOp};
use davide_apps::lu::{hpl_flops, lu_factor};
use davide_apps::sem::SemMesh;
use davide_apps::stencil::{jacobi_sweep, sweep_flops, OceanGrid};
use davide_apps::C64;
use std::hint::black_box;

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("e14_fft");
    for &n in &[1024usize, 4096, 16384] {
        g.throughput(Throughput::Elements(fft_flops(n) as u64));
        g.bench_with_input(BenchmarkId::new("fft1d", n), &n, |b, &n| {
            let data: Vec<C64> = (0..n)
                .map(|i| C64::new((i as f64 * 0.13).sin(), (i as f64 * 0.07).cos()))
                .collect();
            b.iter(|| {
                let mut d = data.clone();
                fft_inplace(black_box(&mut d), false);
                d
            });
        });
    }
    for &n in &[16usize, 32] {
        g.bench_with_input(BenchmarkId::new("fft3d", n), &n, |b, &n| {
            let field = Field3::from_fn(n, |x, y, z| {
                C64::new((x + 2 * y) as f64 * 0.01, z as f64 * 0.02)
            });
            b.iter(|| {
                let mut f = field.clone();
                fft3(black_box(&mut f), false);
                f
            });
        });
    }
    g.finish();
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("e14_gemm");
    g.sample_size(20);
    for &n in &[128usize, 256] {
        let a = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 97) as f64 * 0.01);
        let b_m = Matrix::from_fn(n, n, |i, j| ((i * 13 + j * 7) % 89) as f64 * 0.01);
        g.throughput(Throughput::Elements(gemm_flops(n, n, n) as u64));
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| matmul_naive(black_box(&a), black_box(&b_m)));
        });
        g.bench_with_input(BenchmarkId::new("blocked64_rayon", n), &n, |b, _| {
            b.iter(|| matmul_blocked(black_box(&a), black_box(&b_m), 64));
        });
    }
    g.finish();
}

fn bench_stencil(c: &mut Criterion) {
    let mut g = c.benchmark_group("e15_stencil");
    for &(nx, ny) in &[(256usize, 128usize), (1024, 512)] {
        let grid = OceanGrid::from_fn(nx, ny, |x, y| ((x * 7 + y * 3) % 13) as f64);
        g.throughput(Throughput::Elements(sweep_flops(nx, ny) as u64));
        g.bench_with_input(
            BenchmarkId::new("jacobi_sweep", format!("{nx}x{ny}")),
            &grid,
            |b, grid| {
                b.iter(|| jacobi_sweep(black_box(grid), 0.8));
            },
        );
    }
    g.finish();
}

fn bench_sem(c: &mut Criterion) {
    let mut g = c.benchmark_group("e16_sem");
    for &elems in &[256usize, 1024] {
        let mesh = SemMesh::new(elems, 4, 0.4);
        let x = vec![1.0; mesh.dofs()];
        let mut y = vec![0.0; mesh.dofs()];
        g.throughput(Throughput::Elements(mesh.matvec_flops() as u64));
        g.bench_with_input(BenchmarkId::new("matvec", elems), &elems, |b, _| {
            b.iter(|| {
                mesh.apply(black_box(&x), black_box(&mut y));
            });
        });
    }
    g.finish();
}

fn bench_lattice_cg(c: &mut Criterion) {
    let mut g = c.benchmark_group("e17_lattice");
    g.sample_size(10);
    let dims = [8usize, 8, 8, 8];
    let full = LatticeOp::new(Lattice4::new(dims), 0.25);
    let vol = full.lattice.volume();
    let rhs: Vec<f64> = (0..vol).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
    let x = vec![1.0; vol];
    let mut y = vec![0.0; vol];
    g.bench_function("matvec_full_8x8x8x8", |b| {
        b.iter(|| full.apply(black_box(&x), black_box(&mut y)));
    });
    g.bench_function("cg_full_8x8x8x8", |b| {
        b.iter(|| {
            let mut x0 = vec![0.0; vol];
            conjugate_gradient(&full, black_box(&rhs), &mut x0, 1e-8, 10_000)
        });
    });
    let eo = EvenOddOp::new(LatticeOp::new(Lattice4::new(dims), 0.25));
    let be = eo.reduce_rhs(&rhs);
    g.bench_function("cg_evenodd_8x8x8x8", |b| {
        b.iter(|| {
            let mut x0 = vec![0.0; vol / 2];
            conjugate_gradient(&eo, black_box(&be), &mut x0, 1e-8, 10_000)
        });
    });
    g.finish();
}

fn bench_lu(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_hpl_lu");
    g.sample_size(10);
    for &n in &[128usize, 256] {
        let a = Matrix::from_fn(n, n, |i, j| {
            let v = ((i * 31 + j * 17) % 97) as f64 * 0.02 - 1.0;
            if i == j {
                v + 4.0
            } else {
                v
            }
        });
        g.throughput(Throughput::Elements(hpl_flops(n) as u64));
        g.bench_with_input(BenchmarkId::new("lu_nb32", n), &n, |b, _| {
            b.iter(|| lu_factor(black_box(&a), 32).expect("nonsingular"));
        });
    }
    g.finish();
}

criterion_group!(
    kernels,
    bench_fft,
    bench_gemm,
    bench_stencil,
    bench_sem,
    bench_lattice_cg,
    bench_lu
);
criterion_main!(kernels);
