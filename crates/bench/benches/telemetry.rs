//! Criterion benches for the monitoring chain (experiments E3–E5,
//! E25): sensor front-end, ADC digitisation, decimation variants,
//! full-chain acquisition and energy integration, and the full-rate
//! acquisition path (scalar reference vs blocked kernels).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use davide_core::power::PowerTrace;
use davide_core::rng::Rng;
use davide_core::time::SimTime;
use davide_telemetry::acquisition::{AcquisitionConfig, AcquisitionRig, DspMode};
use davide_telemetry::adc::{AdcMux, SarAdc};
use davide_telemetry::decimation::{
    boxcar_decimate, design_lowpass_fir, fir_decimate, pick_decimate,
};
use davide_telemetry::gateway::SampleFrame;
use davide_telemetry::kernels::{boxcar_block, AdcKernel, PolyphaseFir};
use davide_telemetry::monitor::MonitorChain;
use davide_telemetry::sensors::PowerSensor;
use davide_telemetry::{EnergyIntegrator, WorkloadWaveform};
use std::hint::black_box;

fn one_second_truth(seed: u64) -> davide_core::power::PowerTrace {
    let mut rng = Rng::seed_from(seed);
    WorkloadWaveform::hpc_job(1700.0, 0.5).render(800_000.0, 1.0, &mut rng)
}

fn bench_decimation(c: &mut Criterion) {
    let truth = one_second_truth(1);
    let mut g = c.benchmark_group("e4_decimation");
    g.throughput(Throughput::Elements(truth.len() as u64));
    g.bench_function("boxcar_16x", |b| {
        b.iter(|| boxcar_decimate(black_box(&truth), 16));
    });
    g.bench_function("pick_16x", |b| {
        b.iter(|| pick_decimate(black_box(&truth), 16));
    });
    let h = design_lowpass_fir(127, 0.03);
    g.bench_function("fir127_16x", |b| {
        b.iter(|| fir_decimate(black_box(&truth), &h, 16));
    });
    g.finish();
}

fn bench_sensor_adc(c: &mut Criterion) {
    let truth = one_second_truth(2);
    let mut g = c.benchmark_group("e3_frontend");
    g.sample_size(20);
    g.throughput(Throughput::Elements(truth.len() as u64));
    g.bench_function("sensor_acquire_800k", |b| {
        let mut rng = Rng::seed_from(3);
        let sensor = PowerSensor::davide_shunt(&mut rng);
        b.iter(|| sensor.acquire(black_box(&truth), &mut rng));
    });
    g.bench_function("adc_digitise_800k", |b| {
        let adc = SarAdc::am335x_power_channel();
        b.iter(|| adc.digitise(black_box(&truth)));
    });
    type ChainBuilder = fn(&mut Rng) -> MonitorChain;
    let chains: [(&str, ChainBuilder); 2] = [
        ("chain_eg", MonitorChain::davide_eg),
        ("chain_ipmi", MonitorChain::ipmi),
    ];
    for (name, build) in chains {
        g.bench_function(name, |b| {
            let mut rng = Rng::seed_from(4);
            let chain = build(&mut rng);
            b.iter(|| chain.acquire(black_box(&truth), &mut rng));
        });
    }
    g.finish();
}

fn bench_integration(c: &mut Criterion) {
    let mut g = c.benchmark_group("e12_integration");
    let frame = SampleFrame {
        t0_s: 0.0,
        dt_s: 2e-5,
        watts: vec![1700.0; 500],
    };
    let frames: Vec<SampleFrame> = (0..100)
        .map(|i| SampleFrame {
            t0_s: i as f64 * 0.01,
            ..frame.clone()
        })
        .collect();
    g.throughput(Throughput::Elements(50_000));
    g.bench_function("integrate_1s_of_50ksps", |b| {
        b.iter(|| {
            let mut acc = EnergyIntegrator::new();
            for f in &frames {
                acc.push(black_box(f));
            }
            acc.energy()
        });
    });
    g.bench_function("frame_encode_decode", |b| {
        b.iter(|| {
            let bytes = black_box(&frame).encode();
            SampleFrame::decode(bytes).unwrap()
        });
    });
    g.finish();
}

/// The gateway's full 8-channel mux scan: every channel gets its own
/// ripple tone, mirroring the E25 channel profiles.
fn bench_adc_mux(c: &mut Criterion) {
    let mux = AdcMux::gateway_scan();
    let signals: Vec<Box<dyn Fn(f64) -> f64>> = (0..mux.channels as usize)
        .map(|ch| {
            let (base, tone_hz) = match ch {
                0 => (1700.0, 50.0),
                1 | 2 => (300.0, 120.0),
                3..=6 => (350.0, 90.0 + 10.0 * ch as f64),
                _ => (100.0, 200.0),
            };
            Box::new(move |t: f64| {
                base + 0.05 * base * (2.0 * std::f64::consts::PI * tone_hz * t).sin()
            }) as Box<dyn Fn(f64) -> f64>
        })
        .collect();
    let refs: Vec<&dyn Fn(f64) -> f64> = signals.iter().map(|b| b.as_ref()).collect();
    let duration_s = 0.1;
    let total = (mux.per_channel_rate() * duration_s).round() as u64 * mux.channels as u64;
    let mut g = c.benchmark_group("e25_adc_mux");
    g.throughput(Throughput::Elements(total));
    g.bench_function("sample_all_8ch", |b| {
        let mut rng = Rng::seed_from(7);
        b.iter(|| mux.sample_all(black_box(&refs), duration_s, &mut rng));
    });
    g.finish();
}

/// The E25 DSP hot loop at frame granularity — the seed per-sample
/// `f64` path vs the blocked `f32` kernels — and the polyphase FIR
/// against its textbook form. Same block size the acquisition driver
/// uses (8000 raw samples → one 500-sample frame).
fn bench_acquisition_kernels(c: &mut Criterion) {
    const BLOCK: usize = 8_000;
    let adc = SarAdc::am335x_power_channel();
    let kernel = AdcKernel::new(&adc);
    let mut rng = Rng::seed_from(8);
    let raw_f64: Vec<f64> = (0..BLOCK).map(|_| rng.uniform_in(1500.0, 1900.0)).collect();
    let raw_f32: Vec<f32> = raw_f64.iter().map(|&v| v as f32).collect();
    let trace = PowerTrace::new(SimTime::ZERO, 1.25e-6, raw_f64);

    let mut g = c.benchmark_group("e25_kernels");
    g.throughput(Throughput::Elements(BLOCK as u64));
    g.bench_function("digitise_decimate_scalar_f64", |b| {
        b.iter(|| {
            let dig = adc.digitise(black_box(&trace));
            boxcar_decimate(&dig, 16)
        });
    });
    let (mut dig, mut dec) = (Vec::with_capacity(BLOCK), Vec::with_capacity(BLOCK / 16));
    g.bench_function("digitise_decimate_blocked_f32", |b| {
        b.iter(|| {
            kernel.digitise_block(black_box(&raw_f32), &mut dig);
            boxcar_block(&dig, 16, &mut dec);
            black_box(dec.last().copied())
        });
    });
    let h = design_lowpass_fir(63, 0.02);
    let pf = PolyphaseFir::new(&h, 16);
    let mut out = Vec::with_capacity(BLOCK / 16);
    g.bench_function("fir63_16x_polyphase_blocked", |b| {
        b.iter(|| {
            pf.decimate_block(black_box(&raw_f32), &mut out);
            black_box(out.last().copied())
        });
    });
    g.finish();
}

/// The whole acquisition pipeline — synth → digitise → decimate →
/// MQTT publish → ingest → sharded TsDb — scalar reference vs blocked
/// kernels, at a 2-gateway scale that keeps criterion iterations
/// sub-second. Each iteration builds a fresh rig (template rendering,
/// broker setup); that fixed cost is identical for both variants, so
/// the measured scalar/blocked gap understates the kernel speedup —
/// E25 reports the isolated per-stage numbers.
fn bench_acquisition_pipeline(c: &mut Criterion) {
    let cfg = AcquisitionConfig {
        nodes: 2,
        duration_s: 0.05,
        ..AcquisitionConfig::full_rate()
    };
    let mut g = c.benchmark_group("e25_pipeline");
    g.sample_size(10);
    g.throughput(Throughput::Elements(cfg.raw_samples()));
    for (name, mode) in [
        ("end_to_end_scalar", DspMode::Scalar),
        ("end_to_end_blocked", DspMode::Blocked),
    ] {
        let cfg = cfg.clone();
        g.bench_function(name, |b| {
            b.iter(|| AcquisitionRig::new(black_box(cfg.clone()), mode).run());
        });
    }
    g.finish();
}

criterion_group!(
    telemetry,
    bench_decimation,
    bench_sensor_adc,
    bench_integration,
    bench_adc_mux,
    bench_acquisition_kernels,
    bench_acquisition_pipeline
);
criterion_main!(telemetry);
