//! Criterion benches for the monitoring chain (experiments E3–E5):
//! sensor front-end, ADC digitisation, decimation variants, full-chain
//! acquisition and energy integration.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use davide_core::rng::Rng;
use davide_telemetry::adc::SarAdc;
use davide_telemetry::decimation::{
    boxcar_decimate, design_lowpass_fir, fir_decimate, pick_decimate,
};
use davide_telemetry::gateway::SampleFrame;
use davide_telemetry::monitor::MonitorChain;
use davide_telemetry::sensors::PowerSensor;
use davide_telemetry::{EnergyIntegrator, WorkloadWaveform};
use std::hint::black_box;

fn one_second_truth(seed: u64) -> davide_core::power::PowerTrace {
    let mut rng = Rng::seed_from(seed);
    WorkloadWaveform::hpc_job(1700.0, 0.5).render(800_000.0, 1.0, &mut rng)
}

fn bench_decimation(c: &mut Criterion) {
    let truth = one_second_truth(1);
    let mut g = c.benchmark_group("e4_decimation");
    g.throughput(Throughput::Elements(truth.len() as u64));
    g.bench_function("boxcar_16x", |b| {
        b.iter(|| boxcar_decimate(black_box(&truth), 16));
    });
    g.bench_function("pick_16x", |b| {
        b.iter(|| pick_decimate(black_box(&truth), 16));
    });
    let h = design_lowpass_fir(127, 0.03);
    g.bench_function("fir127_16x", |b| {
        b.iter(|| fir_decimate(black_box(&truth), &h, 16));
    });
    g.finish();
}

fn bench_sensor_adc(c: &mut Criterion) {
    let truth = one_second_truth(2);
    let mut g = c.benchmark_group("e3_frontend");
    g.sample_size(20);
    g.throughput(Throughput::Elements(truth.len() as u64));
    g.bench_function("sensor_acquire_800k", |b| {
        let mut rng = Rng::seed_from(3);
        let sensor = PowerSensor::davide_shunt(&mut rng);
        b.iter(|| sensor.acquire(black_box(&truth), &mut rng));
    });
    g.bench_function("adc_digitise_800k", |b| {
        let adc = SarAdc::am335x_power_channel();
        b.iter(|| adc.digitise(black_box(&truth)));
    });
    type ChainBuilder = fn(&mut Rng) -> MonitorChain;
    let chains: [(&str, ChainBuilder); 2] = [
        ("chain_eg", MonitorChain::davide_eg),
        ("chain_ipmi", MonitorChain::ipmi),
    ];
    for (name, build) in chains {
        g.bench_function(name, |b| {
            let mut rng = Rng::seed_from(4);
            let chain = build(&mut rng);
            b.iter(|| chain.acquire(black_box(&truth), &mut rng));
        });
    }
    g.finish();
}

fn bench_integration(c: &mut Criterion) {
    let mut g = c.benchmark_group("e12_integration");
    let frame = SampleFrame {
        t0_s: 0.0,
        dt_s: 2e-5,
        watts: vec![1700.0; 500],
    };
    let frames: Vec<SampleFrame> = (0..100)
        .map(|i| SampleFrame {
            t0_s: i as f64 * 0.01,
            ..frame.clone()
        })
        .collect();
    g.throughput(Throughput::Elements(50_000));
    g.bench_function("integrate_1s_of_50ksps", |b| {
        b.iter(|| {
            let mut acc = EnergyIntegrator::new();
            for f in &frames {
                acc.push(black_box(f));
            }
            acc.energy()
        });
    });
    g.bench_function("frame_encode_decode", |b| {
        b.iter(|| {
            let bytes = black_box(&frame).encode();
            SampleFrame::decode(bytes).unwrap()
        });
    });
    g.finish();
}

criterion_group!(
    telemetry,
    bench_decimation,
    bench_sensor_adc,
    bench_integration
);
criterion_main!(telemetry);
