//! E21 micro-benchmarks: the batched telemetry ingest path, plus an
//! allocation-counting proof that the steady-state append path is
//! heap-allocation-free. Run the proof without timing via
//! `cargo bench --bench ingest -- --test` (the CI smoke mode).

// By-name TsDb paths are benchmarked deliberately against the id fast path.
#![allow(deprecated)]
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use davide_telemetry::gateway::SampleFrame;
use davide_telemetry::tsdb::TsDb;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper counting every alloc/realloc, so benches
/// can assert the hot path performs none.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

const FRAME_LEN: usize = 500;
const DT: f64 = 2e-5;

fn test_frame() -> SampleFrame {
    SampleFrame {
        t0_s: 100.0,
        dt_s: DT,
        watts: (0..FRAME_LEN).map(|i| 1700.0 + (i % 13) as f32).collect(),
    }
}

/// Warmed store: raw ring at capacity so deque growth is behind us.
fn warmed_db() -> (TsDb, davide_telemetry::tsdb::SeriesId, f64) {
    let mut db = TsDb::with_capacity(100_000, 1_000);
    let id = db.resolve("node00/power/node");
    let watts = vec![1700.0f32; FRAME_LEN];
    let mut t0 = 0.0;
    for _ in 0..250 {
        db.append_frame_id(id, t0, DT, &watts);
        t0 += FRAME_LEN as f64 * DT;
    }
    (db, id, t0)
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("e21_codec");
    let frame = test_frame();
    let wire = frame.encode();
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("encode_frame_500", |b| {
        b.iter(|| black_box(&frame).encode())
    });
    g.bench_function("decode_frame_500", |b| {
        b.iter(|| SampleFrame::decode(black_box(wire.clone())).unwrap())
    });
    g.finish();
}

fn bench_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("e21_append");
    g.throughput(Throughput::Elements(FRAME_LEN as u64));

    let frame = test_frame();
    let (mut db, id, mut t0) = warmed_db();
    g.bench_function("per_sample_append_id_500", |b| {
        b.iter(|| {
            for (i, &w) in frame.watts.iter().enumerate() {
                db.append_id(id, t0 + i as f64 * DT, w as f64);
            }
            t0 += FRAME_LEN as f64 * DT;
        })
    });

    let (mut db, id, mut t0) = warmed_db();
    g.bench_function("bulk_append_frame_id_500", |b| {
        b.iter(|| {
            db.append_frame_id(id, t0, DT, &frame.watts);
            t0 += FRAME_LEN as f64 * DT;
        })
    });

    let (mut db, _, mut t0) = warmed_db();
    g.bench_function("bulk_append_frame_by_name_500", |b| {
        b.iter(|| {
            db.append_frame("node00/power/node", t0, DT, &frame.watts);
            t0 += FRAME_LEN as f64 * DT;
        })
    });
    g.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut g = c.benchmark_group("e21_query");
    let (db, id, t_end) = warmed_db();
    // Window in the middle of the retained ring.
    let (w0, w1) = (t_end - 1.0, t_end - 0.5);
    g.bench_function("range_query_partition_point", |b| {
        b.iter(|| {
            db.query_id(
                id,
                davide_telemetry::tsdb::Resolution::Raw,
                black_box(w0),
                black_box(w1),
            )
        })
    });
    g.bench_function("energy_window", |b| {
        b.iter(|| db.energy_j("node00/power/node", black_box(w0), black_box(w1)))
    });
    g.finish();
}

/// The zero-allocation proof: after warm-up, neither the bulk frame
/// path nor the scalar id path may touch the heap. Runs (and fails
/// loudly) in `--test` smoke mode too.
fn alloc_proof(c: &mut Criterion) {
    let (mut db, id, mut t0) = warmed_db();
    let watts = vec![1700.0f32; FRAME_LEN];

    let before = allocations();
    for _ in 0..100 {
        db.append_frame_id(id, t0, DT, &watts);
        t0 += FRAME_LEN as f64 * DT;
    }
    let frame_allocs = allocations() - before;
    assert_eq!(
        frame_allocs, 0,
        "steady-state append_frame_id allocated {frame_allocs} times in 100 frames"
    );

    let before = allocations();
    for i in 0..FRAME_LEN {
        db.append_id(id, t0 + i as f64 * DT, 1700.0);
    }
    let sample_allocs = allocations() - before;
    assert_eq!(
        sample_allocs, 0,
        "steady-state append_id allocated {sample_allocs} times in {FRAME_LEN} samples"
    );
    println!("alloc proof: 0 heap allocations across 100 bulk frames + {FRAME_LEN} scalar appends");

    // Keep a timed entry so the proof shows up in bench listings.
    let mut g = c.benchmark_group("e21_alloc_proof");
    g.throughput(Throughput::Elements(FRAME_LEN as u64));
    g.bench_function("steady_state_frame_append", |b| {
        b.iter(|| {
            db.append_frame_id(id, t0, DT, &watts);
            t0 += FRAME_LEN as f64 * DT;
        })
    });
    g.finish();
}

criterion_group!(benches, bench_codec, bench_append, bench_query, alloc_proof);
criterion_main!(benches);
