//! E21 micro-benchmarks: the batched telemetry ingest path, plus an
//! allocation-counting proof that the steady-state append path is
//! heap-allocation-free and a guard that the `davide-obs` instruments
//! stay within a 5 % overhead budget on the broker → TsDb drain. Run
//! the proofs without timing via
//! `cargo bench --bench ingest -- --test` (the CI smoke mode).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use davide_mqtt::Broker;
use davide_obs::ObsHub;
use davide_telemetry::gateway::{power_topic, SampleFrame};
use davide_telemetry::ingest::{FrameIngestor, IngestObs};
use davide_telemetry::tsdb::TsDb;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper counting every alloc/realloc, so benches
/// can assert the hot path performs none.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

const FRAME_LEN: usize = 500;
const DT: f64 = 2e-5;

fn test_frame() -> SampleFrame {
    SampleFrame {
        t0_s: 100.0,
        dt_s: DT,
        watts: (0..FRAME_LEN).map(|i| 1700.0 + (i % 13) as f32).collect(),
    }
}

/// Warmed store: raw ring at capacity so deque growth is behind us.
fn warmed_db() -> (TsDb, davide_telemetry::tsdb::SeriesId, f64) {
    let mut db = TsDb::with_capacity(100_000, 1_000);
    let id = db.resolve("node00/power/node");
    let watts = vec![1700.0f32; FRAME_LEN];
    let mut t0 = 0.0;
    for _ in 0..250 {
        db.append_frame_id(id, t0, DT, &watts);
        t0 += FRAME_LEN as f64 * DT;
    }
    (db, id, t0)
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("e21_codec");
    let frame = test_frame();
    let wire = frame.encode();
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("encode_frame_500", |b| {
        b.iter(|| black_box(&frame).encode())
    });
    g.bench_function("decode_frame_500", |b| {
        b.iter(|| SampleFrame::decode(black_box(wire.clone())).unwrap())
    });
    g.finish();
}

fn bench_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("e21_append");
    g.throughput(Throughput::Elements(FRAME_LEN as u64));

    let frame = test_frame();
    let (mut db, id, mut t0) = warmed_db();
    g.bench_function("per_sample_append_id_500", |b| {
        b.iter(|| {
            for (i, &w) in frame.watts.iter().enumerate() {
                db.append_id(id, t0 + i as f64 * DT, w as f64);
            }
            t0 += FRAME_LEN as f64 * DT;
        })
    });

    let (mut db, id, mut t0) = warmed_db();
    g.bench_function("bulk_append_frame_id_500", |b| {
        b.iter(|| {
            db.append_frame_id(id, t0, DT, &frame.watts);
            t0 += FRAME_LEN as f64 * DT;
        })
    });

    // The by-name path: a string lookup in front of the same bulk
    // append, the cost every caller pays when it has not interned ids.
    let (mut db, _, mut t0) = warmed_db();
    g.bench_function("bulk_append_frame_by_name_500", |b| {
        b.iter(|| {
            let id = db.lookup(black_box("node00/power/node")).unwrap();
            db.append_frame_id(id, t0, DT, &frame.watts);
            t0 += FRAME_LEN as f64 * DT;
        })
    });
    g.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut g = c.benchmark_group("e21_query");
    let (db, id, t_end) = warmed_db();
    // Window in the middle of the retained ring.
    let (w0, w1) = (t_end - 1.0, t_end - 0.5);
    g.bench_function("range_query_partition_point", |b| {
        b.iter(|| {
            db.query_id(
                id,
                davide_telemetry::tsdb::Resolution::Raw,
                black_box(w0),
                black_box(w1),
            )
        })
    });
    g.bench_function("energy_window", |b| {
        b.iter(|| db.energy_j_id(id, black_box(w0), black_box(w1)))
    });
    g.finish();
}

/// The zero-allocation proof: after warm-up, neither the bulk frame
/// path nor the scalar id path may touch the heap. Runs (and fails
/// loudly) in `--test` smoke mode too.
fn alloc_proof(c: &mut Criterion) {
    let (mut db, id, mut t0) = warmed_db();
    let watts = vec![1700.0f32; FRAME_LEN];

    let before = allocations();
    for _ in 0..100 {
        db.append_frame_id(id, t0, DT, &watts);
        t0 += FRAME_LEN as f64 * DT;
    }
    let frame_allocs = allocations() - before;
    assert_eq!(
        frame_allocs, 0,
        "steady-state append_frame_id allocated {frame_allocs} times in 100 frames"
    );

    let before = allocations();
    for i in 0..FRAME_LEN {
        db.append_id(id, t0 + i as f64 * DT, 1700.0);
    }
    let sample_allocs = allocations() - before;
    assert_eq!(
        sample_allocs, 0,
        "steady-state append_id allocated {sample_allocs} times in {FRAME_LEN} samples"
    );

    // Same proof with tiering armed: sealing happens in compact(),
    // which may allocate (block encode, segment buffers) — the append
    // path itself must stay heap-free between compactions.
    let mut tdb = davide_telemetry::TsDb::with_config(davide_telemetry::TsDbConfig {
        raw_capacity: 100_000,
        rollup_capacity: 1_000,
        tiering: Some(davide_telemetry::TieringConfig {
            seal_block: 1024,
            hot_retain: Some(4096),
            ..davide_telemetry::TieringConfig::default()
        }),
        ..davide_telemetry::TsDbConfig::default()
    })
    .expect("mem-only tiering is infallible");
    let tid = tdb.resolve("node00/power/node");
    let mut tt0 = 0.0;
    for _ in 0..250 {
        tdb.append_frame_id(tid, tt0, DT, &watts);
        tt0 += FRAME_LEN as f64 * DT;
    }
    tdb.compact();
    let before = allocations();
    for _ in 0..100 {
        tdb.append_frame_id(tid, tt0, DT, &watts);
        tt0 += FRAME_LEN as f64 * DT;
    }
    let tiered_allocs = allocations() - before;
    assert_eq!(
        tiered_allocs, 0,
        "tiered append_frame_id allocated {tiered_allocs} times in 100 frames"
    );
    println!(
        "alloc proof: 0 heap allocations across 100 bulk frames + {FRAME_LEN} scalar appends \
         + 100 tiered frames"
    );

    // Keep a timed entry so the proof shows up in bench listings.
    let mut g = c.benchmark_group("e21_alloc_proof");
    g.throughput(Throughput::Elements(FRAME_LEN as u64));
    g.bench_function("steady_state_frame_append", |b| {
        b.iter(|| {
            db.append_frame_id(id, t0, DT, &watts);
            t0 += FRAME_LEN as f64 * DT;
        })
    });
    g.finish();
}

/// Frames per timed sub-drain and sub-drains per floor estimate.
const SUB_FRAMES: usize = 250;
const SUB_DRAINS: usize = 12;

/// Steady-state broker → ingest → TsDb drain floor: one warmed
/// broker/ingestor/store, `SUB_DRAINS` publish-then-drain rounds of
/// `SUB_FRAMES` frames each, returning the *minimum* sub-drain time.
/// Publishes sit outside the clock; the raw ring is pre-grown to
/// capacity so the timed path is the pure recycle path (no deque
/// growth, no first-touch page faults). The min over many short drains
/// is a far more stable estimator on a shared machine than one long
/// drain.
fn drain_floor(instrumented: bool) -> std::time::Duration {
    let broker = Broker::new(1 << 16);
    let mut ing = FrameIngestor::subscribe(&broker, "bench-agent", &["davide/+/power/#"]).unwrap();
    if instrumented {
        let hub = ObsHub::monotonic();
        ing.set_obs(Some(IngestObs::new(&hub)));
    }
    let gw = broker.connect("bench-gw");
    let watts = vec![1700.0f32; FRAME_LEN];

    // Warm the raw ring to capacity (untimed, with pre-frame
    // timestamps) so sub-drains recycle slots instead of growing.
    let mut db = TsDb::with_capacity(SUB_FRAMES * FRAME_LEN, 1_000);
    let id = db.resolve(&power_topic(0, "node"));
    let mut tw = -((SUB_FRAMES * FRAME_LEN) as f64) * DT;
    for _ in 0..SUB_FRAMES {
        db.append_frame_id(id, tw, DT, &watts);
        tw += FRAME_LEN as f64 * DT;
    }

    let mut t0 = 0.0;
    let mut best = std::time::Duration::MAX;
    for _ in 0..SUB_DRAINS {
        for _ in 0..SUB_FRAMES {
            let frame = SampleFrame {
                t0_s: t0,
                dt_s: DT,
                watts: watts.clone(),
            };
            gw.publish(
                &power_topic(0, "node"),
                frame.encode(),
                davide_mqtt::QoS::AtMostOnce,
                false,
            )
            .unwrap();
            t0 += FRAME_LEN as f64 * DT;
        }
        let start = std::time::Instant::now();
        let frames = ing.drain_into(&mut db);
        let dt = start.elapsed();
        assert_eq!(frames, SUB_FRAMES, "every frame lands");
        best = best.min(dt);
    }
    best
}

/// The instrumentation-overhead guard: the full MQTT → TsDb drain with
/// the obs stack armed (trace stamp, frame-age histogram, counters per
/// frame) must stay within 5 % of the uninstrumented drain.
///
/// Each round measures the two variants back-to-back and the gate uses
/// the *minimum per-round ratio*: paired measurements share whatever
/// machine-wide drift is in force, so a noisy neighbour cannot fail the
/// gate spuriously, while a real hot-path regression shows up in every
/// round and survives the min.
fn obs_overhead_guard(c: &mut Criterion) {
    const ROUNDS: usize = 7;
    let _ = drain_floor(false);
    let _ = drain_floor(true);
    let mut plain = std::time::Duration::MAX;
    let mut inst = std::time::Duration::MAX;
    let mut ratio = f64::INFINITY;
    for r in 0..ROUNDS {
        // Alternate ordering so neither variant always runs second.
        let (a, b) = (drain_floor(r % 2 == 0), drain_floor(r % 2 != 0));
        let (p, i) = if r % 2 == 0 { (b, a) } else { (a, b) };
        plain = plain.min(p);
        inst = inst.min(i);
        ratio = ratio.min(i.as_secs_f64() / p.as_secs_f64());
    }
    let overhead = ratio - 1.0;
    println!(
        "obs overhead: uninstrumented {:.1} µs, instrumented {:.1} µs, best paired ratio {:+.2} % over {} frames × {} samples per drain",
        plain.as_secs_f64() * 1e6,
        inst.as_secs_f64() * 1e6,
        overhead * 100.0,
        SUB_FRAMES,
        FRAME_LEN,
    );
    assert!(
        overhead <= 0.05,
        "obs instrumentation overhead {:.2} % exceeds the 5 % budget",
        overhead * 100.0
    );

    // Keep timed entries so both variants show up in bench listings.
    let mut g = c.benchmark_group("e21_obs_overhead");
    g.throughput(Throughput::Elements(
        (SUB_DRAINS * SUB_FRAMES * FRAME_LEN) as u64,
    ));
    g.sample_size(10);
    g.bench_function("drain_uninstrumented", |b| {
        b.iter(|| drain_floor(black_box(false)))
    });
    g.bench_function("drain_instrumented", |b| {
        b.iter(|| drain_floor(black_box(true)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_codec,
    bench_append,
    bench_query,
    alloc_proof,
    obs_overhead_guard
);
criterion_main!(benches);
