//! A day in the life of the D.A.V.I.D.E. site team: burn-in a delivery
//! of nodes (§I), arm the MS3-style day/night envelope ([15]), profile a
//! user's job from its gateway stream (Fig. 4 "Pr") and advise on the
//! §IV time-vs-energy tradeoff.
//!
//! Run with: `cargo run --release --example site_operations`

use davide::apps::distributed::{ets_optimal_nodes, tts_ets_sweep, tts_optimal_nodes};
use davide::apps::workload::{AppKind, AppModel};
use davide::core::burnin::{burnin_batch, BurnInConfig};
use davide::core::node::ComputeNode;
use davide::core::rng::Rng;
use davide::sched::{
    report, simulate, CapSchedule, EasyBackfill, SimConfig, WorkloadConfig, WorkloadGenerator,
};
use davide::telemetry::profiler::{detect_phases, summarise, ProfilerConfig};
use davide::telemetry::{MonitorChain, WorkloadWaveform};

fn main() {
    // --- 1. Acceptance: burn in a delivery of nodes. ---
    println!("=== burn-in: accepting a rack of 15 nodes ===");
    let mut delivery: Vec<ComputeNode> = (0..15).map(ComputeNode::davide).collect();
    // One node arrived with a dead GPU.
    delivery[11].gpus[3].set_enabled(false);
    let failures = burnin_batch(&mut delivery, BurnInConfig::default());
    for f in &failures {
        let stages: Vec<&str> = f
            .stages
            .iter()
            .filter(|s| !s.passed)
            .map(|s| s.stage)
            .collect();
        println!(
            "node {:>2}: REJECTED (failed {stages:?}) — RMA it",
            f.node_id
        );
    }
    println!(
        "{} of 15 accepted; rejected nodes never reach production.\n",
        15 - failures.len()
    );

    // --- 2. Operations: day/night envelope on the scheduler. ---
    println!("=== MS3 day/night envelope (55 kW day / 75 kW night) ===");
    let mut gen = WorkloadGenerator::new(
        WorkloadConfig {
            mean_interarrival_s: 60.0,
            ..WorkloadConfig::default()
        },
        99,
    );
    let trace = gen.trace(300);
    let flat = simulate(
        &trace,
        &mut EasyBackfill::power_aware().with_aging(4.0 * 3600.0),
        SimConfig::davide().with_cap_schedule(CapSchedule::constant(65_000.0), true),
    );
    let shifted = simulate(
        &trace,
        &mut EasyBackfill::power_aware().with_aging(4.0 * 3600.0),
        SimConfig::davide().with_cap_schedule(CapSchedule::day_night(55_000.0, 75_000.0), true),
    );
    for (label, out) in [("flat 65 kW", &flat), ("55/75 kW day/night", &shifted)] {
        let r = report(out);
        println!(
            "{label:<22} wait {:>7.0} s  slowdown {:>6.2}  energy {:>7.1} kWh  overcap {:>5.2} %",
            r.mean_wait_s,
            r.mean_slowdown,
            r.energy_kwh,
            r.overcap_fraction * 100.0
        );
    }
    println!("same work, power drawn when the facility prefers it.\n");

    // --- 3. Support: profile a user's job from the EG stream. ---
    println!("=== profiling user job from the 50 kS/s gateway stream ===");
    let mut rng = Rng::seed_from(5);
    let truth = WorkloadWaveform::hpc_job(1650.0, 0.8).render(800_000.0, 4.0, &mut rng.fork());
    let chain = MonitorChain::davide_eg(&mut rng.fork());
    let stream = chain.acquire(&truth, &mut rng);
    let phases = detect_phases(&stream, ProfilerConfig::default());
    let s = summarise(&phases);
    println!(
        "{} phases; high-power duty {:.0} %; hottest phase {:.0} W; largest phase holds {:.0} % of energy",
        s.phases,
        s.high_duty * 100.0,
        s.hottest_mean.0,
        s.max_energy_share * 100.0
    );
    println!("→ tell the user: the low phases idle the GPUs; consider shaping the node.\n");

    // --- 4. Co-design: advise on allocation size (TTS vs ETS). ---
    println!("=== allocation advice: time vs energy to solution ===");
    for kind in [AppKind::QuantumEspresso, AppKind::Nemo] {
        let app = AppModel::for_kind(kind);
        let rows = tts_ets_sweep(&app, 100, &[1, 4, 16]);
        print!("{:<18}", kind.name());
        for (n, tts, ets) in rows {
            print!("  {n:>2} nodes: {tts:>5.0} s / {:>5.2} kWh", ets / 3.6e6);
        }
        println!();
        println!(
            "{:<18}  fastest at {} nodes, greenest at {} nodes",
            "",
            tts_optimal_nodes(&app, 32),
            ets_optimal_nodes(&app, 32)
        );
    }
    println!("\nthe §IV loop: measure → shape → re-run, with the EG closing the loop.");
}
