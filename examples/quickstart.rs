//! Quickstart: build the D.A.V.I.D.E. pilot system, inspect its
//! published envelope, run an application workload on a node and watch
//! the power capping react.
//!
//! Run with: `cargo run --example quickstart`

use davide::apps::workload::AppModel;
use davide::core::capping::PiCapController;
use davide::core::node::{ComputeNode, NodeLoad};
use davide::core::units::{Seconds, Watts};
use davide::core::Cluster;

fn main() {
    // 1. The machine as §II-I describes it: 4 OpenRack cabinets, 45
    //    compute nodes, dual-plane EDR fat-tree.
    let cluster = Cluster::davide();
    cluster.validate().expect("pilot configuration is legal");
    println!("=== {} pilot system ===", cluster.racks.len());
    println!("nodes:            {}", cluster.node_count());
    println!("peak:             {:.2} PFlops", cluster.peak().pflops());
    println!(
        "facility power:   {:.1} kW at full load",
        cluster.facility_power(NodeLoad::FULL).kw()
    );
    println!(
        "efficiency:       {:.1} GFlops/W",
        cluster.gflops_per_watt()
    );

    // 2. One compute node: 2× POWER8+ with NVLink, 4× Tesla P100.
    let node = ComputeNode::davide(0);
    println!("\n=== compute node ===");
    println!(
        "architectural peak: {:.1} TFlops",
        node.architectural_peak().tflops()
    );
    let (cpu, gpu, mem, other) = node.power_breakdown(NodeLoad::FULL);
    println!(
        "full-load power:    {:.0} W (cpu {:.0} + gpu {:.0} + mem {:.0} + other {:.0})",
        node.power(NodeLoad::FULL).0,
        cpu.0,
        gpu.0,
        mem.0,
        other.0
    );

    // 3. Run the four co-design applications and report their draw.
    println!("\n=== application power profiles ===");
    for kind in davide::apps::workload::AppKind::ALL {
        let model = AppModel::for_kind(kind);
        println!(
            "{:<18} mean {:>6.0} W   peak {:>6.0} W   largest phase {:>4.1}%",
            kind.name(),
            model.mean_node_power(&node).0,
            model.peak_node_power(&node).0,
            100.0 * model.max_phase_fraction()
        );
    }

    // 4. Arm a 1.5 kW node cap and watch the DVFS controller settle.
    println!("\n=== node power capping (cap = 1500 W) ===");
    let mut capped = ComputeNode::davide(1);
    let mut ctl = PiCapController::new(Watts(1500.0));
    for step in 0..12 {
        let s = ctl.step(&mut capped, NodeLoad::FULL, Seconds(0.1));
        println!(
            "t={:>4.1}s  power {:>7.1} W  action {:>2}  perf {:>5.1}%",
            step as f64 * 0.1,
            s.power.0,
            s.action,
            100.0 * s.perf_factor
        );
    }
    println!("\ndone — see examples/power_monitoring.rs for the telemetry side.");
}
