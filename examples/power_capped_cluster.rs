//! Power-aware system management (§III-A2): run the same 500-job trace
//! through FCFS, EASY backfill, reactive capping, and the proactive
//! predictor-driven dispatcher — under a 70 kW facility envelope — and
//! compare QoS, cap compliance and energy. Finishes with per-user
//! energy accounting (the "EA" box of Fig. 4).
//!
//! Run with: `cargo run --release --example power_capped_cluster`

use davide::predictor::ModelKind;
use davide::sched::{
    report, simulate, CapSchedule, EasyBackfill, EnergyLedger, Fcfs, PowerPredictor, SimConfig,
    SimReport, Tariff, WorkloadConfig, WorkloadGenerator,
};

fn row(r: &SimReport) {
    println!(
        "{:<22} {:>9.0} {:>9.0} {:>8.2} {:>8.1} {:>9.1} {:>9.3} {:>8.1}",
        r.policy,
        r.mean_wait_s,
        r.p95_wait_s,
        r.mean_slowdown,
        r.utilisation * 100.0,
        r.energy_kwh,
        r.overcap_fraction * 100.0,
        r.peak_power_w / 1000.0,
    );
}

fn main() {
    // Generate history + evaluation trace; train the power predictor on
    // the history exactly as the D.A.V.I.D.E. management node would.
    let cfg = WorkloadConfig {
        mean_interarrival_s: 45.0,
        ..WorkloadConfig::default()
    };
    let mut gen = WorkloadGenerator::new(cfg, 7);
    let history = gen.trace(2000);
    let mut trace = gen.trace(500);

    let predictor = PowerPredictor::from_kind(ModelKind::linreg(), &history, 24);
    println!(
        "trained ridge power predictor on {} historical jobs — MAPE {:.1} % on the new trace",
        history.len(),
        predictor.mape_on(&trace)
    );
    predictor.annotate(&mut trace);

    let cap_w = 70_000.0;
    println!(
        "\n=== 45-node cluster, {} jobs, facility envelope {} kW ===",
        trace.len(),
        cap_w / 1000.0
    );
    println!(
        "{:<22} {:>9} {:>9} {:>8} {:>8} {:>9} {:>9} {:>8}",
        "policy", "wait(s)", "p95(s)", "slowdn", "util%", "kWh", "ovrcap%", "peak kW"
    );

    // Uncapped baselines.
    row(&report(&simulate(&trace, &mut Fcfs, SimConfig::davide())));
    row(&report(&simulate(
        &trace,
        &mut EasyBackfill::new(),
        SimConfig::davide(),
    )));
    // Reactive-only: EASY ignores power; DVFS throttling holds the cap.
    row(&report(&simulate(
        &trace,
        &mut EasyBackfill::new(),
        SimConfig::davide().with_cap_schedule(CapSchedule::constant(cap_w), true),
    )));
    // Proactive-only: predictor-driven admission control.
    row(&report(&simulate(
        &trace,
        &mut EasyBackfill::power_aware(),
        SimConfig::davide().with_cap_schedule(CapSchedule::constant(cap_w), false),
    )));
    // Combined (the D.A.V.I.D.E. design): proactive + reactive safety net.
    let combined = simulate(
        &trace,
        &mut EasyBackfill::power_aware(),
        SimConfig::davide().with_cap_schedule(CapSchedule::constant(cap_w), true),
    );
    row(&report(&combined));

    // Energy accounting per user.
    let mut ledger = EnergyLedger::new();
    ledger.ingest(&combined);
    println!("\n=== top energy users (combined run) ===");
    println!(
        "{:<8} {:>6} {:>12} {:>12} {:>10}",
        "user", "jobs", "kWh", "node-hours", "cost (€)"
    );
    for (user, acct) in ledger.users_by_energy().into_iter().take(8) {
        println!(
            "user{:<4} {:>6} {:>12.1} {:>12.1} {:>10.2}",
            user,
            acct.jobs,
            acct.energy_j / 3.6e6,
            acct.node_seconds / 3600.0,
            acct.cost(Tariff::default())
        );
    }
    println!(
        "\nattributed {:.1} kWh to jobs; {:.1} kWh of idle floor absorbed by the centre",
        ledger.attributed_j() / 3.6e6,
        ledger.unattributed_j() / 3.6e6
    );
}
