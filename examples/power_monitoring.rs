//! The energy-gateway pipeline of §III-A1, live: a node's power signal
//! flows through the BeagleBone acquisition chain (sensor → 12-bit SAR
//! ADC @ 800 kS/s → hardware decimation to 50 kS/s → PTP timestamps) and
//! out over MQTT to three concurrent agents, while the related-work
//! baselines (HDEEM, PowerInsight, ArduPower, IPMI) measure the same
//! signal for comparison.
//!
//! Run with: `cargo run --release --example power_monitoring`

use davide::core::rng::Rng;
use davide::mqtt::{Broker, QoS};
use davide::telemetry::gateway::{node_filter, EnergyGateway, SampleFrame};
use davide::telemetry::monitor::all_chains;
use davide::telemetry::{run_sync_sim, EnergyIntegrator, SyncProtocol, WorkloadWaveform};

fn main() {
    let mut rng = Rng::seed_from(2017);

    // A GPU-bursty job on a ~1.7 kW node: the workload whose energy slow
    // monitors get wrong.
    let wave = WorkloadWaveform::gpu_burst(1700.0);
    let duration = 2.0;
    let truth = wave.render(800_000.0, duration, &mut rng.fork());
    println!(
        "ground truth: {:.1} J over {duration} s (mean {:.1} W, spectral content to ~10 kHz)",
        truth.energy().0,
        truth.mean().0
    );

    // --- The D.A.V.I.D.E. way: EG → MQTT → agents. ---
    let broker = Broker::default();
    let mut control = broker.connect("node-control-agent");
    let mut profiler = broker.connect("smart-profiler");
    let mut accounting = broker.connect("energy-accounting");
    for agent in [&mut control, &mut profiler, &mut accounting] {
        agent.subscribe(&node_filter(0), QoS::AtMostOnce).unwrap();
    }
    let mut eg = EnergyGateway::connect(&broker, 0, 42);
    let frames = eg.acquire_and_publish("node", &truth, 100.0);
    println!("\nEG published {frames} frames on davide/node00/power/node");

    let mut acc = EnergyIntegrator::new();
    for m in accounting.drain() {
        acc.push(&SampleFrame::decode(m.payload).unwrap());
    }
    let err = (acc.energy().0 - truth.energy().0).abs() / truth.energy().0 * 100.0;
    println!(
        "accounting agent reconstructed {:.1} J (error {err:.3} %), peak {:.0} W",
        acc.energy().0,
        acc.peak_power().0
    );
    println!(
        "fan-out: control agent got {} frames, profiler {} — same stream, no extra cost",
        control.drain().len(),
        profiler.drain().len()
    );
    let stats = broker.stats();
    println!(
        "broker stats: published {} delivered {} dropped {}",
        stats.published.load(std::sync::atomic::Ordering::Relaxed),
        stats.delivered.load(std::sync::atomic::Ordering::Relaxed),
        stats.dropped.load(std::sync::atomic::Ordering::Relaxed),
    );

    // --- The related-work comparison (§V-C / experiment E3). ---
    println!("\n=== monitoring chains on the same signal ===");
    println!(
        "{:<36} {:>10} {:>12} {:>12}",
        "chain", "rate", "energy err", "ts error"
    );
    for chain in all_chains(&mut rng) {
        let err = chain.energy_error(&truth, &mut rng);
        println!(
            "{:<36} {:>8.0}/s {:>10.3} % {:>11.0e}s",
            chain.name, chain.report_rate_hz, err, chain.timestamp_error_s
        );
    }

    // --- Time synchronisation (§III-A1 / [13] / experiment E5). ---
    println!("\n=== clock discipline (600 s simulated) ===");
    for proto in [
        SyncProtocol::ntp(),
        SyncProtocol::ptp_sw(),
        SyncProtocol::ptp_hw(),
    ] {
        let s = run_sync_sim(proto, 600.0, 7);
        println!(
            "{:<28} rms {:>10.3e} s   worst {:>10.3e} s",
            proto.name, s.rms_s, s.max_abs_s
        );
    }
    println!("\nhardware PTP keeps cross-node power traces alignable at 50 kS/s.");
}
