//! Co-design walkthrough (§IV): execute the real proxy kernels of the
//! four applications, place them on the node roofline, and use the
//! energy-proportionality APIs to shape the node around each job.
//!
//! Run with: `cargo run --release --example app_codesign`

use davide::apps::cg::conjugate_gradient;
use davide::apps::fft::{fft3, fft3_flops, Field3};
use davide::apps::gemm::{gemm_flops, matmul_blocked, Matrix};
use davide::apps::lattice::{EvenOddOp, Lattice4, LatticeOp};
use davide::apps::roofline::{kernel_intensities, Roofline};
use davide::apps::sem::SemMesh;
use davide::apps::stencil::{relax, OceanGrid};
use davide::apps::workload::{AppKind, AppModel};
use davide::apps::C64;
use davide::core::node::ComputeNode;
use std::time::Instant;

fn main() {
    println!("=== §IV proxy kernels, executed for real ===\n");

    // Quantum ESPRESSO: a 64³ 3-D FFT (the SCF workhorse).
    let n = 64;
    let mut field = Field3::from_fn(n, |x, y, z| {
        C64::new((x + y) as f64 * 0.01, z as f64 * 0.02)
    });
    let t = Instant::now();
    fft3(&mut field, false);
    fft3(&mut field, true);
    let dt = t.elapsed().as_secs_f64();
    println!(
        "QE     3-D FFT {n}³ fwd+inv:      {:>8.1} ms  ({:.2} GFlops sustained)",
        dt * 1e3,
        2.0 * fft3_flops(n) / dt / 1e9
    );

    // QE dense linear algebra: blocked GEMM.
    let a = Matrix::from_fn(512, 512, |i, j| ((i * 31 + j * 17) % 97) as f64 * 0.01);
    let b = Matrix::from_fn(512, 512, |i, j| ((i * 13 + j * 7) % 89) as f64 * 0.01);
    let t = Instant::now();
    let _c = matmul_blocked(&a, &b, 64);
    let dt = t.elapsed().as_secs_f64();
    println!(
        "QE     GEMM 512³ (blocked+rayon): {:>8.1} ms  ({:.2} GFlops sustained)",
        dt * 1e3,
        gemm_flops(512, 512, 512) / dt / 1e9
    );

    // NEMO: masked ocean stencil with a continent.
    let mut ocean = OceanGrid::from_fn(512, 256, |x, y| ((x ^ y) & 1) as f64);
    ocean.add_land(100, 60, 220, 140);
    let t = Instant::now();
    let residual = relax(&mut ocean, 0.8, 200);
    println!(
        "NEMO   stencil 512×256 ×200:      {:>8.1} ms  (final Δ {residual:.2e}, memory-bound)",
        t.elapsed().as_secs_f64() * 1e3
    );

    // SPECFEM3D: spectral-element CG solve.
    let mesh = SemMesh::new(256, 5, 0.4);
    let b_vec = vec![1.0; mesh.dofs()];
    let mut x = vec![0.0; mesh.dofs()];
    let t = Instant::now();
    let res = conjugate_gradient(&mesh, &b_vec, &mut x, 1e-10, 10_000);
    println!(
        "SEM    CG on {} DoFs:            {:>8.1} ms  ({} iterations, converged={})",
        mesh.dofs(),
        t.elapsed().as_secs_f64() * 1e3,
        res.iterations,
        res.converged
    );

    // BQCD: even/odd-preconditioned lattice CG vs the full system.
    let dims = [8, 8, 8, 8];
    let full_op = LatticeOp::new(Lattice4::new(dims), 0.25);
    let rhs: Vec<f64> = (0..full_op.lattice.volume())
        .map(|i| ((i * 37) % 11) as f64 - 5.0)
        .collect();
    let mut x_full = vec![0.0; rhs.len()];
    let t = Instant::now();
    let r_full = conjugate_gradient(&full_op, &rhs, &mut x_full, 1e-10, 50_000);
    let t_full = t.elapsed().as_secs_f64();
    let eo = EvenOddOp::new(LatticeOp::new(Lattice4::new(dims), 0.25));
    let b_e = eo.reduce_rhs(&rhs);
    let mut x_e = vec![0.0; eo.even_sites().len()];
    let t = Instant::now();
    let r_eo = conjugate_gradient(&eo, &b_e, &mut x_e, 1e-10, 50_000);
    let t_eo = t.elapsed().as_secs_f64();
    println!(
        "BQCD   lattice 8⁴ CG:  full {} iters / {:.1} ms   even-odd {} iters / {:.1} ms",
        r_full.iterations,
        t_full * 1e3,
        r_eo.iterations,
        t_eo * 1e3
    );

    // Roofline placement.
    println!(
        "\n=== roofline placement (P100: ridge at {:.1} flops/byte) ===",
        Roofline::p100().ridge_intensity()
    );
    let gpu = Roofline::p100();
    for (name, intensity) in kernel_intensities() {
        println!(
            "{:<28} {:>7.2} flops/byte → {:>8.0} GFlops attainable ({})",
            name,
            intensity,
            gpu.attainable(intensity).0,
            if gpu.memory_bound(intensity) {
                "memory-bound"
            } else {
                "compute-bound"
            }
        );
    }

    // Energy-proportionality APIs: shape the node per application.
    println!("\n=== §IV energy-proportionality: node shaped per job ===");
    let full_node = ComputeNode::davide(0);
    for kind in AppKind::ALL {
        let model = AppModel::for_kind(kind);
        let mut shaped = ComputeNode::davide(1);
        shaped.apply_shape(model.shape).unwrap();
        let p_full = model.mean_node_power(&full_node).0;
        let p_shaped = model.mean_node_power(&shaped).0;
        println!(
            "{:<18} full-node {:>6.0} W → shaped {:>6.0} W  ({:>5.1} % saved, shape {}g/{}c)",
            kind.name(),
            p_full,
            p_shaped,
            100.0 * (1.0 - p_shaped / p_full),
            model.shape.gpus,
            model.shape.cores_per_socket
        );
    }
}
