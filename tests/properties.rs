//! Property-based tests (proptest) on the invariants that hold across
//! the whole stack.

use davide::apps::cg::{conjugate_gradient, LinearOp};
use davide::apps::fft::fft_inplace;
use davide::apps::gemm::Matrix;
use davide::apps::lu::{hpl_residual, lu_factor};
use davide::apps::C64;
use davide::core::event::EventQueue;
use davide::core::power::PowerTrace;
use davide::core::time::SimTime;
use davide::mqtt::topic::{filter_matches, validate_filter, validate_topic};
use davide::sched::{NodePool, PlacementStrategy};
use davide::telemetry::decimation::boxcar_decimate;
use davide::telemetry::tsdb::{Resolution, TsDb};
use proptest::prelude::*;

fn topic_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z0-9]{1,6}", 1..5).prop_map(|v| v.join("/"))
}

proptest! {
    /// Every concrete topic matches itself, the `#` filter, and its own
    /// levels with any one replaced by `+`.
    #[test]
    fn topic_matching_axioms(topic in topic_strategy(), level in 0usize..5) {
        prop_assert!(validate_topic(&topic).is_ok());
        prop_assert!(filter_matches(&topic, &topic));
        prop_assert!(filter_matches("#", &topic));
        let mut parts: Vec<&str> = topic.split('/').collect();
        let idx = level % parts.len();
        parts[idx] = "+";
        let filter = parts.join("/");
        prop_assert!(validate_filter(&filter).is_ok());
        prop_assert!(filter_matches(&filter, &topic));
    }

    /// A `prefix/#` filter matches every extension of the prefix.
    #[test]
    fn hash_matches_all_extensions(prefix in topic_strategy(), ext in topic_strategy()) {
        let filter = format!("{prefix}/#");
        let topic = format!("{prefix}/{ext}");
        prop_assert!(filter_matches(&filter, &topic));
        prop_assert!(filter_matches(&filter, &prefix), "parent matches too");
    }

    /// Boxcar decimation preserves the mean exactly when the length is a
    /// multiple of the factor, for arbitrary signals.
    #[test]
    fn boxcar_preserves_mean(
        samples in proptest::collection::vec(0.0f64..4000.0, 16..256),
        factor in 1usize..8,
    ) {
        let n = (samples.len() / factor) * factor;
        if n == 0 { return Ok(()); }
        let tr = PowerTrace::new(SimTime::ZERO, 1e-5, samples[..n].to_vec());
        let out = boxcar_decimate(&tr, factor);
        prop_assert!((out.mean().0 - tr.mean().0).abs() < 1e-9 * tr.mean().0.max(1.0));
    }

    /// Trapezoidal energy is invariant under trace concatenation order
    /// and bounded by min/max power times duration.
    #[test]
    fn energy_bounds(samples in proptest::collection::vec(0.0f64..4000.0, 2..128)) {
        let tr = PowerTrace::new(SimTime::ZERO, 0.01, samples);
        let e = tr.energy().0;
        let d = (tr.len() - 1) as f64 * 0.01;
        prop_assert!(e >= tr.min().0 * d - 1e-9);
        prop_assert!(e <= tr.max().0 * d + 1e-9);
    }

    /// FFT⁻¹∘FFT ≡ identity for arbitrary signals (power-of-two sizes).
    #[test]
    fn fft_roundtrip(values in proptest::collection::vec(-100.0f64..100.0, 64)) {
        let mut data: Vec<C64> = values.iter().map(|&v| C64::real(v)).collect();
        fft_inplace(&mut data, false);
        fft_inplace(&mut data, true);
        for (z, &v) in data.iter().zip(&values) {
            prop_assert!((z.re - v).abs() < 1e-9);
            prop_assert!(z.im.abs() < 1e-9);
        }
    }

    /// The event queue pops in nondecreasing time order regardless of
    /// insertion order.
    #[test]
    fn event_queue_ordering(times in proptest::collection::vec(0u64..1_000_000, 1..64)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    /// CG on a diagonally-dominant (hence SPD) random tridiagonal system
    /// always converges and satisfies A·x ≈ b.
    #[test]
    fn cg_converges_on_spd(
        diag_boost in 0.1f64..5.0,
        rhs in proptest::collection::vec(-10.0f64..10.0, 32),
    ) {
        struct Tri { n: usize, d: f64 }
        impl LinearOp for Tri {
            fn dim(&self) -> usize { self.n }
            fn apply(&self, x: &[f64], y: &mut [f64]) {
                for i in 0..self.n {
                    let mut v = (2.0 + self.d) * x[i];
                    if i > 0 { v -= x[i - 1]; }
                    if i + 1 < self.n { v -= x[i + 1]; }
                    y[i] = v;
                }
            }
        }
        let op = Tri { n: rhs.len(), d: diag_boost };
        let mut x = vec![0.0; rhs.len()];
        let res = conjugate_gradient(&op, &rhs, &mut x, 1e-10, 10_000);
        prop_assert!(res.converged);
        let mut ax = vec![0.0; rhs.len()];
        op.apply(&x, &mut ax);
        for (a, b) in ax.iter().zip(&rhs) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    /// Scheduling conserves jobs and never starts a job before its
    /// submission, for arbitrary small traces.
    #[test]
    fn scheduler_conservation(
        seeds in proptest::collection::vec(1u64..1_000_000, 3..20),
    ) {
        use davide::apps::workload::AppKind;
        use davide::sched::{simulate, CapSchedule, EasyBackfill, Job, SimConfig};
        let trace: Vec<Job> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let nodes = 1 + (s % 8) as u32;
                let runtime = 60.0 + (s % 1000) as f64;
                Job::new(
                    i as u64 + 1,
                    (s % 5) as u32,
                    AppKind::ALL[(s % 4) as usize],
                    nodes,
                    i as f64 * 10.0,
                    runtime * 1.5,
                    runtime,
                    900.0 + (s % 900) as f64,
                )
            })
            .collect();
        let out = simulate(&trace, &mut EasyBackfill::new(), SimConfig {
            total_nodes: 8,
            idle_node_power_w: 350.0,
            cap: CapSchedule::Unlimited,
            reactive_capping: false,
            min_speed: 0.35,
            placement: None,
        });
        prop_assert_eq!(out.completed.len(), trace.len(), "all jobs complete");
        for j in &out.completed {
            let start = j.start_s.unwrap();
            let end = j.end_s.unwrap();
            prop_assert!(start >= j.submit_s - 1e-9);
            prop_assert!(end > start);
            // Without capping, runtime is exact.
            prop_assert!((end - start - j.true_runtime_s).abs() < 1e-6);
        }
        // Energy attribution never exceeds system energy.
        let attributed: f64 = out.job_energy_j.values().sum();
        prop_assert!(attributed <= out.total_energy_j() + 1e-6);
    }

    /// LU with pivoting solves every well-conditioned random system it
    /// is given, at any block size.
    #[test]
    fn lu_solves_random_systems(
        seed in 1u64..1_000_000,
        nb in 1usize..20,
        n in 4usize..24,
    ) {
        use davide::core::rng::Rng;
        let mut rng = Rng::seed_from(seed);
        // Diagonally-boosted random matrix: comfortably nonsingular.
        let a = Matrix::from_fn(n, n, |i, j| {
            let base = rng.uniform_in(-1.0, 1.0);
            if i == j { base + 4.0 } else { base }
        });
        let b: Vec<f64> = (0..n).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
        let f = lu_factor(&a, nb).expect("boosted diagonal is nonsingular");
        let x = f.solve(&b);
        prop_assert!(hpl_residual(&a, &x, &b) < 50.0);
    }

    /// Placement never loses or duplicates nodes across arbitrary
    /// allocate/release sequences.
    #[test]
    fn placement_conserves_nodes(ops in proptest::collection::vec(1u32..12, 1..20)) {
        use davide::core::interconnect::FatTree;
        let mut pool = NodePool::new(FatTree::davide(45));
        let mut held: Vec<Vec<u32>> = Vec::new();
        for (i, &n) in ops.iter().enumerate() {
            if i % 3 == 2 && !held.is_empty() {
                let a = held.swap_remove(0);
                pool.release(&a);
            } else if let Some(a) = pool.allocate(n, PlacementStrategy::LeafAware) {
                // No duplicates within an allocation.
                let set: std::collections::HashSet<u32> = a.iter().copied().collect();
                prop_assert_eq!(set.len(), a.len());
                held.push(a);
            }
        }
        let held_count: usize = held.iter().map(Vec::len).sum();
        prop_assert_eq!(pool.free_count() + held_count, 45);
        // All held nodes distinct across allocations.
        let all: std::collections::HashSet<u32> =
            held.iter().flatten().copied().collect();
        prop_assert_eq!(all.len(), held_count);
    }

    /// The time-series DB's second rollup mean always lies within the
    /// min/max of the raw points it summarises.
    #[test]
    fn tsdb_rollup_bounded_by_raw(
        values in proptest::collection::vec(0.0f64..4000.0, 10..200),
    ) {
        let mut db = TsDb::with_capacity(10_000, 1_000);
        let sid = db.resolve("s");
        for (i, &v) in values.iter().enumerate() {
            db.append_id(sid, i as f64 * 0.1, v);
        }
        db.flush();
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for p in db.query_id(sid, Resolution::Second, 0.0, 1e9) {
            prop_assert!(p.v >= lo - 1e-9 && p.v <= hi + 1e-9);
        }
        prop_assert_eq!(db.count_id(sid), values.len() as u64);
    }

    /// A `SampleFrame` survives the wire byte-exactly: encode ∘ decode
    /// is the identity on timestamps, spacing, and every f32 sample.
    #[test]
    fn sample_frame_roundtrip(
        t0 in 0.0f64..1e6,
        dt in 1e-7f64..1.0,
        watts in proptest::collection::vec(0.0f32..4000.0, 0..600),
    ) {
        use davide::telemetry::gateway::SampleFrame;
        let frame = SampleFrame { t0_s: t0, dt_s: dt, watts };
        let wire = frame.encode();
        prop_assert_eq!(wire.len(), 24 + 4 * frame.watts.len());
        let back = SampleFrame::decode(wire).expect("well-formed frame");
        prop_assert_eq!(back, frame);
    }

    /// Every strict truncation of a valid frame payload is rejected:
    /// either the header is incomplete or the body is shorter than the
    /// declared sample count.
    #[test]
    fn sample_frame_rejects_truncation(
        watts in proptest::collection::vec(0.0f32..4000.0, 1..64),
        cut_seed in 0usize..10_000,
    ) {
        use davide::telemetry::gateway::SampleFrame;
        let frame = SampleFrame { t0_s: 1.5, dt_s: 2e-5, watts };
        let wire = frame.encode();
        let cut = cut_seed % wire.len(); // strictly shorter than full
        let truncated = bytes::Bytes::from(wire.as_slice()[..cut].to_vec());
        prop_assert!(SampleFrame::decode(truncated).is_none());
    }

    /// Corrupting any single byte of the header either still decodes
    /// (timestamp bits changed) or is rejected — it never panics — and
    /// corrupting a magic byte is always rejected.
    #[test]
    fn sample_frame_rejects_corrupt_magic(
        watts in proptest::collection::vec(0.0f32..4000.0, 1..32),
        pos in 0usize..24,
        flip in 1u8..255,
    ) {
        use davide::telemetry::gateway::SampleFrame;
        let frame = SampleFrame { t0_s: 9.0, dt_s: 1e-3, watts };
        let mut raw = frame.encode().to_vec();
        raw[pos] ^= flip;
        let decoded = SampleFrame::decode(bytes::Bytes::from(raw));
        if pos < 4 {
            prop_assert!(decoded.is_none(), "corrupt magic must be rejected");
        }
    }

    /// A header whose declared sample count exceeds what the body holds
    /// is rejected, up to and including counts whose byte size would
    /// overflow the length arithmetic.
    #[test]
    fn sample_frame_rejects_declared_length_overflow(
        present in 0usize..32,
        excess in 1u32..1000,
        huge in any::<bool>(),
    ) {
        use bytes::{BufMut, Bytes, BytesMut};
        use davide::telemetry::gateway::{SampleFrame, FRAME_MAGIC};
        let declared: u32 = if huge {
            u32::MAX - excess // ~4 Gi samples: byte size tests the overflow guard
        } else {
            present as u32 + excess
        };
        let mut buf = BytesMut::new();
        buf.put_u32_le(FRAME_MAGIC);
        buf.put_f64_le(0.0);
        buf.put_f64_le(2e-5);
        buf.put_u32_le(declared);
        for i in 0..present {
            buf.put_f32_le(i as f32);
        }
        prop_assert!(SampleFrame::decode(Bytes::from(buf.to_vec())).is_none());
    }

    /// The MQTT wire decoder survives arbitrary garbage: it yields
    /// packets, asks for more bytes, or reports a codec error — it
    /// never panics and never loops without consuming input.
    #[test]
    fn mqtt_decode_survives_garbage(raw in proptest::collection::vec(any::<u8>(), 0..512)) {
        use bytes::BytesMut;
        use davide::mqtt::codec::decode;
        let mut buf = BytesMut::from(&raw[..]);
        // Each Ok(Some) consumes at least a header byte, so the stream
        // drains in at most len(raw) iterations.
        for _ in 0..=raw.len() {
            match decode(&mut buf) {
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => break,
            }
        }
    }

    /// encode ∘ decode is the identity on every packet kind the stack
    /// uses, and the decoder consumes exactly the encoded bytes.
    #[test]
    fn mqtt_codec_roundtrip(
        kind in 0usize..11,
        topic in topic_strategy(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        id in 1u16..u16::MAX,
        flags in 0u8..8,
    ) {
        use bytes::{Bytes, BytesMut};
        use davide::mqtt::codec::{decode, encode};
        use davide::mqtt::{Packet, QoS};
        let qos = if flags & 1 == 0 { QoS::AtMostOnce } else { QoS::AtLeastOnce };
        let pkt = match kind {
            0 => Packet::Connect {
                client_id: topic,
                keep_alive: id,
                clean_session: flags & 2 != 0,
            },
            1 => Packet::ConnAck { session_present: flags & 2 != 0, code: flags },
            2 => Packet::Publish {
                topic,
                payload: Bytes::from(payload),
                qos,
                retain: flags & 2 != 0,
                dup: flags & 4 != 0,
                // Present iff QoS > 0 — the wire format has no id slot
                // at QoS 0.
                packet_id: (qos != QoS::AtMostOnce).then_some(id),
            },
            3 => Packet::PubAck { packet_id: id },
            4 => Packet::Subscribe {
                packet_id: id,
                filters: vec![(topic, qos), ("davide/#".into(), QoS::AtMostOnce)],
            },
            5 => Packet::SubAck { packet_id: id, return_codes: vec![0, 1, 0x80] },
            6 => Packet::Unsubscribe { packet_id: id, filters: vec![topic] },
            7 => Packet::UnsubAck { packet_id: id },
            8 => Packet::PingReq,
            9 => Packet::PingResp,
            _ => Packet::Disconnect,
        };
        let mut buf = BytesMut::new();
        encode(&pkt, &mut buf);
        let back = decode(&mut buf).expect("well-formed").expect("complete");
        prop_assert_eq!(back, pkt);
        prop_assert!(buf.is_empty(), "decoder consumes the exact packet");
    }

    /// Every strict truncation of a valid wire packet is incomplete:
    /// the stream decoder returns Ok(None) (waiting for the rest) and
    /// leaves the buffer untouched — it never fabricates a packet.
    #[test]
    fn mqtt_decode_waits_on_truncation(
        topic in topic_strategy(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        cut_seed in 0usize..10_000,
    ) {
        use bytes::{Bytes, BytesMut};
        use davide::mqtt::codec::{decode, encode};
        use davide::mqtt::{Packet, QoS};
        let pkt = Packet::Publish {
            topic,
            payload: Bytes::from(payload),
            qos: QoS::AtLeastOnce,
            retain: false,
            dup: false,
            packet_id: Some(7),
        };
        let mut wire = BytesMut::new();
        encode(&pkt, &mut wire);
        let cut = cut_seed % wire.len(); // strictly shorter than full
        let mut buf = BytesMut::from(&wire[..cut]);
        prop_assert!(decode(&mut buf).expect("prefix is never malformed").is_none());
        prop_assert_eq!(buf.len(), cut, "incomplete input is left untouched");
    }

    /// MQTT session packet ids are unique among in-flight publishes for
    /// arbitrary publish/ack interleavings.
    #[test]
    fn session_packet_ids_unique(acks in proptest::collection::vec(any::<bool>(), 1..100)) {
        use bytes::Bytes;
        use davide::mqtt::{Packet, QoS, Session};
        let mut s = Session::new("c", 60.0);
        let _ = s.connect_packet(0.0, true);
        s.handle(0.0, Packet::ConnAck { session_present: false, code: 0 });
        let mut in_flight: Vec<u16> = Vec::new();
        for (i, &ack) in acks.iter().enumerate() {
            if ack && !in_flight.is_empty() {
                let id = in_flight.remove(0);
                s.handle(i as f64, Packet::PubAck { packet_id: id });
            } else if let Packet::Publish { packet_id: Some(id), .. } =
                s.publish_packet(i as f64, "t", Bytes::new(), QoS::AtLeastOnce, false)
            {
                prop_assert!(!in_flight.contains(&id), "id {} reused", id);
                prop_assert!(id != 0);
                in_flight.push(id);
            }
        }
        prop_assert_eq!(s.in_flight_count(), in_flight.len());
    }
}

fn shard_topic() -> impl Strategy<Value = String> {
    proptest::collection::vec("[abc]", 1..4).prop_map(|v| v.join("/"))
}

/// Filters over the same tiny alphabet, with `+` levels and `#` — the
/// alphabet is small enough that random topic/filter pairs really
/// collide, wildcard and exact alike. A `#` drawn anywhere but the last
/// level would be invalid, so it degrades to a literal there.
fn shard_filter() -> impl Strategy<Value = String> {
    proptest::collection::vec("[abc+#]", 1..4).prop_map(|v| {
        let last = v.len() - 1;
        let levels: Vec<String> = v
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                if s == "#" && i != last {
                    "a".to_string()
                } else {
                    s
                }
            })
            .collect();
        levels.join("/")
    })
}

proptest! {
    /// The sharded subscription trie is observationally identical to the
    /// single-lock one: for arbitrary topic/filter sets (`+`/`#`
    /// included), every subscriber drains the same message sequence
    /// whatever the shard count.
    #[test]
    fn sharded_broker_matches_like_single(
        topics in proptest::collection::vec(shard_topic(), 1..12),
        filters in proptest::collection::vec(shard_filter(), 1..8),
    ) {
        use davide::mqtt::{Broker, QoS};
        let run = |shards: usize| -> Vec<Vec<(String, Vec<u8>)>> {
            let broker = Broker::with_shards(1024, shards);
            let mut subs: Vec<_> = filters
                .iter()
                .enumerate()
                .map(|(i, f)| {
                    let mut c = broker.connect(format!("s{i}"));
                    c.subscribe(f, QoS::AtMostOnce).unwrap();
                    c
                })
                .collect();
            let p = broker.connect("pub");
            for (j, t) in topics.iter().enumerate() {
                let _ = p.publish_str(t, &format!("m{j}"));
            }
            subs.iter_mut()
                .map(|c| c.drain().into_iter().map(|m| (m.topic, m.payload.to_vec())).collect())
                .collect()
        };
        let single = run(1);
        for n in [2usize, 3, 8] {
            prop_assert_eq!(&single, &run(n), "shard count {}", n);
        }
    }
}
