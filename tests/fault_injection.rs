//! Tier-1 integration suite for the deterministic fault-injection
//! harness: the canned scenario set must hold every invariant, runs
//! must be bit-identical per seed, the checker must catch seeded
//! regressions, and randomly scripted scenarios (proptest) must hold
//! the invariants too.

use davide_sim::scenario::{canned, open_loop_overcap_demo, stale_fallback_regression_demo};
use davide_sim::{run, run_with_db_config, Event, Fault, Scenario};
use davide_telemetry::{TieringConfig, TsDbConfig};
use proptest::prelude::*;

#[test]
fn canned_scenarios_hold_every_invariant() {
    for sc in canned(2026) {
        let out = run(&sc);
        assert!(
            out.violations.is_empty(),
            "{}: {:?}",
            sc.name,
            out.violations
        );
        assert_eq!(
            out.report.jobs_completed as usize, sc.n_jobs,
            "{}: trace must complete",
            sc.name
        );
        assert!(out.truth.total_energy_j > 0.0);
    }
}

#[test]
fn tiering_leaves_every_canned_digest_unchanged() {
    // The tiered-storage determinism contract: running the whole
    // fault-injection stack over a store that aggressively seals hot
    // points into Gorilla-compressed blocks (64-point blocks, 64
    // points kept hot) produces bit-identical event logs — the loop's
    // telemetry means fold the same chronological f64 sequence whether
    // the points come from the hot ring or from decoded blocks.
    let tiered = TsDbConfig {
        tiering: Some(TieringConfig {
            seal_block: 64,
            hot_retain: Some(64),
            ..TieringConfig::default()
        }),
        ..TsDbConfig::default()
    };
    for sc in canned(2026) {
        let base = run(&sc);
        let with_tiers = run_with_db_config(&sc, tiered.clone());
        assert_eq!(
            base.log.digest(),
            with_tiers.log.digest(),
            "{}: tiering must not change the event log",
            sc.name
        );
        assert_eq!(base.log, with_tiers.log, "{}", sc.name);
        assert!(
            with_tiers.violations.is_empty(),
            "{}: {:?}",
            sc.name,
            with_tiers.violations
        );
    }
}

#[test]
fn broker_shard_count_leaves_every_canned_digest_unchanged() {
    // The sharding determinism contract: every subscription that can
    // match a topic lives on that topic's shard, trie traversal order
    // inside a shard is the old global order, and the fault hook stays
    // a single global sequence point — so the event log cannot tell an
    // 8-shard broker from a single-lock one.
    for sc in canned(2026) {
        let mut single = sc.clone();
        single.broker_shards = Some(1);
        let mut sharded = sc.clone();
        sharded.broker_shards = Some(8);
        let a = run(&single);
        let b = run(&sharded);
        assert_eq!(
            a.log.digest(),
            b.log.digest(),
            "{}: shard count must not change the event log",
            sc.name
        );
        assert_eq!(a.log, b.log, "{}", sc.name);
    }
}

#[test]
fn same_seed_is_bit_identical_and_seeds_diverge() {
    let sc = canned(7).remove(1); // gateway_dropout
    let a = run(&sc);
    let b = run(&sc);
    assert_eq!(a.log, b.log, "same seed → same event log, bit for bit");
    assert_eq!(a.log.digest(), b.log.digest());
    assert_eq!(a.report, b.report, "same seed → same report");

    let mut other = sc.clone();
    other.seed = 8;
    let c = run(&other);
    assert_ne!(a.log.digest(), c.log.digest(), "different seed diverges");
}

#[test]
fn disabling_stale_fallback_is_caught() {
    // The sabotaged loop keeps steering on frozen samples during a
    // dropout; INV-STALE must flag both the estimates and the missing
    // accounting.
    let out = run(&stale_fallback_regression_demo(2026));
    assert!(
        out.violations
            .iter()
            .any(|v| v.invariant == "stale-fallback"),
        "frozen estimates must be flagged: {:?}",
        out.violations
    );
    assert!(
        out.violations
            .iter()
            .any(|v| v.invariant == "stale-accounting"),
        "missing stale accounting must be flagged: {:?}",
        out.violations
    );

    // The identical scenario with the fallback armed is clean.
    let mut healthy = stale_fallback_regression_demo(2026);
    healthy.disable_stale_fallback = false;
    let out = run(&healthy);
    assert!(out.violations.is_empty(), "{:?}", out.violations);
    assert!(
        out.report.stale_node_s > 0.0,
        "the healthy loop owns its stale seconds"
    );
}

#[test]
fn open_loop_overcap_is_caught_and_closed_loop_survives_it() {
    let demo = open_loop_overcap_demo(2026);
    let out = run(&demo);
    assert!(
        out.violations.iter().any(|v| v.invariant == "cap"),
        "open loop under a 30% drift must blow the envelope: {:?}",
        out.violations
    );

    let mut closed = demo.clone();
    closed.mode = davide_sched::ControlMode::ClosedLoop;
    closed.name = "closed_loop_same_plant".into();
    let out = run(&closed);
    assert!(
        out.violations.is_empty(),
        "the reactive ladder must keep the same plant inside the \
         envelope: {:?}",
        out.violations
    );
}

#[test]
fn broker_restart_replays_retained_speed_limits() {
    let sc = canned(2026).remove(5); // broker_restart
    assert_eq!(sc.name, "broker_restart");
    let out = run(&sc);
    assert!(out.violations.is_empty(), "{:?}", out.violations);
    let replayed = out
        .log
        .events()
        .iter()
        .find_map(|e| match *e {
            Event::BrokerUp { replayed, .. } => Some(replayed),
            _ => None,
        })
        .expect("the outage must end with a reconnect");
    assert!(
        replayed > 0,
        "the tight cap forces DVFS commands before the outage, so the \
         reconnect must replay retained limits"
    );
    assert!(
        out.log
            .events()
            .iter()
            .any(|e| matches!(*e, Event::Speed { replayed: true, .. })),
        "replayed limits must be applied by the reconnecting agents"
    );
}

#[test]
fn node_death_aborts_jobs_and_stays_clean() {
    let sc = canned(2026).remove(6); // node_death
    assert_eq!(sc.name, "node_death");
    let out = run(&sc);
    assert!(out.violations.is_empty(), "{:?}", out.violations);
    assert!(out.truth.aborted_jobs > 0, "the dead node must kill a job");
    assert!(out
        .log
        .events()
        .iter()
        .any(|e| matches!(*e, Event::NodeUp { .. })));
}

/// One bounded random fault, drawn from the workspace's seeded RNG (the
/// vendored proptest shim has no `prop_oneof`, so scripts derive from a
/// single drawn seed — equally random, equally reproducible).
fn random_fault(rng: &mut davide_core::rng::Rng, n_nodes: u32) -> Fault {
    let node = rng.below(n_nodes as u64) as u32;
    let from = 50.0 + rng.uniform() * 550.0;
    let len = 30.0 + rng.uniform() * 270.0;
    match rng.below(8) {
        0 => Fault::FrameLoss {
            node: rng.chance(0.5).then_some(node),
            p: 0.05 + rng.uniform() * 0.45,
            from_s: from,
            until_s: from + len,
        },
        1 => Fault::Dropout {
            node,
            from_s: from,
            until_s: from + len,
        },
        2 => Fault::Duplicate {
            node: rng.chance(0.5).then_some(node),
            p: 0.05 + rng.uniform() * 0.25,
            from_s: from,
            until_s: from + len,
        },
        3 => Fault::Reorder {
            node,
            p: 0.1 + rng.uniform() * 0.5,
            delay_ticks: 1 + rng.below(3) as u32,
            from_s: from,
            until_s: from + len,
        },
        4 => Fault::ClockSkew {
            node,
            ppm: 100.0 + rng.uniform() * 2900.0,
            from_s: from,
            until_s: from + len,
        },
        5 => Fault::ClockStep {
            node,
            offset_s: -25.0 + rng.uniform() * 50.0,
            at_s: from,
        },
        6 => Fault::BrokerRestart {
            from_s: from,
            until_s: from + 20.0 + rng.uniform() * 100.0,
        },
        _ => Fault::NodeDeath {
            node,
            at_s: from,
            revive_s: from + 50.0 + rng.uniform() * 350.0,
        },
    }
}

/// A small random scenario: 4 nodes, 5 jobs, 0–3 bounded faults.
fn random_scenario(seed: u64) -> Scenario {
    let mut rng = davide_core::rng::Rng::seed_from(seed ^ 0x5ca1_ab1e);
    let mut sc = Scenario::base("proptest_random", seed);
    sc.n_nodes = 4;
    sc.cap_w = 6_500.0;
    sc.n_jobs = 5;
    sc.n_history = 200;
    sc.mean_walltime_s = 900.0;
    sc.mean_interarrival_s = 90.0;
    let n_faults = rng.below(4) as usize;
    sc.faults = (0..n_faults).map(|_| random_fault(&mut rng, 4)).collect();
    sc
}

proptest! {
    /// Any bounded random fault script: the trace completes, every
    /// invariant holds, and a rerun is bit-reproducible.
    #[test]
    fn random_fault_scripts_hold_invariants(seed in 0u64..u64::MAX / 2) {
        let sc = random_scenario(seed);
        let out = run(&sc);
        prop_assert!(
            out.violations.is_empty(),
            "seed {} faults {:?}: {:?}",
            sc.seed, sc.faults, out.violations
        );
        prop_assert_eq!(out.report.jobs_completed as usize, sc.n_jobs);
        if seed % 8 == 0 {
            let again = run(&sc);
            prop_assert_eq!(out.log.digest(), again.log.digest());
        }
    }
}
