//! Integration: the full batch front-end — partitions validate and
//! prioritise submissions, the power-aware policy dispatches them, the
//! simulator places them on the fat-tree, and accounting closes the
//! books.

use davide::apps::workload::AppKind;
use davide::sched::{
    davide_partitions, simulate, CapSchedule, EasyBackfill, EnergyLedger, Job, PartitionedQueue,
    PlacementStrategy, SimConfig,
};

fn job(id: u64, user: u32, nodes: u32, submit: f64, walltime: f64, runtime: f64) -> Job {
    Job::new(
        id,
        user,
        AppKind::Bqcd,
        nodes,
        submit,
        walltime,
        runtime,
        1500.0,
    )
}

#[test]
fn partitioned_submissions_flow_through_the_whole_stack() {
    let mut queue = PartitionedQueue::new(davide_partitions());

    // A mix of users and partitions; one submission violates its
    // partition and must be rejected at the front door.
    queue
        .submit(job(1, 10, 16, 0.0, 4.0 * 3600.0, 7_200.0), "batch")
        .unwrap();
    queue
        .submit(job(2, 11, 2, 60.0, 900.0, 600.0), "debug")
        .unwrap();
    queue
        .submit(job(3, 12, 8, 120.0, 48.0 * 3600.0, 90_000.0), "long")
        .unwrap();
    queue
        .submit(job(4, 13, 40, 180.0, 3_600.0, 1_800.0), "batch")
        .expect_err("40 nodes exceeds the batch partition limit");
    queue
        .submit(job(5, 10, 4, 240.0, 3_600.0, 2_400.0), "batch")
        .unwrap();
    assert_eq!(queue.len(), 4);

    // Dispatch order respects partition priority: debug job 2 first.
    let ordered = queue.ordered_jobs();
    assert_eq!(ordered[0].id, 2);

    // The simulator needs submission-ordered input; re-sort by submit
    // time (partition priority acts at dispatch time via queue order —
    // here all jobs fit immediately so the distinction is moot).
    let mut trace = ordered;
    trace.sort_by(|a, b| a.submit_s.total_cmp(&b.submit_s));

    let out = simulate(
        &trace,
        &mut EasyBackfill::power_aware().with_aging(3_600.0),
        SimConfig::davide()
            .with_cap_schedule(CapSchedule::constant(70_000.0), true)
            .with_placement(PlacementStrategy::LeafAware),
    );
    assert_eq!(out.completed.len(), 4, "all admitted jobs complete");
    assert_eq!(out.overcap_time_fraction(), 0.0);

    // Placement recorded for every job; multi-node jobs have small
    // diameters on the lightly-loaded machine.
    for j in &out.completed {
        let alloc = &out.placements[&j.id];
        assert_eq!(alloc.len() as u32, j.nodes);
        if j.nodes > 1 {
            assert!(out.diameters[&j.id] <= 4);
        }
    }
    // The 16-node job cannot fit one 18-node leaf after the others are
    // placed — but on this trace it starts first among the big ones;
    // either way the simulator's accounting still balances:
    let mut ledger = EnergyLedger::new();
    ledger.ingest(&out);
    let balance = ledger.attributed_j() + ledger.unattributed_j() - out.total_energy_j();
    assert!(balance.abs() < 1e-3, "books balance: {balance}");
    // Users 10..13 are all present except the rejected 13.
    assert!(ledger.user(10).is_some());
    assert!(ledger.user(13).is_none(), "rejected job never ran");
}
