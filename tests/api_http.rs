//! HTTP conformance and differential tests for the `davide-api`
//! front-end (ISSUE 7 satellite c).
//!
//! Conformance: hostile traffic — malformed request lines, oversized
//! headers/bodies, truncated requests, bad UTF-8 — never panics a
//! worker, always maps to the documented 4xx (or a silent drop), and
//! keep-alive vs `Connection: close` semantics hold.
//!
//! Differential: every `/v1/*` and `/health` response body over the
//! real socket is bit-identical to serialising the same
//! [`QueryService`] answer in-process — the HTTP layer adds transport,
//! never meaning.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};

use davide_api::{
    ApiServer, ApiServerConfig, HttpClient, JobProfileRequest, JobRollupRequest, QueryOp,
    QueryRequest, QueryService, QueryServiceConfig, RunningServer, UserRollupRequest,
};
use davide_obs::{flight, GrantStage, ObsHub};
use davide_sched::{
    simulate, Fcfs, PlacementStrategy, SimConfig, WorkloadConfig, WorkloadGenerator,
};
use davide_telemetry::gateway::power_topic;
use davide_telemetry::{Resolution, ShardedTsDb};

/// A served fixture: accounting state from a small simulated campaign
/// plus telemetry frames covering one placed job's runtime window.
struct Fixture {
    svc: QueryService<ShardedTsDb>,
    server: RunningServer,
    job_id: u64,
    series: String,
    window: (f64, f64),
}

fn fixture() -> Fixture {
    let hub = ObsHub::monotonic();
    let svc = QueryService::over_store(
        ShardedTsDb::new(4, 1 << 16, 1 << 12),
        &hub,
        QueryServiceConfig::default(),
    );
    let mut gen = WorkloadGenerator::new(WorkloadConfig::default(), 0xBEEF);
    let trace = gen.trace(12);
    let outcome = simulate(
        &trace,
        &mut Fcfs,
        SimConfig::davide().with_placement(PlacementStrategy::FirstFit),
    );
    svc.ingest_outcome(&outcome, |n| power_topic(n, "node"));
    let job = outcome
        .completed
        .iter()
        .find(|j| outcome.placements.get(&j.id).is_some_and(|p| !p.is_empty()))
        .expect("a placed job");
    let (t0, t1) = (job.start_s.unwrap_or(0.0), job.end_s.unwrap_or(0.0));
    let dt = ((t1 - t0) / 256.0).max(1e-3);
    let watts: Vec<f32> = (0..256)
        .map(|i| 1600.0 + 150.0 * ((i as f32) * 0.07).sin())
        .collect();
    {
        let store = svc.store();
        let mut store = store.write();
        for &node in &outcome.placements[&job.id] {
            store.append_frame(&power_topic(node, "node"), t0, dt, &watts);
        }
    }
    let series = power_topic(outcome.placements[&job.id][0], "node");
    let server = ApiServer::start(svc.clone(), ApiServerConfig::default()).expect("server start");
    Fixture {
        svc,
        server,
        job_id: job.id,
        series,
        window: (t0, t1),
    }
}

/// Send raw bytes on a fresh connection and return everything the
/// server answers before closing (empty if it just drops us).
fn raw_exchange(fx: &Fixture, bytes: &[u8]) -> String {
    let mut s = TcpStream::connect(fx.server.addr()).expect("connect");
    s.write_all(bytes).expect("write");
    s.shutdown(Shutdown::Write).expect("shutdown write");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read");
    out
}

fn status_of(response: &str) -> Option<u16> {
    response.split(' ').nth(1)?.parse().ok()
}

// ---------------------------------------------------------------- //
// Differential: HTTP body == direct service answer, byte for byte. //
// ---------------------------------------------------------------- //

#[test]
fn every_endpoint_is_bit_identical_to_the_direct_call() {
    let fx = fixture();
    let (t0, t1) = fx.window;
    let mut c = HttpClient::connect(fx.server.addr()).expect("connect");

    let (status, body) = c.request("GET", "/health", "").expect("health");
    assert_eq!(status, 200);
    assert_eq!(body, serde_json::to_string(&fx.svc.health().to_value()));

    // Every op over the placed job's series, plus a wildcard filter.
    let mut queries: Vec<QueryRequest> = [
        QueryOp::Points,
        QueryOp::Mean,
        QueryOp::Energy,
        QueryOp::Last,
    ]
    .into_iter()
    .map(|op| QueryRequest::series(op, &fx.series, Resolution::Raw, t0, t1))
    .collect();
    queries.push(QueryRequest::filter(
        QueryOp::Energy,
        "davide/+/power/node",
        Resolution::Raw,
        t0,
        t1,
    ));
    for q in &queries {
        let wire = serde_json::to_string(&q.to_value());
        let (status, body) = c.request("POST", "/v1/query", &wire).expect("query");
        assert_eq!(status, 200, "query {wire}");
        let direct = fx.svc.query(q).expect("direct query");
        assert_eq!(body, serde_json::to_string(&direct.to_value()), "{wire}");
    }

    for req in [
        UserRollupRequest { user_id: None },
        UserRollupRequest {
            user_id: Some(
                fx.svc
                    .rollup_user(&UserRollupRequest { user_id: None })
                    .unwrap()
                    .users[0]
                    .user_id,
            ),
        },
    ] {
        let wire = serde_json::to_string(&req.to_value());
        let (status, body) = c.request("POST", "/v1/rollup/user", &wire).expect("rollup");
        assert_eq!(status, 200);
        let direct = fx.svc.rollup_user(&req).expect("direct rollup");
        assert_eq!(body, serde_json::to_string(&direct.to_value()));
    }

    for measured in [false, true] {
        let req = JobRollupRequest {
            job_id: fx.job_id,
            measured,
        };
        let wire = serde_json::to_string(&req.to_value());
        let (status, body) = c
            .request("POST", "/v1/rollup/job", &wire)
            .expect("job rollup");
        assert_eq!(status, 200);
        let direct = fx.svc.rollup_job(&req).expect("direct job rollup");
        assert_eq!(body, serde_json::to_string(&direct.to_value()));
    }

    let req = JobProfileRequest {
        job_id: fx.job_id,
        decimate: 4,
    };
    let wire = serde_json::to_string(&req.to_value());
    let (status, body) = c
        .request("POST", "/v1/profile/job", &wire)
        .expect("profile");
    assert_eq!(status, 200);
    let direct = fx.svc.profile_job(&req).expect("direct profile");
    assert_eq!(body, serde_json::to_string(&direct.to_value()));
}

#[test]
fn observability_endpoints_are_bit_identical_to_the_direct_call() {
    let fx = fixture();

    // Attach two rack hubs carrying deterministic span, flight and
    // counter state — the shape a federated harness leaves behind.
    for rack in 0..2u64 {
        let (hub, _clock) = ObsHub::manual();
        let t0 = 100.0 * (rack + 1) as f64;
        for (k, stage) in [
            GrantStage::FedSplit,
            GrantStage::BridgeDeliver,
            GrantStage::RackReceive,
            GrantStage::CapCommand,
            GrantStage::PowerCrossing,
        ]
        .into_iter()
        .enumerate()
        {
            hub.span.stamp(7, stage, t0 + k as f64);
        }
        hub.span.close(7);
        let cap = 8_000.0 + rack as f64;
        let t_ns = (t0 * 1e9) as u64;
        hub.flight
            .push(t_ns, flight::kind::FED_SPLIT, "", 7, cap.to_bits());
        hub.flight
            .push(t_ns + 5, flight::kind::CAP_COMMAND, "", 7, cap.to_bits());
        hub.flight.push(
            t_ns + 9,
            flight::kind::VIOLATION,
            "INV-CAP",
            0,
            t0.to_bits(),
        );
        hub.registry.counter("rack_jobs_total").add(3 + rack);
        fx.svc.attach_rack_obs(&format!("rack{rack:02}"), &hub);
    }

    let mut c = HttpClient::connect(fx.server.addr()).expect("connect");

    let (status, body) = c.request("GET", "/v1/trace/grants", "").expect("trace");
    assert_eq!(status, 200);
    let direct = fx.svc.trace_grants();
    assert_eq!(body, serde_json::to_string(&direct.to_value()));
    assert_eq!(direct.racks.len(), 2);
    assert_eq!(direct.racks[0].completed, 1);
    assert_eq!(direct.racks[0].spans.len(), 1);
    assert_eq!(direct.racks[0].spans[0].events.len(), 2);

    let (status, body) = c.request("GET", "/v1/obs/metrics", "").expect("metrics");
    assert_eq!(status, 200);
    let direct = fx.svc.obs_metrics();
    assert_eq!(body, serde_json::to_string(&direct.to_value()));
    // Federation rollup: counters sum across the attached racks.
    let jobs = direct
        .counters
        .iter()
        .find(|(n, _)| n == "rack_jobs_total")
        .expect("rolled up");
    assert_eq!(jobs.1, 3 + 4);

    let (status, body) = c.request("GET", "/v1/obs/flight", "").expect("flight");
    assert_eq!(status, 200);
    let direct = fx.svc.obs_flight();
    assert_eq!(body, serde_json::to_string(&direct.to_value()));
    assert_eq!(direct.racks[1].events.len(), 3);
    assert_eq!(direct.racks[1].events[2].kind, "violation");
    assert_eq!(direct.racks[1].events[2].label, "INV-CAP");

    // Stability: a second exchange is byte-identical (the service's
    // own request counters never leak into these bodies).
    let (_, again) = c.request("GET", "/v1/obs/flight", "").expect("again");
    assert_eq!(again, body);

    // Wrong method → 405 with the GET allow set.
    for path in ["/v1/trace/grants", "/v1/obs/metrics", "/v1/obs/flight"] {
        let raw = format!("POST {path} HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
        let resp = raw_exchange(&fx, raw.as_bytes());
        assert_eq!(status_of(&resp), Some(405), "{path} → {resp:?}");
        assert!(resp.contains("Allow: GET"), "{resp:?}");
    }
}

#[test]
fn observability_endpoints_answer_empty_without_attached_racks() {
    let fx = fixture();
    let mut c = HttpClient::connect(fx.server.addr()).expect("connect");
    let (status, body) = c.request("GET", "/v1/trace/grants", "").expect("trace");
    assert_eq!(status, 200);
    assert_eq!(body, r#"{"racks":[],"version":"v1"}"#);
    let (status, body) = c.request("GET", "/v1/obs/metrics", "").expect("metrics");
    assert_eq!(status, 200);
    assert_eq!(body, r#"{"counters":[],"racks":[],"version":"v1"}"#);
    let (status, body) = c.request("GET", "/v1/obs/flight", "").expect("flight");
    assert_eq!(status, 200);
    assert_eq!(body, r#"{"racks":[],"version":"v1"}"#);
}

#[test]
fn service_errors_are_bit_identical_too() {
    let fx = fixture();

    // A structurally valid JSON body that fails request validation:
    // the HTTP answer is the exact `from_value` error, serialised.
    let wire = r#"{"op":"mean"}"#;
    let mut c = HttpClient::connect(fx.server.addr()).expect("connect");
    let (status, body) = c.request("POST", "/v1/query", wire).expect("query");
    let parsed = serde_json::from_str(wire).expect("valid JSON");
    let err = QueryRequest::from_value(&parsed).expect_err("must not validate");
    assert_eq!(status, err.status());
    assert_eq!(status, 400);
    assert_eq!(body, serde_json::to_string(&err.to_value()));

    // Unknown user → 404, body identical to the direct error value.
    let r = UserRollupRequest {
        user_id: Some(u32::MAX),
    };
    let wire = serde_json::to_string(&r.to_value());
    let mut c = HttpClient::connect(fx.server.addr()).expect("reconnect");
    let (status, body) = c.request("POST", "/v1/rollup/user", &wire).expect("rollup");
    let err = fx.svc.rollup_user(&r).expect_err("must not resolve");
    assert_eq!(status, err.status());
    assert_eq!(status, 404);
    assert_eq!(body, serde_json::to_string(&err.to_value()));

    // Unknown job id, same property (404 keeps the connection open).
    let r = JobRollupRequest {
        job_id: u64::MAX,
        measured: false,
    };
    let wire = serde_json::to_string(&r.to_value());
    let (status, body) = c.request("POST", "/v1/rollup/job", &wire).expect("rollup");
    let err = fx.svc.rollup_job(&r).expect_err("must not resolve");
    assert_eq!(status, err.status());
    assert_eq!(body, serde_json::to_string(&err.to_value()));
}

// ------------------------------------------------------------- //
// Conformance: hostile traffic maps to definite 4xx, no panics. //
// ------------------------------------------------------------- //

#[test]
fn malformed_request_lines_get_400_and_never_panic() {
    let fx = fixture();
    for bad in [
        "GARBAGE\r\n\r\n",
        "GET\r\n\r\n",
        "GET /health\r\n\r\n",
        "GET /health HTTP/1.1 extra\r\n\r\n",
        "GET /health HTTP/2.0\r\n\r\n",
        "GET health HTTP/1.1\r\n\r\n",
        " /health HTTP/1.1\r\n\r\n",
        "GET /health HTTP/1.1\r\nno-colon-header\r\n\r\n",
        "GET /health HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
        "GET /health HTTP/1.1\r\nContent-Length: -3\r\n\r\n",
    ] {
        let resp = raw_exchange(&fx, bad.as_bytes());
        assert_eq!(status_of(&resp), Some(400), "request {bad:?} → {resp:?}");
    }
    // A worker survives all of that and still serves clean requests.
    let mut c = HttpClient::connect(fx.server.addr()).expect("connect");
    let (status, _) = c.request("GET", "/health", "").expect("health");
    assert_eq!(status, 200);
}

#[test]
fn oversized_headers_get_431() {
    let fx = fixture();
    let huge = format!(
        "GET /health HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
        "a".repeat(9_000)
    );
    let resp = raw_exchange(&fx, huge.as_bytes());
    assert_eq!(status_of(&resp), Some(431));
}

#[test]
fn oversized_bodies_get_413_without_reading_them() {
    let fx = fixture();
    // Only the header block is sent: the server must reject on the
    // declared length, not wait for 2 MiB that will never arrive.
    let decl = format!(
        "POST /v1/query HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        2 << 20
    );
    let resp = raw_exchange(&fx, decl.as_bytes());
    assert_eq!(status_of(&resp), Some(413));
}

#[test]
fn truncated_requests_are_dropped_and_the_worker_survives() {
    let fx = fixture();
    // Body shorter than declared, then half-close: no sane answer
    // exists, so the server just drops the connection.
    let resp = raw_exchange(
        &fx,
        b"POST /v1/query HTTP/1.1\r\nContent-Length: 100\r\n\r\n{\"op\"",
    );
    assert!(
        resp.is_empty(),
        "truncated body must be dropped, got {resp:?}"
    );
    // Peer death mid-header is the same story.
    let resp = raw_exchange(&fx, b"GET /health HT");
    assert!(
        resp.is_empty(),
        "truncated header must be dropped, got {resp:?}"
    );
    // The pool is intact.
    let mut c = HttpClient::connect(fx.server.addr()).expect("connect");
    let (status, _) = c.request("GET", "/health", "").expect("health");
    assert_eq!(status, 200);
}

#[test]
fn non_utf8_and_non_json_bodies_get_400() {
    let fx = fixture();
    let mut raw = b"POST /v1/query HTTP/1.1\r\nContent-Length: 4\r\n\r\n".to_vec();
    raw.extend_from_slice(&[0xff, 0xfe, 0x80, 0x81]);
    let resp = raw_exchange(&fx, &raw);
    assert_eq!(status_of(&resp), Some(400), "non-UTF-8 body → {resp:?}");

    let mut c = HttpClient::connect(fx.server.addr()).expect("connect");
    let (status, _) = c
        .request("POST", "/v1/query", "{not json")
        .expect("request");
    assert_eq!(status, 400);
}

#[test]
fn wrong_methods_get_405_with_an_allow_header() {
    let fx = fixture();
    let resp = raw_exchange(&fx, b"POST /health HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
    assert_eq!(status_of(&resp), Some(405));
    assert!(resp.contains("Allow: GET"), "{resp:?}");

    let resp = raw_exchange(&fx, b"GET /v1/query HTTP/1.1\r\n\r\n");
    assert_eq!(status_of(&resp), Some(405));
    assert!(resp.contains("Allow: POST"), "{resp:?}");
}

#[test]
fn keep_alive_serves_many_requests_and_404_does_not_close() {
    let fx = fixture();
    let mut c = HttpClient::connect(fx.server.addr()).expect("connect");
    for _ in 0..8 {
        let (status, _) = c.request("GET", "/health", "").expect("health");
        assert_eq!(status, 200);
    }
    // 404 is a routine miss, not a protocol violation: the connection
    // stays open and keeps serving.
    let (status, _) = c.request("GET", "/v1/nope", "").expect("miss");
    assert_eq!(status, 404);
    let (status, _) = c.request("GET", "/health", "").expect("health after miss");
    assert_eq!(status, 200);
}

#[test]
fn connection_close_and_http10_semantics_hold() {
    let fx = fixture();
    // Explicit close: the server honours it and says so.
    let resp = raw_exchange(&fx, b"GET /health HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp:?}");
    assert!(resp.contains("Connection: close"), "{resp:?}");

    // HTTP/1.0 defaults to close and is answered in kind.
    let resp = raw_exchange(&fx, b"GET /health HTTP/1.0\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.0 200"), "{resp:?}");
    assert!(resp.contains("Connection: close"), "{resp:?}");

    // An error answer closes too: the next request on the same socket
    // cannot be served.
    let mut c = HttpClient::connect(fx.server.addr()).expect("connect");
    let (status, _) = c
        .request("POST", "/v1/query", "{not json")
        .expect("bad json");
    assert_eq!(status, 400);
    assert!(
        c.request("GET", "/health", "").is_err(),
        "400 must close the connection"
    );
}
