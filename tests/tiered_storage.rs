//! Tier-1 property suite for the tiered storage engine: codec identity
//! over arbitrary `f32` bit patterns, truncated-decode-is-an-error,
//! a differential compressed-vs-hot range scan on random windows, and
//! disk-tier crash recovery.

use davide::telemetry::storage::{decode_block_into, encode_block};
use davide::telemetry::tsdb::{Resolution, TsDb};
use davide::telemetry::{DiskTierConfig, TieringConfig, TsDbConfig};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

fn test_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let d = std::env::temp_dir().join(format!(
        "davide-tiered-{}-{}-{}",
        std::process::id(),
        tag,
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// xorshift over a seed: arbitrary `f32` *bit patterns* (every NaN
/// payload, both zeros, subnormals, infinities) the codec must
/// round-trip bit for bit, not just "nice" values.
fn bit_pattern_series(seed: u64, n: usize) -> Vec<f32> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            f32::from_bits(state as u32)
        })
        .collect()
}

/// E25-shaped value series: a rail with a tone plus noise, as `f32`.
fn rail_series(base: f64, ripple: f64, seed: u64, n: usize) -> Vec<f32> {
    let mut state = seed | 1;
    (0..n)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let noise = (state as f64 / u64::MAX as f64 - 0.5) * 0.02 * base;
            (base + ripple * base * (i as f64 * 0.03).sin() + noise) as f32
        })
        .collect()
}

proptest! {
    /// Bit-exact identity on arbitrary value bit patterns over a
    /// realistic frame timeline.
    #[test]
    fn codec_roundtrips_arbitrary_bit_patterns(
        seed in any::<u64>(),
        n in 1usize..300,
        t0 in 0.0f64..1e6,
    ) {
        let vs = bit_pattern_series(seed, n);
        let ts: Vec<f64> = (0..n).map(|i| t0 + i as f64 * 2e-5).collect();
        let mut bytes = Vec::new();
        encode_block(&ts, &vs, &mut bytes);
        let (mut dts, mut dvs) = (Vec::new(), Vec::new());
        let got = decode_block_into(&bytes, &mut dts, &mut dvs).unwrap();
        prop_assert_eq!(got, n);
        for i in 0..n {
            prop_assert_eq!(dts[i].to_bits(), ts[i].to_bits(), "ts[{}]", i);
            prop_assert_eq!(dvs[i].to_bits(), vs[i].to_bits(), "vs[{}]", i);
        }
    }

    /// Bit-exact identity with arbitrary (possibly non-monotonic,
    /// sign-crossing) timestamps — the timestamp raw-escape path.
    #[test]
    fn codec_roundtrips_arbitrary_timestamps(
        seed in any::<u64>(),
        n in 1usize..200,
    ) {
        let mut state = seed | 3;
        let ts: Vec<f64> = (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state as f64 / u64::MAX as f64 - 0.5) * 2e9
            })
            .collect();
        let vs = bit_pattern_series(seed ^ 0xABCD, n);
        let mut bytes = Vec::new();
        encode_block(&ts, &vs, &mut bytes);
        let (mut dts, mut dvs) = (Vec::new(), Vec::new());
        let got = decode_block_into(&bytes, &mut dts, &mut dvs).unwrap();
        prop_assert_eq!(got, n);
        for i in 0..n {
            prop_assert_eq!(dts[i].to_bits(), ts[i].to_bits());
            prop_assert_eq!(dvs[i].to_bits(), vs[i].to_bits());
        }
    }

    /// Any strict prefix of an encoded block fails to decode — the
    /// reader never fabricates points from missing bits.
    #[test]
    fn truncated_blocks_are_an_error(
        seed in any::<u64>(),
        base in 1.0f64..4000.0,
        cut_frac in 0.0f64..1.0,
    ) {
        let vs = rail_series(base, 0.05, seed, 64);
        let ts: Vec<f64> = (0..vs.len()).map(|i| 10.0 + i as f64 * 2e-5).collect();
        let mut bytes = Vec::new();
        encode_block(&ts, &vs, &mut bytes);
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        let (mut dts, mut dvs) = (Vec::new(), Vec::new());
        prop_assert!(
            decode_block_into(&bytes[..cut], &mut dts, &mut dvs).is_err(),
            "decoding {} of {} bytes must fail",
            cut,
            bytes.len()
        );
    }

    /// Differential scan: a tiered store (tiny hot tier, everything
    /// else sealed into compressed blocks) answers random range
    /// queries bit-identically to an untiered store holding the same
    /// points entirely in its hot ring — points, means and energy.
    #[test]
    fn compressed_scan_matches_hot_ring_on_random_windows(
        seed in any::<u64>(),
        base in 1.0f64..4000.0,
        ripple in 0.0f64..0.1,
        wseed in any::<u64>(),
    ) {
        let n = 2000usize;
        let vs = rail_series(base, ripple, seed, n);
        let t0 = 10.0;
        let dt = 2e-5;
        let span = n as f64 * dt;
        let mut hot = TsDb::with_capacity(4 * n, 1024);
        let mut tiered = TsDb::with_config(TsDbConfig {
            raw_capacity: 4 * n,
            rollup_capacity: 1024,
            tiering: Some(TieringConfig {
                seal_block: 100,
                hot_retain: Some(50),
                ..TieringConfig::default()
            }),
            ..TsDbConfig::default()
        })
        .unwrap();
        let hid = hot.resolve("rail");
        let tid = tiered.resolve("rail");
        // Frame-at-a-time appends with periodic compaction, like the
        // ingest path drives it.
        for (f, chunk) in vs.chunks(100).enumerate() {
            let ft0 = t0 + (f * 100) as f64 * dt;
            hot.append_frame_id(hid, ft0, dt, chunk);
            tiered.append_frame_id(tid, ft0, dt, chunk);
            tiered.compact();
        }
        let st = tiered.tier_stats();
        prop_assert!(st.compressed_points > 0, "most points must be sealed: {:?}", st);
        let mut wstate = wseed | 1;
        let mut unit = move || {
            wstate ^= wstate << 13;
            wstate ^= wstate >> 7;
            wstate ^= wstate << 17;
            wstate as f64 / u64::MAX as f64
        };
        for _ in 0..6 {
            let (a, b) = (unit(), unit());
            let (w0, w1) = (t0 + a.min(b) * span, t0 + a.max(b) * span);
            let ph = hot.query_id(hid, Resolution::Raw, w0, w1);
            let pt = tiered.query_id(tid, Resolution::Raw, w0, w1);
            prop_assert_eq!(ph.len(), pt.len(), "window [{}, {})", w0, w1);
            for (x, y) in ph.iter().zip(&pt) {
                prop_assert_eq!(x.t.to_bits(), y.t.to_bits());
                prop_assert_eq!(x.v.to_bits(), y.v.to_bits());
            }
            let mh = hot.mean_id(hid, Resolution::Raw, w0, w1);
            let mt = tiered.mean_id(tid, Resolution::Raw, w0, w1);
            prop_assert_eq!(mh.map(f64::to_bits), mt.map(f64::to_bits));
            let eh = hot.energy_j_id(hid, w0, w1);
            let et = tiered.energy_j_id(tid, w0, w1);
            prop_assert_eq!(eh.to_bits(), et.to_bits());
        }
    }
}

#[test]
fn disk_tier_recovers_after_restart() {
    let dir = test_dir("recovery");
    let cfg = TsDbConfig {
        raw_capacity: 1000,
        rollup_capacity: 64,
        tiering: Some(TieringConfig {
            seal_block: 64,
            hot_retain: Some(64),
            // Tiny memory budget: sealed blocks demote to disk almost
            // immediately.
            mem_budget_bytes: 256,
            disk: Some(DiskTierConfig::new(&dir)),
        }),
        ..TsDbConfig::default()
    };
    let n = 2000usize;
    let dt = 2e-5;
    let expect: Vec<f32> = (0..n).map(|i| 300.0 + (i as f32 * 0.01).sin()).collect();
    {
        let mut db = TsDb::with_config(cfg.clone()).unwrap();
        let id = db.resolve("node07/power/node");
        for (f, chunk) in expect.chunks(100).enumerate() {
            db.append_frame_id(id, 10.0 + (f * 100) as f64 * dt, dt, chunk);
            db.compact();
        }
        let st = db.tier_stats();
        assert!(st.disk_points > 0, "blocks must have demoted: {st:?}");
        assert_eq!(st.evicted_points, 0);
        // db dropped here: "crash" (segment files are already fsynced
        // and atomically renamed; nothing needs a clean shutdown).
    }
    let db = TsDb::with_config(cfg).unwrap();
    let id = db.lookup("node07/power/node").expect("series re-interned");
    let rq = db.query_range_id(id, Resolution::Raw, 0.0, 1e18);
    assert!(
        rq.coverage.disk > 0,
        "history served from disk: {:?}",
        rq.coverage
    );
    // Recovery loses only what was still hot/in-memory at the crash;
    // everything demoted to disk survives, in order, bit for bit.
    let got = rq.points;
    assert!(!got.is_empty());
    assert!(got.len() <= n);
    for w in got.windows(2) {
        assert!(w[0].t < w[1].t, "chronological scan");
    }
    // Match each recovered point against the original series by index.
    let base_idx = ((got[0].t - 10.0) / dt).round() as usize;
    for (k, p) in got.iter().enumerate() {
        let i = base_idx + k;
        assert_eq!(
            (p.v as f32).to_bits(),
            expect[i].to_bits(),
            "point {i} survives bit-exact"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn query_coverage_reports_tier_provenance_and_eviction() {
    // No disk tier + tiny memory budget: demotion must *evict* (with
    // accounting), and windows reaching the lost history must say so.
    let mut db = TsDb::with_config(TsDbConfig {
        raw_capacity: 1000,
        rollup_capacity: 64,
        tiering: Some(TieringConfig {
            seal_block: 64,
            hot_retain: Some(64),
            mem_budget_bytes: 700,
            disk: None,
        }),
        ..TsDbConfig::default()
    })
    .unwrap();
    let id = db.resolve("rail");
    let dt = 2e-5;
    for f in 0..40 {
        let vs: Vec<f32> = (0..100)
            .map(|i| 300.0 + ((f * 100 + i) as f32 * 0.01).sin())
            .collect();
        db.append_frame_id(id, 10.0 + (f * 100) as f64 * dt, dt, &vs);
        db.compact();
    }
    let st = db.tier_stats();
    assert!(st.evicted_points > 0, "budget pressure must evict: {st:?}");
    assert!(st.compressed_points > 0);

    // A window over everything: truncated, and served from both tiers.
    let rq = db.query_range_id(id, Resolution::Raw, 0.0, 1e18);
    assert!(rq.coverage.evicted, "full-history window is truncated");
    assert!(rq.coverage.hot > 0 && rq.coverage.compressed > 0);
    assert_eq!(rq.coverage.total(), rq.points.len());

    // A window entirely inside retained history: complete.
    let tail_t0 = rq.points[rq.points.len() - 50].t;
    let rq2 = db.query_range_id(id, Resolution::Raw, tail_t0, 1e18);
    assert!(rq2.coverage.is_complete(), "{:?}", rq2.coverage);
    assert_eq!(rq2.points.len(), 50);
}
