//! E9/E11-style integration: node-level capping, proactive vs reactive
//! scheduling under a system power envelope, and the pilot-system
//! validation — spanning davide-core, davide-sched and davide-apps.

use davide::core::capping::{evaluate, PiCapController};
use davide::core::node::{ComputeNode, NodeLoad};
use davide::core::units::{Seconds, Watts};
use davide::core::Cluster;
use davide::sched::{
    report, simulate, CapSchedule, EasyBackfill, SimConfig, WorkloadConfig, WorkloadGenerator,
};

#[test]
fn pilot_system_validates_and_hits_envelope() {
    let cluster = Cluster::davide();
    cluster
        .validate()
        .expect("published configuration is legal");
    assert!(cluster.peak().pflops() >= 0.9, "≈1 PFlops");
    assert!(
        cluster.facility_power(NodeLoad::FULL) < Watts::from_kw(100.0),
        "<100 kW total"
    );
}

#[test]
fn node_cap_controller_meets_setpoint_on_every_app_load() {
    use davide::apps::workload::{AppKind, AppModel};
    for kind in AppKind::ALL {
        let model = AppModel::for_kind(kind);
        let mut node = ComputeNode::davide(0);
        let load = model.mean_load();
        let uncapped = node.power(load);
        let cap = Watts(uncapped.0 * 0.85);
        let mut ctl = PiCapController::new(cap);
        let traj = ctl.run(&mut node, load, Seconds(0.1), 300);
        let q = evaluate(&traj, ctl.band);
        assert!(
            q.settle_steps < 100,
            "{}: settle {} steps",
            kind.name(),
            q.settle_steps
        );
        let last = traj.last().unwrap();
        assert!(
            last.power <= cap + ctl.band,
            "{}: {} over cap {}",
            kind.name(),
            last.power,
            cap
        );
    }
}

#[test]
fn proactive_dispatch_avoids_the_throttling_reactive_pays() {
    // Same trace, same 70 kW envelope, three managements:
    //  (a) reactive only  — EASY ignores power, nodes throttle;
    //  (b) proactive only — power-aware admission, no throttling;
    //  (c) combined       — admission + throttling as a safety net.
    let trace = WorkloadGenerator::new(
        WorkloadConfig {
            mean_interarrival_s: 40.0,
            ..WorkloadConfig::default()
        },
        2024,
    )
    .trace(300);
    let cap = 70_000.0;

    let reactive = simulate(
        &trace,
        &mut EasyBackfill::new(),
        SimConfig::davide().with_cap_schedule(CapSchedule::constant(cap), true),
    );
    let proactive = simulate(
        &trace,
        &mut EasyBackfill::power_aware(),
        SimConfig::davide().with_cap_schedule(CapSchedule::constant(cap), false),
    );
    let combined = simulate(
        &trace,
        &mut EasyBackfill::power_aware(),
        SimConfig::davide().with_cap_schedule(CapSchedule::constant(cap), true),
    );

    let r_re = report(&reactive);
    let r_pro = report(&proactive);
    let r_comb = report(&combined);

    // Reactive alone holds the cap by throttling (slowdown pain).
    assert_eq!(r_re.overcap_fraction, 0.0);
    // Proactive alone: tiny residual violations possible (prediction
    // error) but far below the uncapped case; throttling never engages.
    assert!(
        r_pro.overcap_fraction < 0.05,
        "proactive residual violations {}",
        r_pro.overcap_fraction
    );
    // Combined: cap never violated AND throttling is rare.
    assert_eq!(r_comb.overcap_fraction, 0.0);
    let throttled_time: f64 = combined
        .timeline
        .iter()
        .filter(|s| s.speed < 0.999)
        .map(|s| s.t1 - s.t0)
        .sum();
    let total_time: f64 = combined.timeline.iter().map(|s| s.t1 - s.t0).sum();
    assert!(
        throttled_time / total_time < 0.20,
        "combined management mostly runs at full speed ({:.1}% throttled)",
        100.0 * throttled_time / total_time
    );
    // All three complete the same workload.
    assert_eq!(r_re.jobs, 300);
    assert_eq!(r_pro.jobs, 300);
    assert_eq!(r_comb.jobs, 300);
}

#[test]
fn energy_proportionality_api_tailors_node_to_job() {
    use davide::apps::workload::AppModel;
    // NEMO uses 2 of 4 GPUs; shaping the node to the job (§IV) saves
    // measurable energy at equal work.
    let nemo = AppModel::nemo();
    let mut full = ComputeNode::davide(0);
    let mut shaped = ComputeNode::davide(1);
    shaped.apply_shape(nemo.shape).unwrap();
    let p_full = nemo.mean_node_power(&full);
    let p_shaped = nemo.mean_node_power(&shaped);
    let saving = 1.0 - p_shaped / p_full;
    assert!(
        saving > 0.15,
        "component gating saves >15 % on NEMO: got {:.1}%",
        saving * 100.0
    );
    // Full-node apps lose nothing.
    full.apply_shape(AppModel::bqcd().shape).unwrap();
    let p_bqcd = AppModel::bqcd().mean_node_power(&full);
    assert!(p_bqcd > Watts(1000.0));
}
