//! F4 — the full Fig. 4 pipeline, end to end:
//! node model → power waveform → energy gateway (sensor/ADC/decimation,
//! PTP timestamps) → MQTT broker → per-job aggregator → energy
//! accounting, with the scheduler's view reconciled against the
//! telemetry-side measurement.

use davide::core::node::{ComputeNode, NodeLoad};
use davide::core::rng::Rng;
use davide::mqtt::{Broker, QoS};
use davide::telemetry::gateway::{node_filter, EnergyGateway, SampleFrame};
use davide::telemetry::{EnergyIntegrator, WorkloadWaveform};

/// A job runs for two simulated seconds on one node; the EG measures it
/// through the full chain and an aggregator reconstructs its
/// energy-to-solution within 1 %.
#[test]
fn telemetry_reconstructs_job_energy_within_one_percent() {
    let broker = Broker::default();
    let mut aggregator = broker.connect("job-aggregator");
    aggregator
        .subscribe(&node_filter(3), QoS::AtMostOnce)
        .unwrap();

    // The node runs an HPC-job-shaped load around its model power.
    let node = ComputeNode::davide(3);
    let mean_power = node.power(NodeLoad::FULL).0;
    let wave = WorkloadWaveform::hpc_job(mean_power, 0.5);

    let mut eg = EnergyGateway::connect(&broker, 3, 1234);
    let mut gen = Rng::seed_from(99);
    let duration = 2.0;
    let truth = wave.render(800_000.0, duration, &mut gen);
    let frames = eg.acquire_and_publish("node", &truth, 1000.0);
    assert!(frames > 0);

    let mut acc = EnergyIntegrator::new();
    for m in aggregator.drain() {
        let frame = SampleFrame::decode(m.payload).expect("valid frame");
        acc.push(&frame);
    }
    let measured = acc.energy().0;
    let true_j = truth.energy().0;
    let err_pct = (measured - true_j).abs() / true_j * 100.0;
    assert!(
        err_pct < 1.0,
        "EG chain error {err_pct:.3}% (measured {measured:.1} J vs {true_j:.1} J)"
    );
    // The reconstructed mean power matches the node model.
    assert!((acc.mean_power().0 - truth.mean().0).abs() < mean_power * 0.02);
}

/// Multiple agents (control, profiler, accounting) subscribe to the same
/// gateway stream and all see the same data — the M2M fan-out that
/// motivates MQTT in §III-A1.
#[test]
fn multiple_agents_see_identical_streams() {
    let broker = Broker::default();
    let mut control = broker.connect("control-agent");
    let mut profiler = broker.connect("profiler");
    let mut accounting = broker.connect("accounting");
    for c in [&mut control, &mut profiler, &mut accounting] {
        c.subscribe("davide/+/power/#", QoS::AtMostOnce).unwrap();
    }

    let mut eg = EnergyGateway::connect(&broker, 7, 5);
    let mut gen = Rng::seed_from(7);
    let truth = WorkloadWaveform::gpu_burst(1700.0).render(800_000.0, 0.3, &mut gen);
    eg.acquire_and_publish("node", &truth, 0.0);

    let a = control.drain();
    let b = profiler.drain();
    let c = accounting.drain();
    assert!(!a.is_empty());
    assert_eq!(a.len(), b.len());
    assert_eq!(b.len(), c.len());
    for ((x, y), z) in a.iter().zip(&b).zip(&c) {
        assert_eq!(x.payload, y.payload);
        assert_eq!(y.payload, z.payload);
    }
}

/// Per-component channels: the gateway publishes CPU/GPU breakdowns and
/// the aggregated component energies are consistent with node energy.
#[test]
fn component_channels_sum_close_to_node_channel() {
    let broker = Broker::default();
    let mut agent = broker.connect("component-agent");
    agent.subscribe(&node_filter(11), QoS::AtMostOnce).unwrap();

    let node = ComputeNode::davide(11);
    let (cpu_w, gpu_w, mem_w, other_w) = node.power_breakdown(NodeLoad::FULL);
    let mut eg = EnergyGateway::connect(&broker, 11, 21);
    let mut gen = Rng::seed_from(3);
    let duration = 0.5;

    // Render each component as a (noisy, near-DC) waveform and publish
    // on its channel; also publish the node-total channel.
    let channels: [(&str, f64); 5] = [
        ("cpu0", cpu_w.0 / 2.0),
        ("cpu1", cpu_w.0 / 2.0),
        ("gpu0", gpu_w.0 / 4.0),
        ("node", (cpu_w + gpu_w + mem_w + other_w).0),
        ("aux12v", (mem_w + other_w).0),
    ];
    for (chan, watts) in channels {
        let truth = WorkloadWaveform::idle(watts).render(800_000.0, duration, &mut gen);
        eg.acquire_and_publish(chan, &truth, 0.0);
    }

    use std::collections::HashMap;
    let mut per_chan: HashMap<String, EnergyIntegrator> = HashMap::new();
    for m in agent.drain() {
        let frame = SampleFrame::decode(m.payload).unwrap();
        per_chan.entry(m.topic.clone()).or_default().push(&frame);
    }
    assert_eq!(per_chan.len(), 5, "five channels seen");
    let e = |c: &str| per_chan[&format!("davide/node11/power/{c}")].energy().0;
    let parts = e("cpu0") + e("cpu1") + e("gpu0") * 4.0 + e("aux12v");
    let node_e = e("node");
    let err = (parts - node_e).abs() / node_e * 100.0;
    assert!(err < 2.0, "component sum off by {err:.2}%");
}
