//! Integration: the full Fig. 4 data path including the database —
//! rack gateways → rack broker → bridge → site broker → time-series DB
//! → profiler/accounting queries.

use davide::core::rng::Rng;
use davide::mqtt::{Bridge, Broker, QoS};
use davide::telemetry::gateway::{EnergyGateway, SampleFrame};
use davide::telemetry::profiler::{detect_phases, ProfilerConfig};
use davide::telemetry::tsdb::{Resolution, TsDb};
use davide::telemetry::WorkloadWaveform;

#[test]
fn rack_to_site_to_database_pipeline() {
    // Rack-level broker with two gateways; site broker with the DB.
    let rack = Broker::default();
    let site = Broker::default();
    let mut bridge = Bridge::connect(&rack, &site, "rack0", &["davide/+/power/#"], None).unwrap();
    let mut ingest = site.connect("tsdb-ingest");
    ingest
        .subscribe("davide/+/power/#", QoS::AtMostOnce)
        .unwrap();

    let mut gen = Rng::seed_from(17);
    let mut db = TsDb::with_capacity(200_000, 50_000);
    for node_id in [0u32, 1] {
        let mut eg = EnergyGateway::connect(&rack, node_id, 500 + node_id as u64);
        let dc = 1500.0 + node_id as f64 * 200.0;
        let truth = WorkloadWaveform::idle(dc).render(800_000.0, 1.0, &mut gen);
        eg.acquire_and_publish("node", &truth, 1000.0);
    }
    bridge.pump();

    // Ingest every bridged frame into the DB.
    let mut frames = 0;
    for m in ingest.drain() {
        let f = SampleFrame::decode(m.payload).unwrap();
        let sid = db.resolve(&m.topic);
        db.append_frame_id(sid, f.t0_s, f.dt_s, &f.watts);
        frames += 1;
    }
    assert_eq!(frames, 200, "two nodes × 100 frames");
    db.flush();

    // Query side: per-node mean power at 1-second rollup.
    let keys = db.keys();
    assert_eq!(keys.len(), 2);
    let s0 = db.resolve("davide/node00/power/node");
    let s1 = db.resolve("davide/node01/power/node");
    let m0 = db.mean_id(s0, Resolution::Second, 0.0, 1e9).unwrap();
    let m1 = db.mean_id(s1, Resolution::Second, 0.0, 1e9).unwrap();
    assert!((m0 - 1500.0).abs() < 20.0, "node00 mean {m0}");
    assert!((m1 - 1700.0).abs() < 20.0, "node01 mean {m1}");

    // Energy query over the observed window ≈ power × 1 s.
    let e0 = db.energy_j_id(s0, 0.0, 1e9);
    assert!((e0 - 1500.0).abs() < 25.0, "≈1500 J: {e0}");
}

#[test]
fn profiler_works_on_database_extracts() {
    // Store a phased job, pull a raw range back out, run the profiler.
    let mut gen = Rng::seed_from(23);
    let wave = WorkloadWaveform::hpc_job(1600.0, 0.5);
    let truth = wave.render(10_000.0, 3.0, &mut gen);
    let mut db = TsDb::with_capacity(100_000, 10_000);
    let sid = db.resolve("job42/power");
    for (i, &w) in truth.samples.iter().enumerate() {
        db.append_id(sid, truth.time_of(i), w);
    }
    let points = db.query_id(sid, Resolution::Raw, 0.0, 3.0);
    assert_eq!(points.len(), truth.len());
    // Rebuild a trace from the DB extract.
    let trace = davide::core::power::PowerTrace::new(
        davide::core::time::SimTime::ZERO,
        truth.dt,
        points.iter().map(|p| p.v).collect(),
    );
    // The hpc_job waveform carries ±130 W of iteration harmonics on top
    // of its 560 W phase steps; set the change threshold between the two.
    let cfg = ProfilerConfig {
        threshold_w: 250.0,
        min_phase_s: 0.1,
        ..ProfilerConfig::default()
    };
    let phases = detect_phases(&trace, cfg);
    assert!(
        (5..=7).contains(&phases.len()),
        "3 s of 0.5 s phases → ~6 segments, got {}",
        phases.len()
    );
}
